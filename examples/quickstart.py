#!/usr/bin/env python3
"""Quickstart: build and run your first SOTER RTA module.

A point robot moves along a line toward a cliff at x = 9 m.  The advanced
controller is untrusted (it mostly drives toward the cliff); the safe
controller retreats.  We declare an RTA module around them, let the SOTER
compiler generate the decision module, and watch the runtime keep the
robot safe while still using the advanced controller most of the time.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import random

from repro.core import (
    Node,
    Program,
    RTAModuleSpec,
    SafetySpec,
    SemanticsEngine,
    SoterCompiler,
    Topic,
)

CLIFF = 9.0
MAX_SPEED = 1.0
DELTA = 0.1


class AdvancedController(Node):
    """Untrusted: usually full speed toward the cliff."""

    def __init__(self) -> None:
        super().__init__("rover.ac", subscribes=("state",), publishes=("cmd",), period=0.05)
        self._rng = random.Random(0)

    def step(self, now, inputs):
        if self._rng.random() < 0.7:
            return {"cmd": MAX_SPEED}
        return {"cmd": self._rng.uniform(-MAX_SPEED, MAX_SPEED)}


class SafeController(Node):
    """Certified: always retreat from the cliff."""

    def __init__(self) -> None:
        super().__init__("rover.sc", subscribes=("state",), publishes=("cmd",), period=0.05)

    def step(self, now, inputs):
        return {"cmd": -MAX_SPEED}


def build_module() -> RTAModuleSpec:
    """Declare the RTA module (the ``rtamodule`` block of Figure 7 in the paper)."""
    two_delta = 2.0 * DELTA
    return RTAModuleSpec(
        name="SafeRover",
        advanced=AdvancedController(),
        safe=SafeController(),
        delta=DELTA,
        safe_spec=SafetySpec("x < cliff", lambda x: x < CLIFF),
        safer_spec=SafetySpec("x < cliff - 2Δ·v", lambda x: x < CLIFF - two_delta * MAX_SPEED - 0.2),
        ttf=lambda x: x + two_delta * MAX_SPEED >= CLIFF,
        state_topics=("state",),
    )


def main() -> None:
    program = Program(
        name="quickstart",
        topics=[Topic("state", float), Topic("cmd", float, 0.0)],
        modules=[build_module()],
    )
    result = SoterCompiler(strict=True).compile(program)
    print(result.summary())
    system = result.system
    engine = SemanticsEngine(system)

    # Co-simulate a trivial 1-D plant: x' = commanded velocity.
    x, last_time = 0.0, 0.0
    max_x = 0.0
    engine.set_input("state", x)
    while engine.current_time < 30.0:
        next_time = engine.peek_next_time()
        command = engine.read_topic("cmd") or 0.0
        x += max(-MAX_SPEED, min(MAX_SPEED, command)) * (next_time - last_time)
        last_time = next_time
        max_x = max(max_x, x)
        engine.set_input("state", x)
        engine.step()

    dm = system.module_named("SafeRover").decision
    print(f"\nfinal position x = {x:.2f} m, maximum x = {max_x:.2f} m (cliff at {CLIFF} m)")
    print(f"mode switches: {len(dm.switches)} "
          f"({len(dm.disengagements)} disengagements, {len(dm.reengagements)} re-engagements)")
    from repro.core.decision import Mode

    ac_share = dm.time_fraction_in_mode(Mode.AC, 0.0, engine.current_time)
    print(f"advanced controller in control {ac_share:.0%} of the time")
    print("\nfirst few switches:")
    for switch in dm.switches[:6]:
        print(f"  t={switch.time:5.2f}s  {switch.previous.value} -> {switch.new.value}  ({switch.reason})")
    assert max_x < CLIFF, "the RTA module must keep the rover away from the cliff"
    print("\nφ_safe held for the whole run — runtime assurance worked.")


if __name__ == "__main__":
    main()
