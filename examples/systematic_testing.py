#!/usr/bin/env python3
"""Design-time systematic testing of a SOTER program (the tool chain's backend).

Before deploying, the SOTER tool chain explores executions of the discrete
model of the program — replacing untrusted components by nondeterministic
abstractions and permuting the interleaving of simultaneously-scheduled
nodes under bounded asynchrony — while safety monitors check every step.
This example tests a small RTA module twice: once with a correct φ_safer
choice (no violations are found) and once with a deliberately broken DM
configuration (the tester finds a counterexample execution).

Run with:  python examples/systematic_testing.py
"""

from __future__ import annotations

from repro.core import (
    FunctionNode,
    InvariantMonitor,
    Program,
    RTAModuleSpec,
    SafetySpec,
    SoterCompiler,
    Topic,
)
from repro.core.monitor import MonitorSuite
from repro.testing import (
    AbstractEnvironment,
    RandomStrategy,
    SystematicTester,
    TestHarness,
)

CLIFF = 9.0
MAX_SPEED = 1.0
DELTA = 0.1


def _controllers():
    advanced = FunctionNode(
        "ac", lambda now, inputs: {"cmd": MAX_SPEED},
        subscribes=("state",), publishes=("cmd",), period=0.05,
    )
    safe = FunctionNode(
        "sc", lambda now, inputs: {"cmd": -MAX_SPEED},
        subscribes=("state",), publishes=("cmd",), period=0.05,
    )
    return advanced, safe


def build_harness(broken_ttf: bool) -> TestHarness:
    advanced, safe = _controllers()
    two_delta = 2.0 * DELTA
    lookahead = 0.0 if broken_ttf else two_delta * MAX_SPEED
    module = RTAModuleSpec(
        name="rover",
        advanced=advanced,
        safe=safe,
        delta=DELTA,
        safe_spec=SafetySpec("safe", lambda x: x < CLIFF),
        safer_spec=SafetySpec("safer", lambda x: x < CLIFF - two_delta * MAX_SPEED - 0.2),
        # The broken variant "forgets" the 2Δ lookahead in ttf — a classic
        # mistake the systematic tester should expose.
        ttf=lambda x: x + lookahead >= CLIFF,
        state_topics=("state",),
    )
    program = Program(
        name="rover-testing",
        topics=[Topic("state", float), Topic("cmd", float, 0.0)],
        modules=[module],
    )
    system = SoterCompiler(strict=False).compile(program).system
    # The monitor checks Theorem 3.1's inductive invariant φ_Inv: whenever the
    # advanced controller is in control, the plant must not be able to leave
    # φ_safe within Δ.  A DM whose ttf check "forgot" the lookahead violates
    # it on boundary states, which the tester should expose.
    monitors = MonitorSuite(
        [
            InvariantMonitor(
                module=system.modules[0],
                may_leave_within=lambda x, horizon: x + MAX_SPEED * horizon >= CLIFF,
            )
        ]
    )
    # The abstract environment nondeterministically reports plant states,
    # including states right at the switching boundary.
    environment = AbstractEnvironment(
        menus={"state": [2.0, CLIFF - 0.6, CLIFF - 0.25, CLIFF - 0.05]}, period=DELTA
    )
    return TestHarness(system=system, monitors=monitors, environment=environment, horizon=2.0)


def explore(label: str, broken_ttf: bool) -> None:
    tester = SystematicTester(
        lambda: build_harness(broken_ttf),
        strategy=RandomStrategy(seed=0, max_executions=50),
    )
    report = tester.explore(stop_at_first_violation=True)
    print(f"{label}: {report.summary()}")
    counterexample = report.first_counterexample()
    if counterexample is not None:
        violation = counterexample.violations[0]
        print(f"  counterexample in execution {counterexample.index}: "
              f"{violation.message} at t={violation.time:.2f}s (state={violation.state})")


def main() -> None:
    explore("well-formed module   ", broken_ttf=False)
    explore("broken ttf_2Δ variant", broken_ttf=True)


if __name__ == "__main__":
    main()
