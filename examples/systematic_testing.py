#!/usr/bin/env python3
"""Design-time systematic testing of a SOTER program (the tool chain's backend).

Before deploying, the SOTER tool chain explores executions of the discrete
model of the program — replacing untrusted components by nondeterministic
abstractions and permuting the interleaving of simultaneously-scheduled
nodes under bounded asynchrony — while safety monitors check every step.

Workloads come from the scenario registry: every named scenario builds a
fresh model instance, so the serial tester, the parallel tester,
benchmarks, and this example all construct the same workloads through one
API.  Three exploration strategies are on show (the fourth, replay, is
what re-executes counterexamples):

* **random** — seeded independent executions; cheap, replayable,
  shardable across workers;
* **exhaustive** — depth-first enumeration of every choice combination
  up to a bound (bounded model checking);
* **coverage-guided** — novelty search over the mode/region coverage
  plane: every monitor sample classifies each protected module into the
  paper's Figure-10 regions, and the strategy biases choices toward
  ``(vehicle, mode, region)`` pairs the sweep has not visited yet.

The example:

1. lists the registered scenarios,
2. explores the toy closed loop serially, with a correct and with a
   deliberately broken decision module (the tester finds the bug),
3. pits random against coverage-guided exploration on the
   coverage-hostile ``deep-menu-surveillance`` scenario at an equal
   budget and prints the guided sweep's coverage table,
4. shards a sweep of the faulty-planner scenario across worker processes
   with early stop, and replays the counterexample trail on the serial
   engine to confirm it.

See docs/exploration.md for the strategy protocol and the coverage-plane
semantics, and docs/scenarios.md for the scenario catalogue.

Run with:  python examples/systematic_testing.py
"""

from __future__ import annotations

from repro.testing import (
    CoverageGuidedStrategy,
    ParallelTester,
    RandomStrategy,
    SystematicTester,
    registered_scenarios,
    scenario,
    scenario_factory,
)


def list_scenarios() -> None:
    print("registered scenarios:")
    for name in registered_scenarios():
        print(f"  {name:24s} {scenario(name).description.split('.')[0]}.")


def explore_serial(label: str, broken_ttf: bool) -> None:
    tester = SystematicTester(
        scenario_factory("toy-closed-loop", broken_ttf=broken_ttf),
        strategy=RandomStrategy(seed=0, max_executions=50),
    )
    report = tester.explore(stop_at_first_violation=True)
    print(f"{label}: {report.summary()}")
    counterexample = report.first_counterexample()
    if counterexample is not None:
        violation = counterexample.violations[0]
        print(
            f"  counterexample in execution {counterexample.index}: "
            f"{violation.message} at t={violation.time:.2f}s (state={violation.state})"
        )
        print(f"  replayable trail: {counterexample.trail}")


def explore_with_coverage() -> None:
    """Random vs coverage-guided at an equal budget, with the coverage table.

    ``deep-menu-surveillance`` is hostile by construction: a thirty-plus
    option estimate menu in which almost every option is deep-safe, so
    uniform random keeps re-sampling known regions while the guided
    strategy sweeps untried options first and mutates novelty-producing
    trails.  Coverage tracking is free to combine with any strategy —
    pass ``track_coverage=True`` — and auto-enables for the guided one.
    """
    budget = 32
    reports = {}
    for label, strategy in (
        ("random", RandomStrategy(seed=0, max_executions=budget)),
        ("coverage-guided", CoverageGuidedStrategy(seed=0, max_executions=budget)),
    ):
        tester = SystematicTester(
            scenario_factory("deep-menu-surveillance"), strategy, track_coverage=True
        )
        reports[label] = tester.explore()
    print(f"deep-menu-surveillance, {budget} executions each:")
    for label, report in reports.items():
        print(f"  {label:16s} {len(report.coverage)} distinct (vehicle, mode, region) pair(s)")
    print()
    print("coverage-guided occupancy:")
    for line in reports["coverage-guided"].coverage.table().splitlines():
        print(f"  {line}")


def explore_parallel() -> None:
    tester = ParallelTester(
        "faulty-planner",
        strategy=RandomStrategy(seed=0, max_executions=200),
        workers=4,
    )
    report = tester.explore(stop_at_first_violation=True)
    print(f"faulty planner (parallel): {report.summary()}")
    counterexample = report.first_counterexample()
    if counterexample is not None:
        print(
            f"  early stop after {report.execution_count} of 200 executions; "
            f"trail {counterexample.trail}"
        )
    for confirmation in report.confirmations:
        verdict = "confirmed" if confirmation.confirmed else "NOT reproduced"
        print(f"  serial replay of {confirmation.trail}: {verdict}")


def main() -> None:
    list_scenarios()
    print()
    explore_serial("well-formed module   ", broken_ttf=False)
    explore_serial("broken ttf_2Δ variant", broken_ttf=True)
    print()
    explore_with_coverage()
    print()
    explore_parallel()


if __name__ == "__main__":
    main()
