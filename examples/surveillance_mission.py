#!/usr/bin/env python3
"""Drone surveillance over the city with the RTA-protected software stack.

Reproduces the Figure 12b scenario of the SOTER paper: the drone patrols
randomly chosen surveillance points over the city; the untrusted (learned)
low-level controller occasionally misbehaves, the RTA-protected motion
primitive hands control to the certified safe tracker near obstacles and
returns it once the drone has recovered into φ_safer.

Run with:  python examples/surveillance_mission.py [seed]
"""

from __future__ import annotations

import sys

from repro.apps import StackConfig, build_stack
from repro.simulation import surveillance_city


def main(seed: int = 7) -> None:
    world = surveillance_city()
    config = StackConfig(
        world=world,
        goals=[],
        random_goals=6,
        loop_goals=False,
        planner="astar",
        tracker="learned",          # the "data-driven" controller of Figure 5 (left)
        protect_motion_primitive=True,
        protect_battery=True,
        seed=seed,
    )
    stack = build_stack(config)
    print(stack.system.describe())
    print("\nflying the mission ...")
    metrics, result = stack.run(duration=400.0)

    print("\n--- mission metrics -------------------------------------------")
    print(metrics.summary())

    print("\n--- decision-module activity ----------------------------------")
    for module in stack.system.modules:
        dm = module.decision
        print(f"{module.name}: {len(dm.disengagements)} disengagements, "
              f"{len(dm.reengagements)} re-engagements")
        for switch in dm.switches[:8]:
            print(f"    t={switch.time:6.1f}s  {switch.previous.value} -> {switch.new.value}  ({switch.reason})")

    if metrics.safe and metrics.completed:
        print("\nmission complete: all surveillance points visited without violating φ_obs or φ_bat.")
    elif metrics.safe:
        print("\nmission ran out of time but the drone stayed safe throughout.")
    else:
        print("\nWARNING: the mission ended unsafely — this should not happen with the RTA stack.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 7)
