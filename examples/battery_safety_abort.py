#!/usr/bin/env python3
"""Battery-safety RTA module: abort the mission and land before the charge runs out.

Reproduces the Figure 12c scenario of the SOTER paper: the drone patrols
the g1..g4 range on a (deliberately fast-draining) battery.  When the
battery decision module detects that continuing could leave too little
charge to land (``bt - cost* < T_max``), it hands control from the
plan-forwarding advanced controller to the certified landing planner,
which descends and lands; without the module the drone keeps flying until
the battery dies in the air.

Run with:  python examples/battery_safety_abort.py
"""

from __future__ import annotations

from repro.apps import StackConfig, build_stack
from repro.dynamics import BatteryParams
from repro.simulation import waypoint_range

FAST_DRAIN = BatteryParams(idle_rate=0.008, accel_rate=0.002, descent_speed=1.0, max_altitude=12.0)


def fly(protect_battery: bool):
    world = waypoint_range()
    config = StackConfig(
        world=world,
        goals=world.surveillance_points,
        loop_goals=True,                  # patrol until the battery forces an abort
        planner="straight",
        protect_battery=protect_battery,
        battery_params=FAST_DRAIN,
        seed=2,
    )
    stack = build_stack(config)
    metrics, result = stack.run(duration=500.0, stop_on_complete=False)
    return stack, metrics


def main() -> None:
    print("flying WITH the battery-safety RTA module ...")
    protected_stack, protected = fly(protect_battery=True)
    battery_dm = protected_stack.system.module_named("BatterySafety").decision
    print(f"  flight time          : {protected.mission_time:.0f} s")
    print(f"  battery aborts       : {len(battery_dm.disengagements)}")
    for switch in battery_dm.disengagements:
        print(f"    t={switch.time:6.1f}s  {switch.previous.value} -> {switch.new.value}  ({switch.reason})")
    print(f"  landed safely        : {protected.landed_safely}")
    print(f"  final charge         : {protected.final_charge:.0%}")
    print(f"  battery died in air  : {protected.battery_depleted_in_air}")

    print("\nflying WITHOUT battery protection ...")
    _, unprotected = fly(protect_battery=False)
    print(f"  flight time          : {unprotected.mission_time:.0f} s")
    print(f"  battery died in air  : {unprotected.battery_depleted_in_air}")
    print(f"  crashed              : {unprotected.crashed}")

    print("\nφ_bat verdicts: protected =", protected.safe, "| unprotected =", unprotected.safe)


if __name__ == "__main__":
    main()
