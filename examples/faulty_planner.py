#!/usr/bin/env python3
"""RTA-protected motion planner vs. a bug-injected RRT* (Section V-C).

The surveillance stack is built with a third-party-style RRT* planner into
which a corner-cutting bug has been injected: with some probability the
returned plan is just the straight start→goal segment, ignoring the
buildings.  Wrapped in an RTA module (with a certified grid planner as the
safe counterpart and plan validation as φ_plan), the bad plans are caught
and replaced before they can steer the drone into an obstacle.

Run with:  python examples/faulty_planner.py
"""

from __future__ import annotations

from repro.apps import StackConfig, build_stack
from repro.planning import PlannerBug
from repro.simulation import surveillance_city


def fly(protect: bool, seed: int = 0):
    world = surveillance_city()
    # Diagonal goals force routes around buildings, so corner-cut plans collide.
    goals = [world.surveillance_points[0], world.surveillance_points[4], world.surveillance_points[6]]
    config = StackConfig(
        world=world,
        goals=goals,
        loop_goals=False,
        planner="rrt",
        planner_bug=PlannerBug.CORNER_CUTTING,
        planner_bug_probability=0.5,
        protect_planner=protect,
        protect_motion_primitive=protect,
        protect_battery=False,
        seed=seed,
    )
    stack = build_stack(config)
    metrics, _ = stack.run(duration=300.0)
    return stack, metrics


def main() -> None:
    print("mission with the RTA-protected planner (bug-injected RRT* as the AC) ...")
    stack, metrics = fly(protect=True)
    planner_dm = stack.system.module_named("SafeMotionPlanner").decision
    print(f"  goals visited            : {metrics.goals_visited}")
    print(f"  collided                 : {metrics.collided}")
    print(f"  colliding plans rejected : {len(planner_dm.disengagements)}")
    print(f"  min clearance            : {metrics.min_clearance:.2f} m")

    print("\nmission with the same faulty planner, fully unprotected ...")
    _, unprotected = fly(protect=False)
    print(f"  goals visited            : {unprotected.goals_visited}")
    print(f"  collided                 : {unprotected.collided}")
    print(f"  min clearance            : {unprotected.min_clearance:.2f} m")

    print("\nφ_plan ∧ φ_obs verdicts: protected =", metrics.safe, "| unprotected =", unprotected.safe)


if __name__ == "__main__":
    main()
