"""Simulation substrate: worlds, the drone plant, sensors, wind, and the co-simulator."""

from .drone import BatteryStatus, DronePlant, PlantStatus
from .environment import ConstantWind, GustyWind, NoWind
from .fleet import (
    FleetResult,
    FleetSimulation,
    FleetSimulationConfig,
    VehicleChannels,
)
from .plantenv import PlantChannel, PlantEnvironment, RowGroupPlant
from .population import PopulationSimulation, PopulationStatus
from .sensors import (
    SENSOR_FAULT_MODES,
    BatterySensor,
    FaultyBatterySensor,
    FaultyStateEstimator,
    PerfectEstimator,
    StateEstimator,
)
from .sim import DroneSimulation, SimulationConfig, SimulationResult
from .world import MissionWorld, figure_eight_range, surveillance_city, waypoint_range

__all__ = [
    "BatteryStatus",
    "DronePlant",
    "PlantStatus",
    "FleetResult",
    "FleetSimulation",
    "FleetSimulationConfig",
    "VehicleChannels",
    "ConstantWind",
    "GustyWind",
    "NoWind",
    "PlantChannel",
    "PlantEnvironment",
    "RowGroupPlant",
    "PopulationSimulation",
    "PopulationStatus",
    "SENSOR_FAULT_MODES",
    "BatterySensor",
    "FaultyBatterySensor",
    "FaultyStateEstimator",
    "PerfectEstimator",
    "StateEstimator",
    "DroneSimulation",
    "SimulationConfig",
    "SimulationResult",
    "MissionWorld",
    "figure_eight_range",
    "surveillance_city",
    "waypoint_range",
]
