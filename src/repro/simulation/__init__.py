"""Simulation substrate: worlds, the drone plant, sensors, wind, and the co-simulator."""

from .drone import BatteryStatus, DronePlant, PlantStatus
from .environment import ConstantWind, GustyWind, NoWind
from .sensors import BatterySensor, PerfectEstimator, StateEstimator
from .sim import DroneSimulation, SimulationConfig, SimulationResult
from .world import MissionWorld, figure_eight_range, surveillance_city, waypoint_range

__all__ = [
    "BatteryStatus",
    "DronePlant",
    "PlantStatus",
    "ConstantWind",
    "GustyWind",
    "NoWind",
    "BatterySensor",
    "PerfectEstimator",
    "StateEstimator",
    "DroneSimulation",
    "SimulationConfig",
    "SimulationResult",
    "MissionWorld",
    "figure_eight_range",
    "surveillance_city",
    "waypoint_range",
]
