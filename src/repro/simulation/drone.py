"""The simulated drone plant: kinematics, battery, and collision bookkeeping.

This is the reproduction's stand-in for the Gazebo + PX4-in-the-loop plant
of the paper's evaluation.  It advances the selected dynamics model with
the currently commanded control, drains the battery, and detects
collisions against the workspace — the ground truth the mission metrics
are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..dynamics import (
    BatteryModel,
    BatteryState,
    ControlCommand,
    DroneState,
    DynamicsModel,
)
from ..geometry import Vec3, Workspace


@dataclass(frozen=True)
class BatteryStatus:
    """The battery sensor reading published to the battery-safety RTA module."""

    charge: float
    altitude: float

    @property
    def depleted(self) -> bool:
        return self.charge <= 0.0


@dataclass
class PlantStatus:
    """A snapshot of everything the simulator knows about the plant."""

    time: float
    state: DroneState
    battery: BatteryState
    collided: bool
    distance_flown: float


class DronePlant:
    """Ground-truth drone: dynamics + battery + collision detection."""

    def __init__(
        self,
        model: DynamicsModel,
        workspace: Workspace,
        battery_model: Optional[BatteryModel] = None,
        initial_state: Optional[DroneState] = None,
        initial_charge: float = 1.0,
        collision_margin: float = 0.0,
        ground_altitude: float = 0.15,
    ) -> None:
        self.model = model
        self.workspace = workspace
        self.battery_model = battery_model or BatteryModel()
        self._initial_state = initial_state or DroneState(position=Vec3(1.0, 1.0, 2.0))
        self._initial_charge = initial_charge
        self.collision_margin = collision_margin
        self.ground_altitude = ground_altitude
        self.reset()

    def reset(self) -> None:
        """Restore the plant to its construction-time state (Resettable).

        The workspace geometry and dynamics model are immutable and stay
        warm; only the evolving plant state — pose, battery, collision
        bookkeeping, odometry — rewinds, which lets a co-simulation reuse
        one plant across missions instead of rebuilding it.
        """
        self.state = self._initial_state
        self.battery = BatteryState(charge=self._initial_charge)
        self.collided = False
        self.collision_position: Optional[Vec3] = None
        self.battery_failed = False
        self.distance_flown = 0.0
        self.time = 0.0
        self.min_clearance = self.workspace.clearance(self.state.position)

    # ------------------------------------------------------------------ #
    # plant evolution
    # ------------------------------------------------------------------ #
    def apply(self, command: Optional[ControlCommand], dt: float, disturbance: Vec3 = Vec3()) -> None:
        """Advance the plant by ``dt`` seconds under ``command`` (None = no thrust)."""
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        self.time += dt
        if self.collided:
            # A collided drone stays where it hit; only the clock advances.
            return
        command = command or ControlCommand.hover()
        if disturbance.norm() > 0.0:
            command = ControlCommand(
                acceleration=command.acceleration + disturbance, yaw_rate=command.yaw_rate
            )
        if self.battery.depleted and self.airborne:
            # No charge left: the drone free-falls (modelled as strong descent).
            command = ControlCommand(acceleration=Vec3(0.0, 0.0, -self.model.max_acceleration))
        previous_position = self.state.position
        self.state = self.model.step(self.state, command, dt)
        # Keep the drone on or above the ground plane.
        if self.state.position.z < 0.0:
            self.state = DroneState(
                position=self.state.position.with_z(0.0),
                velocity=Vec3(self.state.velocity.x, self.state.velocity.y, 0.0),
            )
        self.distance_flown += previous_position.distance_to(self.state.position)
        self.battery = self.battery_model.step(self.battery, command, dt)
        if self.battery.depleted and self.airborne:
            # Latch the failure: running out of charge in the air is a crash
            # (φ_bat violation) even though the drone subsequently falls to
            # the ground.
            self.battery_failed = True
        self._update_collision(previous_position)
        self.min_clearance = min(self.min_clearance, self.clearance)

    def _update_collision(self, previous_position: Vec3) -> None:
        position = self.state.position
        # Only collisions while airborne count: sitting on the ground is fine.
        if not self.airborne:
            return
        hit_obstacle = self.workspace.in_obstacle(position, margin=self.collision_margin)
        out_of_bounds = not self.workspace.in_bounds(position)
        crossed = not self.workspace.segment_is_free(previous_position, position)
        if hit_obstacle or out_of_bounds or crossed:
            self.collided = True
            self.collision_position = position
            self.state = DroneState(position=position, velocity=Vec3.zero())

    # ------------------------------------------------------------------ #
    # derived observations
    # ------------------------------------------------------------------ #
    @property
    def airborne(self) -> bool:
        """True while the drone is above the ground-contact altitude."""
        return self.state.position.z > self.ground_altitude

    @property
    def clearance(self) -> float:
        """Current clearance to the nearest obstacle or boundary."""
        return self.workspace.clearance(self.state.position)

    @property
    def crashed(self) -> bool:
        """True if the drone collided or ran out of battery while airborne."""
        return self.collided or self.battery_failed

    @property
    def landed(self) -> bool:
        """True once the drone is on the ground and essentially at rest."""
        return (not self.airborne) and self.state.speed < 0.3

    def battery_status(self) -> BatteryStatus:
        """The value published on the battery-status topic."""
        return BatteryStatus(charge=self.battery.charge, altitude=self.state.position.z)

    def status(self) -> PlantStatus:
        """A snapshot for logging and metrics."""
        return PlantStatus(
            time=self.time,
            state=self.state,
            battery=self.battery,
            collided=self.collided,
            distance_flown=self.distance_flown,
        )
