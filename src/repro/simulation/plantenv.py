"""Plant-in-the-loop environment for systematic testing.

The registered scenarios abstract the continuous half of the stack away —
an :class:`~repro.testing.abstractions.AbstractEnvironment` teleports the
state estimate between menu points.  This module closes the loop instead:
a :class:`PlantEnvironment` owns one real :class:`DronePlant` (plus
estimator and battery sensor) per vehicle, integrates it under the
commands the discrete stack publishes, and feeds the resulting sensor
readings back — the co-simulation pattern of
:class:`~repro.simulation.sim.DroneSimulation`, packaged as a
tester-compatible environment whose only nondeterminism is a finite,
labelled *gust menu* sampled once per period.

Two interchangeable integration paths exist:

* the **scalar path** loops ``plant.apply`` per vehicle — the oracle;
* the **row-group path** (:class:`RowGroupPlant`) gathers the K live
  vehicles' states into the ``(K, …)`` structure-of-arrays matrices of
  :class:`~repro.simulation.population.PopulationSimulation`, issues one
  ``apply_batch`` (→ ``step_batch`` + battery ``step_batch``) per physics
  substep, and scatters the rows back — row-bitwise-identical to the
  scalar path, which ``tests/simulation/test_plantenv.py`` asserts with
  ``==``.

:class:`~repro.testing.population.PopulationTester` switches the
row-group path on (:meth:`PlantEnvironment.set_batch_plant`); the serial
:class:`~repro.testing.explorer.SystematicTester` keeps the scalar path,
so the population plane's equivalence suite doubles as the oracle proof.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import Vec3
from .drone import DronePlant
from .population import PopulationSimulation

#: Minimum row-group size for the matrix path to pay for itself.  Below
#: this many vehicles numpy's fixed per-call cost in the batched geometry
#: queries (obstacle containment, clearance, segment visibility) exceeds
#: the vectorisation win over the memoized scalar loop; the measured
#: crossover on the reference sweep is ~8 vehicles.
BATCH_PLANT_MIN_ROWS = 8


@dataclass
class PlantChannel:
    """One vehicle's plant + sensors and the topics that wire them in.

    ``command_topic`` is read from the engine board every environment
    period (the latest command the vehicle's stack published); the
    estimator's reading of the post-integration state is published on
    ``position_topic`` and the battery sensor's on ``battery_topic``
    (``None`` disables battery publishing).  ``label`` names the
    vehicle's gust choice point in trails (``wind:<label>``).
    """

    plant: DronePlant
    estimator: Any
    command_topic: str
    position_topic: str
    battery_sensor: Any = None
    battery_topic: Optional[str] = None
    label: str = "drone"

    def reset(self) -> None:
        self.plant.reset()
        self.estimator.reset()
        if self.battery_sensor is not None:
            self.battery_sensor.reset()


class RowGroupPlant:
    """K scalar :class:`DronePlant` rows stepped as one matrix plant.

    The adapter owns a tracker-less :class:`PopulationSimulation` sized to
    the group.  :meth:`step_window` gathers the scalar plants into the
    ``(K, …)`` rows (:meth:`PopulationSimulation.load_rows`), advances all
    of them with one :meth:`~PopulationSimulation.apply_batch` call per
    physics substep, and scatters the rows back
    (:meth:`~PopulationSimulation.store_rows`), so callers observe plain
    scalar plants whose fields are bit-identical to K ``apply`` loops.

    All plants must share one dynamics model, workspace and battery model
    instance — the same sharing the scalar path assumes.
    """

    def __init__(self, plants: Sequence[DronePlant]) -> None:
        if not plants:
            raise ValueError("a row group needs at least one plant")
        first = plants[0]
        for plant in plants:
            if (
                plant.model is not first.model
                or plant.workspace is not first.workspace
                or plant.battery_model is not first.battery_model
                or plant.collision_margin != first.collision_margin
                or plant.ground_altitude != first.ground_altitude
            ):
                raise ValueError("row-group plants must share model, workspace and margins")
        self._plants = list(plants)
        size = len(self._plants)
        self.sim = PopulationSimulation(
            model=first.model,
            workspace=first.workspace,
            tracker=None,
            waypoints=np.zeros((size, 1, 3)),
            initial_positions=np.zeros((size, 3)),
            battery_model=first.battery_model,
            collision_margin=first.collision_margin,
            ground_altitude=first.ground_altitude,
        )
        self.batched_substeps = 0

    @property
    def size(self) -> int:
        return len(self._plants)

    def step_window(
        self,
        commands: np.ndarray,
        duration: float,
        dt: float,
        gusts: Optional[np.ndarray] = None,
    ) -> None:
        """Advance every row by ``duration`` seconds in ``dt`` substeps.

        ``commands``/``gusts`` are ``(K, 3)`` matrices held constant over
        the window, exactly as the scalar path holds one command and one
        gust per vehicle across the same substep loop.
        """
        if duration <= 0.0:
            return
        sim = self.sim
        sim.load_rows(self._plants)
        remaining = duration
        while remaining > 1e-12:
            step = min(dt, remaining)
            sim.apply_batch(commands, step, gusts)
            self.batched_substeps += 1
            remaining -= step
        sim.store_rows(self._plants)


class PlantEnvironment:
    """A tester environment that closes the loop through real plants.

    Every ``period`` seconds the environment

    1. integrates each vehicle's plant from the previous sample to now
       (``physics_dt`` substeps) under the command its stack most recently
       published plus the gust chosen for the window,
    2. draws the next window's gust per vehicle from ``gust_menu`` via the
       bound :class:`~repro.testing.strategies.ChoiceStrategy` (labelled
       ``wind:<channel.label>`` — these are the scenario's only
       environment choice points), and
    3. publishes each vehicle's estimated state and battery reading.

    The integration runs the scalar per-plant loop by default; a
    population tester enables the row-group matrix path with
    :meth:`set_batch_plant` (bit-identical, see :class:`RowGroupPlant`).
    """

    def __init__(
        self,
        channels: Sequence[PlantChannel],
        gust_menu: Sequence[Vec3] = (Vec3.zero(),),
        period: float = 0.25,
        physics_dt: float = 0.05,
    ) -> None:
        if not channels:
            raise ValueError("a plant environment needs at least one channel")
        if period <= 0.0 or physics_dt <= 0.0:
            raise ValueError("period and physics_dt must be positive")
        if not gust_menu:
            raise ValueError("the gust menu must not be empty")
        self.channels = list(channels)
        self.gust_menu = list(gust_menu)
        self.period = period
        self.physics_dt = physics_dt
        self.strategy = None
        # Dirty tracking for incremental snapshots (repro.core.resettable):
        # the private clock never rewinds, so version ids stay unique.
        self._delta_clock = 0
        self.delta_version = 0
        self._row_group: Optional[RowGroupPlant] = None
        self._use_batch_plant = False
        self._next_time = 0.0
        self._physics_time = 0.0
        self._window_gusts: List[Vec3] = [Vec3.zero() for _ in self.channels]

    # -- tester protocol ------------------------------------------------ #
    def bind_strategy(self, strategy) -> None:
        self.strategy = strategy

    def set_batch_plant(self, enabled: bool, *, min_rows: Optional[int] = None) -> None:
        """Toggle the row-group matrix path (population tester hook).

        Engaging is economic, not unconditional: below ``min_rows``
        vehicles (default :data:`BATCH_PLANT_MIN_ROWS`) the per-window
        gather/scatter plus numpy's fixed per-call cost outweigh the
        vectorisation win, so the scalar loop is kept.  Both paths are
        bit-identical; pass ``min_rows=1`` to force the matrix path (as
        the differential tests do).
        """
        floor = BATCH_PLANT_MIN_ROWS if min_rows is None else max(1, int(min_rows))
        self._use_batch_plant = bool(enabled) and len(self.channels) >= floor
        if self._use_batch_plant and self._row_group is None:
            self._row_group = RowGroupPlant([channel.plant for channel in self.channels])

    @property
    def batch_plant_active(self) -> bool:
        """Whether integration currently runs through the row-group plant."""
        return self._use_batch_plant

    def _touch(self) -> None:
        clock = self._delta_clock + 1
        self._delta_clock = clock
        self.delta_version = clock

    def reset(self) -> None:
        for channel in self.channels:
            channel.reset()
        self._next_time = 0.0
        self._physics_time = 0.0
        self._window_gusts = [Vec3.zero() for _ in self.channels]
        self._touch()

    def apply(self, engine, upcoming_time: float) -> None:
        """Advance plants and publish sensor readings due before ``upcoming_time``."""
        advanced = False
        while self._next_time <= upcoming_time + 1e-12:
            now = self._next_time
            self._integrate_to(now, engine)
            self._window_gusts = [
                self._choose_gust(channel) for channel in self.channels
            ]
            self._publish(engine)
            self._next_time += self.period
            advanced = True
        if advanced:
            self._touch()

    # -- internals ------------------------------------------------------ #
    def _choose_gust(self, channel: PlantChannel) -> Vec3:
        menu = self.gust_menu
        if self.strategy is None:
            return menu[0]
        index = self.strategy.choose(len(menu), label=f"wind:{channel.label}")
        return menu[index]

    def _command_rows(self, engine) -> List[Any]:
        commands = []
        for channel in self.channels:
            value = engine.read_topic(channel.command_topic)
            commands.append(value if value is not None else None)
        return commands

    def _integrate_to(self, until: float, engine) -> None:
        duration = until - self._physics_time
        if duration <= 1e-12:
            return
        commands = self._command_rows(engine)
        gusts = self._window_gusts
        if self._use_batch_plant and self._row_group is not None:
            rows = np.zeros((len(commands), 3))
            for index, command in enumerate(commands):
                if command is not None:
                    rows[index] = command.acceleration.as_tuple()
            gust_rows = np.array([gust.as_tuple() for gust in gusts], dtype=float)
            self._row_group.step_window(rows, duration, self.physics_dt, gust_rows)
        else:
            remaining = duration
            while remaining > 1e-12:
                step = min(self.physics_dt, remaining)
                for channel, command, gust in zip(self.channels, commands, gusts):
                    channel.plant.apply(command, step, gust)
                remaining -= step
        self._physics_time = until

    def _publish(self, engine) -> None:
        for channel in self.channels:
            estimate = channel.estimator.estimate(channel.plant.state)
            engine.set_input(channel.position_topic, estimate)
            if channel.battery_sensor is not None and channel.battery_topic is not None:
                reading = channel.battery_sensor.measure(channel.plant)
                engine.set_input(channel.battery_topic, reading)

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    def capture_delta_state(self) -> Tuple[Any, ...]:
        """Everything that evolves between trie boundaries, as plain values.

        Plant fields are immutable value objects (``Vec3``/``DroneState``/
        ``BatteryState``/floats), so a tuple of references is already a
        snapshot; estimators and sensors (RNG streams, fault windows) are
        deep-copied.
        """
        plants = tuple(
            (
                channel.plant.time,
                channel.plant.state,
                channel.plant.battery,
                channel.plant.collided,
                channel.plant.collision_position,
                channel.plant.battery_failed,
                channel.plant.distance_flown,
                channel.plant.min_clearance,
            )
            for channel in self.channels
        )
        sensors = tuple(
            copy.deepcopy((channel.estimator, channel.battery_sensor))
            for channel in self.channels
        )
        return (
            self._next_time,
            self._physics_time,
            tuple(self._window_gusts),
            plants,
            sensors,
        )

    def restore_delta_state(self, state: Tuple[Any, ...]) -> None:
        """Rewind to a :meth:`capture_delta_state` point, in place."""
        next_time, physics_time, gusts, plants, sensors = state
        self._next_time = next_time
        self._physics_time = physics_time
        self._window_gusts = list(gusts)
        for channel, row, pair in zip(self.channels, plants, sensors):
            plant = channel.plant
            (
                plant.time,
                plant.state,
                plant.battery,
                plant.collided,
                plant.collision_position,
                plant.battery_failed,
                plant.distance_flown,
                plant.min_clearance,
            ) = row
            channel.estimator, channel.battery_sensor = copy.deepcopy(pair)
        self._touch()
