"""The case-study worlds: the surveillance city and the g1..g4 test range.

The paper's evaluation (Figure 2) uses a Gazebo city workspace with static
buildings and a set of surveillance points the drone must visit
repeatedly; Figure 5 / 12a use a smaller range with four goals g1..g4 laid
out around obstacles.  These factory functions build the equivalent
workspaces plus their mission points.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Sequence

from ..geometry import (
    Vec3,
    Workspace,
    corridor_workspace,
    grid_city_workspace,
)


@dataclass
class MissionWorld:
    """A workspace plus the mission-relevant points inside it."""

    workspace: Workspace
    surveillance_points: List[Vec3] = field(default_factory=list)
    home: Vec3 = field(default_factory=lambda: Vec3(2.0, 2.0, 2.0))
    cruise_altitude: float = 2.0

    def random_goal(self, rng: random.Random, margin: float = 1.5) -> Vec3:
        """A random surveillance goal at cruise altitude with safe clearance."""
        return self.workspace.random_free_point(
            rng,
            margin=margin,
            altitude_range=(self.cruise_altitude, self.cruise_altitude),
        )

    def goals_cycle(self, count: int) -> List[Vec3]:
        """The first ``count`` goals cycling through the surveillance points."""
        if not self.surveillance_points:
            raise ValueError("this world has no predefined surveillance points")
        return [self.surveillance_points[i % len(self.surveillance_points)] for i in range(count)]


def surveillance_city(altitude: float = 2.0) -> MissionWorld:
    """The city of Figure 2: a 50 m x 50 m block grid with nine buildings.

    The surveillance points sit in the streets between buildings, so every
    leg of the mission passes close to at least one obstacle — which is
    what exercises the motion-primitive RTA module.
    """
    workspace = grid_city_workspace(
        width=50.0,
        depth=50.0,
        ceiling=12.0,
        building_rows=3,
        building_cols=3,
        building_size=5.0,
        building_height=8.0,
        street_margin=6.0,
        name="surveillance-city",
    )
    points = [
        Vec3(4.0, 4.0, altitude),
        Vec3(25.0, 4.0, altitude),
        Vec3(46.0, 4.0, altitude),
        Vec3(46.0, 25.0, altitude),
        Vec3(46.0, 46.0, altitude),
        Vec3(25.0, 46.0, altitude),
        Vec3(4.0, 46.0, altitude),
        Vec3(4.0, 25.0, altitude),
        Vec3(18.5, 25.0, altitude),
    ]
    return MissionWorld(
        workspace=workspace,
        surveillance_points=points,
        home=Vec3(4.0, 4.0, altitude),
        cruise_altitude=altitude,
    )


def waypoint_range(altitude: float = 2.0) -> MissionWorld:
    """The g1..g4 range of Figure 5 / 12a: goals with obstacles just past the corners.

    The four goals form a rectangle; obstacle blocks sit just outside the
    corners in the direction an overshooting controller swings wide (the
    red keep-out regions of Figure 5 right).  A time-optimised controller
    that arrives at a corner at cruise speed overshoots into a block; a
    conservative controller, or the RTA-protected primitive, does not.
    """
    from ..geometry import AABB

    workspace = corridor_workspace(
        length=40.0,
        width=14.0,
        ceiling=8.0,
        pillar_positions=(),
        name="g1-g4-range",
    )
    # Keep-out blocks just beyond the corners (overshoot directions).
    workspace.add_obstacle(AABB.from_footprint(35.5, 2.5, 2.5, 2.5, 6.0))   # past g2, +x
    workspace.add_obstacle(AABB.from_footprint(32.0, 11.0, 2.5, 2.5, 6.0))  # past g3, +y
    workspace.add_obstacle(AABB.from_footprint(2.0, 2.5, 2.5, 2.5, 6.0))    # past g1, -x
    goals = [
        Vec3(6.0, 4.0, altitude),   # g1
        Vec3(34.0, 4.0, altitude),  # g2
        Vec3(34.0, 10.0, altitude), # g3
        Vec3(6.0, 10.0, altitude),  # g4
    ]
    return MissionWorld(
        workspace=workspace,
        surveillance_points=goals,
        home=goals[0],
        cruise_altitude=altitude,
    )


def figure_eight_range(altitude: float = 2.0) -> MissionWorld:
    """An open range for the figure-eight experiment of Figure 5 (left).

    Two pylons sit inside the lobes of the eight so that a controller that
    deviates from the loop risks hitting them.
    """
    workspace = corridor_workspace(
        length=30.0,
        width=20.0,
        ceiling=8.0,
        pillar_positions=(),
        name="figure-eight-range",
    )
    from ..geometry import AABB

    workspace.add_obstacle(AABB.from_footprint(9.0, 6.0, 2.0, 2.0, 6.0))
    workspace.add_obstacle(AABB.from_footprint(19.0, 12.0, 2.0, 2.0, 6.0))
    return MissionWorld(
        workspace=workspace,
        surveillance_points=[],
        home=Vec3(15.0, 10.0, altitude),
        cruise_altitude=altitude,
    )
