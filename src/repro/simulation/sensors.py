"""Trusted state estimators (the green blocks of Figure 3 in the paper).

The paper assumes the state estimators are trusted and "accurately provide
the system state within bounds"; the estimators here add bounded, seeded
noise so that assumption is represented (and the decision-module margins
can absorb it) without undermining it.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Optional, Tuple

from ..dynamics import DroneState
from ..geometry import Vec3
from .drone import BatteryStatus, DronePlant


@dataclass
class StateEstimator:
    """Adds bounded position/velocity noise to the ground-truth drone state."""

    position_noise: float = 0.03
    velocity_noise: float = 0.03
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.position_noise < 0.0 or self.velocity_noise < 0.0:
            raise ValueError("noise bounds must be non-negative")
        self._rng = random.Random(self.seed)

    def reset(self) -> None:
        """Re-seed the noise stream from the construction seed (Resettable)."""
        self._rng = random.Random(self.seed)

    def _bounded_noise(self, bound: float) -> Vec3:
        return Vec3(
            self._rng.uniform(-bound, bound),
            self._rng.uniform(-bound, bound),
            self._rng.uniform(-bound, bound) * 0.5,
        )

    def estimate(self, state: DroneState) -> DroneState:
        """A noisy but bounded estimate of the true state."""
        return DroneState(
            position=state.position + self._bounded_noise(self.position_noise),
            velocity=state.velocity + self._bounded_noise(self.velocity_noise),
        )


@dataclass
class BatterySensor:
    """Reports the state of charge with a small bounded error."""

    charge_noise: float = 0.002
    seed: int = 1
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.charge_noise < 0.0:
            raise ValueError("charge noise must be non-negative")
        self._rng = random.Random(self.seed)

    def reset(self) -> None:
        """Re-seed the noise stream from the construction seed (Resettable)."""
        self._rng = random.Random(self.seed)

    def measure(self, plant: DronePlant) -> BatteryStatus:
        """A noisy battery reading (clamped to [0, 1])."""
        noise = self._rng.uniform(-self.charge_noise, self.charge_noise)
        charge = min(1.0, max(0.0, plant.battery.charge + noise))
        return BatteryStatus(charge=charge, altitude=plant.state.position.z)


@dataclass
class PerfectEstimator:
    """Noise-free estimator for deterministic unit tests."""

    def estimate(self, state: DroneState) -> DroneState:
        return state

    def reset(self) -> None:
        """Stateless; present for Resettable-protocol uniformity."""


#: Sensor fault modes (sample-count windowed — estimators are called once
#: per sensor-publish instant, so sample indices are a deterministic clock).
SENSOR_FAULT_MODES: Tuple[str, ...] = ("stuck", "stale", "dropout")


@dataclass
class _SampleWindowedFault:
    """Shared machinery of the sensor fault wrappers.

    ``estimate``/``measure`` receive no timestamp, but the simulation
    samples each sensor exactly once per publish instant, so the *sample
    index* is a deterministic clock: the fault is active for samples in
    the half-open window ``[fault_from, fault_until)``.  Determinism
    across resets follows from resetting the counter, the history and the
    wrapped sensor's own RNG — two resets produce identical reading
    streams, which the fault exploration plane relies on for replay.

    Modes:

    * ``stuck`` — the last healthy reading is repeated for the whole
      window (a frozen sensor);
    * ``stale`` — readings lag ``lag`` samples behind (a congested
      sensor bus); before ``lag`` healthy samples exist the oldest
      available reading is served;
    * ``dropout`` — readings are replaced by ``None`` (a dead sensor);
      the downstream nodes and monitors already tolerate missing values.
    """

    mode: str = "stuck"
    fault_from: int = 0
    fault_until: int = 1 << 30
    lag: int = 5

    def __post_init__(self) -> None:
        if self.mode not in SENSOR_FAULT_MODES:
            raise ValueError(f"unknown sensor fault mode {self.mode!r}")
        if self.fault_until < self.fault_from:
            raise ValueError("the fault window must have fault_until >= fault_from")
        if self.lag < 1:
            raise ValueError("the stale lag must be at least 1")
        self._samples = 0
        self._last: Any = None
        self._history: Deque[Any] = deque(maxlen=self.lag + 1)

    def _reset_fault_state(self) -> None:
        self._samples = 0
        self._last = None
        self._history.clear()

    def _filter(self, reading: Any) -> Optional[Any]:
        """Apply the windowed fault to one healthy reading."""
        index = self._samples
        self._samples = index + 1
        self._history.append(reading)
        if not self.fault_from <= index < self.fault_until:
            self._last = reading
            return reading
        if self.mode == "dropout":
            return None
        if self.mode == "stale":
            return self._history[0]
        # stuck: hold the last pre-window reading; a fault active from the
        # very first sample pins that first reading.
        if self._last is None:
            self._last = reading
        return self._last


@dataclass
class FaultyStateEstimator(_SampleWindowedFault):
    """A :class:`StateEstimator` whose readings freeze, lag, or drop out."""

    inner: Any = field(default_factory=StateEstimator)

    def estimate(self, state: DroneState) -> Optional[DroneState]:
        return self._filter(self.inner.estimate(state))

    def reset(self) -> None:
        """Rewind the wrapped estimator and the fault window clock (Resettable)."""
        self.inner.reset()
        self._reset_fault_state()


@dataclass
class FaultyBatterySensor(_SampleWindowedFault):
    """A :class:`BatterySensor` whose readings freeze, lag, or drop out."""

    inner: Any = field(default_factory=BatterySensor)

    def measure(self, plant: DronePlant) -> Optional[BatteryStatus]:
        return self._filter(self.inner.measure(plant))

    def reset(self) -> None:
        """Rewind the wrapped sensor and the fault window clock (Resettable)."""
        self.inner.reset()
        self._reset_fault_state()
