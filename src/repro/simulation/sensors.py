"""Trusted state estimators (the green blocks of Figure 3 in the paper).

The paper assumes the state estimators are trusted and "accurately provide
the system state within bounds"; the estimators here add bounded, seeded
noise so that assumption is represented (and the decision-module margins
can absorb it) without undermining it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..dynamics import DroneState
from ..geometry import Vec3
from .drone import BatteryStatus, DronePlant


@dataclass
class StateEstimator:
    """Adds bounded position/velocity noise to the ground-truth drone state."""

    position_noise: float = 0.03
    velocity_noise: float = 0.03
    seed: int = 0
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.position_noise < 0.0 or self.velocity_noise < 0.0:
            raise ValueError("noise bounds must be non-negative")
        self._rng = random.Random(self.seed)

    def reset(self) -> None:
        """Re-seed the noise stream from the construction seed (Resettable)."""
        self._rng = random.Random(self.seed)

    def _bounded_noise(self, bound: float) -> Vec3:
        return Vec3(
            self._rng.uniform(-bound, bound),
            self._rng.uniform(-bound, bound),
            self._rng.uniform(-bound, bound) * 0.5,
        )

    def estimate(self, state: DroneState) -> DroneState:
        """A noisy but bounded estimate of the true state."""
        return DroneState(
            position=state.position + self._bounded_noise(self.position_noise),
            velocity=state.velocity + self._bounded_noise(self.velocity_noise),
        )


@dataclass
class BatterySensor:
    """Reports the state of charge with a small bounded error."""

    charge_noise: float = 0.002
    seed: int = 1
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.charge_noise < 0.0:
            raise ValueError("charge noise must be non-negative")
        self._rng = random.Random(self.seed)

    def reset(self) -> None:
        """Re-seed the noise stream from the construction seed (Resettable)."""
        self._rng = random.Random(self.seed)

    def measure(self, plant: DronePlant) -> BatteryStatus:
        """A noisy battery reading (clamped to [0, 1])."""
        noise = self._rng.uniform(-self.charge_noise, self.charge_noise)
        charge = min(1.0, max(0.0, plant.battery.charge + noise))
        return BatteryStatus(charge=charge, altitude=plant.state.position.z)


@dataclass
class PerfectEstimator:
    """Noise-free estimator for deterministic unit tests."""

    def estimate(self, state: DroneState) -> DroneState:
        return state

    def reset(self) -> None:
        """Stateless; present for Resettable-protocol uniformity."""
