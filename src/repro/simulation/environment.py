"""Environmental disturbances (wind).

The paper's simplified case study assumes "no environment uncertainties
like wind"; the reproduction keeps that default but provides wind models
so the robustness of the RTA margins can be probed in the extension
benchmarks and property tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..geometry import Vec3


class NoWind:
    """The paper's nominal assumption: no disturbance."""

    def acceleration(self, time: float) -> Vec3:
        return Vec3.zero()


@dataclass
class ConstantWind:
    """A constant disturbance acceleration."""

    direction: Vec3 = field(default_factory=lambda: Vec3(1.0, 0.0, 0.0))
    strength: float = 0.5

    def __post_init__(self) -> None:
        if self.strength < 0.0:
            raise ValueError("wind strength must be non-negative")
        if self.direction.norm() == 0.0:
            raise ValueError("wind direction must be non-zero")
        self.direction = self.direction.unit()

    def acceleration(self, time: float) -> Vec3:
        return self.direction * self.strength


@dataclass
class GustyWind:
    """Sinusoidal gusts with seeded random phase on top of a mean wind."""

    mean: Vec3 = field(default_factory=lambda: Vec3(0.5, 0.0, 0.0))
    gust_amplitude: float = 0.8
    gust_period: float = 7.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.gust_amplitude < 0.0 or self.gust_period <= 0.0:
            raise ValueError("gust amplitude must be non-negative and period positive")
        rng = random.Random(self.seed)
        self._phase = rng.uniform(0.0, 2.0 * math.pi)
        self._gust_direction = Vec3(
            rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), 0.0
        )
        if self._gust_direction.norm() == 0.0:
            self._gust_direction = Vec3(1.0, 0.0, 0.0)
        self._gust_direction = self._gust_direction.unit()

    def acceleration(self, time: float) -> Vec3:
        gust = math.sin(2.0 * math.pi * time / self.gust_period + self._phase)
        return self.mean + self._gust_direction * (self.gust_amplitude * gust)
