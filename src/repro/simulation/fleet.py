"""Co-simulation of N drone plants sharing one compiled RTA system.

The multi-vehicle counterpart of :class:`~repro.simulation.sim.DroneSimulation`:
every vehicle brings its own plant, state estimator and battery sensor,
publishing on its namespace's sensor topics, while one
:class:`~repro.core.semantics.SemanticsEngine` drives the composed fleet
program.  Between discrete steps all plants integrate their currently
published control commands at the shared physics step, so the vehicles
evolve in lock-step through the same airspace — which is what the
pairwise :class:`~repro.core.monitor.SeparationMonitor` observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.monitor import MonitorSuite
from ..core.semantics import SchedulingPolicy, SemanticsEngine
from ..core.system import RTASystem
from ..dynamics import ControlCommand
from ..geometry import Trajectory, pairwise_separations
from ..runtime.tracing import ExecutionTrace
from .drone import DronePlant
from .environment import NoWind
from .sensors import BatterySensor, StateEstimator


@dataclass
class VehicleChannels:
    """One vehicle's plant, sensors, and the topics they publish/read."""

    name: str
    plant: DronePlant
    estimator: StateEstimator
    battery_sensor: BatterySensor
    position_topic: str
    battery_topic: str
    command_topic: str


@dataclass
class FleetSimulationConfig:
    """Fidelity knobs shared by every vehicle of the fleet co-simulation."""

    physics_dt: float = 0.02
    monitor_period: float = 0.1
    record_trajectories: bool = True

    def __post_init__(self) -> None:
        if self.physics_dt <= 0.0:
            raise ValueError("physics_dt must be positive")
        if self.monitor_period <= 0.0:
            raise ValueError("monitor_period must be positive")


@dataclass
class FleetResult:
    """Everything one simulated fleet mission produced."""

    engine: SemanticsEngine
    vehicles: List[VehicleChannels]
    monitors: MonitorSuite
    trace: ExecutionTrace
    trajectories: Dict[str, Trajectory]
    end_time: float
    stop_reason: str

    @property
    def collided(self) -> bool:
        return any(channel.plant.collided for channel in self.vehicles)

    @property
    def crashed(self) -> bool:
        return any(channel.plant.crashed for channel in self.vehicles)

    @property
    def safe(self) -> bool:
        return not self.crashed and self.monitors.ok

    def min_separation_observed(self) -> float:
        """The smallest recorded pairwise separation across the mission.

        Trajectories are sampled at the same instants (every environment
        transition), so stacking them gives an ``(S, N, 3)`` window that
        one batched :func:`~repro.geometry.pairwise_separations` call
        reduces — the same query plane the separation monitor uses.
        """
        if len(self.vehicles) < 2:
            return float("inf")
        samples = [
            [sample.position.as_tuple() for sample in self.trajectories[channel.name].samples]
            for channel in self.vehicles
        ]
        length = min(len(track) for track in samples)
        if length == 0:
            return float("inf")
        stacked = np.array([track[:length] for track in samples], dtype=float)  # (N, S, 3)
        return float(pairwise_separations(stacked.transpose(1, 0, 2)).min())


class FleetSimulation:
    """Couples N :class:`DronePlant`\\ s with one compiled :class:`RTASystem`."""

    def __init__(
        self,
        system: RTASystem,
        vehicles: Sequence[VehicleChannels],
        wind=None,
        scheduler: Optional[SchedulingPolicy] = None,
        monitors: Optional[MonitorSuite] = None,
        config: Optional[FleetSimulationConfig] = None,
    ) -> None:
        if not vehicles:
            raise ValueError("a fleet simulation needs at least one vehicle")
        names = [channel.name for channel in vehicles]
        if len(set(names)) != len(names):
            raise ValueError("vehicle names must be distinct")
        self.system = system
        self.vehicles = list(vehicles)
        self.wind = wind or NoWind()
        self.scheduler = scheduler
        self.monitors = monitors or MonitorSuite()
        self.config = config or FleetSimulationConfig()
        self.trace = ExecutionTrace()
        self.engine = SemanticsEngine(system, scheduler=scheduler, listeners=[self.trace])
        self.trajectories: Dict[str, Trajectory] = {
            channel.name: Trajectory() for channel in self.vehicles
        }
        self._last_physics_time = 0.0
        self._next_monitor_time = 0.0
        self._publish_sensors()

    def reset(self) -> None:
        """Rewind the whole fleet co-simulation to mission start (Resettable)."""
        for channel in self.vehicles:
            channel.plant.reset()
            for component in (channel.estimator, channel.battery_sensor):
                reset = getattr(component, "reset", None)
                if callable(reset):
                    reset()
        scheduler_reset = getattr(self.scheduler, "reset", None)
        if callable(scheduler_reset):
            scheduler_reset()
        self.monitors.reset()
        self.trace.reset()
        self.engine.reset()
        for trajectory in self.trajectories.values():
            trajectory.samples.clear()
        self._last_physics_time = 0.0
        self._next_monitor_time = 0.0
        self._publish_sensors()

    # ------------------------------------------------------------------ #
    # the environment hook (plants' physics + sensor publication)
    # ------------------------------------------------------------------ #
    def _advance_plants(self, until: float) -> None:
        until = max(until, self._last_physics_time)
        commands: List[Optional[ControlCommand]] = []
        for channel in self.vehicles:
            command = self.engine.read_topic(channel.command_topic)
            if command is not None and not isinstance(command, ControlCommand):
                command = None
            commands.append(command)
        while self._last_physics_time < until - 1e-12:
            dt = min(self.config.physics_dt, until - self._last_physics_time)
            disturbance = self.wind.acceleration(self._last_physics_time)
            for channel, command in zip(self.vehicles, commands):
                channel.plant.apply(command, dt, disturbance=disturbance)
            self._last_physics_time += dt
        if self.config.record_trajectories:
            for channel in self.vehicles:
                self.trajectories[channel.name].append(
                    time=until,
                    position=channel.plant.state.position,
                    velocity=channel.plant.state.velocity,
                )

    def _publish_sensors(self) -> None:
        for channel in self.vehicles:
            estimate = channel.estimator.estimate(channel.plant.state)
            self.engine.set_input(channel.position_topic, estimate)
            self.engine.set_input(
                channel.battery_topic, channel.battery_sensor.measure(channel.plant)
            )

    def _environment(self, engine: SemanticsEngine, upcoming: float) -> None:
        self._advance_plants(upcoming)
        self._publish_sensors()
        while self._next_monitor_time <= upcoming + 1e-12:
            self.monitors.check_all(engine)
            self._next_monitor_time += self.config.monitor_period

    # ------------------------------------------------------------------ #
    # running missions
    # ------------------------------------------------------------------ #
    def run(
        self,
        duration: float,
        stop_when: Optional[Callable[["FleetSimulation"], bool]] = None,
        stop_on_crash: bool = True,
    ) -> FleetResult:
        """Run the fleet mission for up to ``duration`` seconds of simulated time."""
        stop_reason = "duration elapsed"

        def should_stop(engine: SemanticsEngine) -> bool:
            nonlocal stop_reason
            if stop_on_crash and any(channel.plant.crashed for channel in self.vehicles):
                stop_reason = "crash"
                return True
            if stop_when is not None and stop_when(self):
                stop_reason = "stop condition"
                return True
            return False

        self.engine.run_until(duration, environment=self._environment, stop_when=should_stop)
        return FleetResult(
            engine=self.engine,
            vehicles=self.vehicles,
            monitors=self.monitors,
            trace=self.trace,
            trajectories=self.trajectories,
            end_time=self.engine.current_time,
            stop_reason=stop_reason,
        )
