"""K drone missions integrated in lock-step (structure-of-arrays plant).

The population execution plane of the systematic tester
(:mod:`repro.testing.population`) deduplicates *discrete* work — whole
executions that retrace known choice trails.  This module is its
continuous-dynamics counterpart: ``K`` copies of one mission advance as
``(K, …)`` state matrices through one :meth:`~repro.dynamics.DynamicsModel.step_batch`
/ :meth:`~repro.control.WaypointTracker.command_batch` /
:meth:`~repro.dynamics.BatteryModel.step_batch` call per physics tick,
instead of ``K`` scalar :class:`~repro.simulation.drone.DronePlant` loops.

Per-row semantics are **bit-identical** to :meth:`DronePlant.apply`: the
same floating-point expressions evaluate in the same order, and rows that
diverge — collided, battery-depleted, grounded — are carried by boolean
masks (``np.where`` freezes) rather than control flow, so every row ends
exactly where its scalar twin would.  ``tests/simulation`` asserts that
equality with ``==`` against a loop of real plants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..control.base import WaypointTracker
from ..dynamics import BatteryModel, BatteryState, DroneState, DynamicsModel
from ..geometry import Vec3, Workspace
from ..geometry.vec import row_norms
from .drone import DronePlant


@dataclass
class PopulationStatus:
    """Per-row snapshot of the whole population (all arrays length ``K``)."""

    time: float
    positions: np.ndarray  # (K, 3)
    velocities: np.ndarray  # (K, 3)
    charges: np.ndarray  # (K,)
    collided: np.ndarray  # (K,) bool
    battery_failed: np.ndarray  # (K,) bool
    distance_flown: np.ndarray  # (K,)
    min_clearance: np.ndarray  # (K,)
    waypoint_index: np.ndarray  # (K,) int

    @property
    def crashed(self) -> np.ndarray:
        """Row-wise ``DronePlant.crashed``: collided or airborne depletion."""
        return self.collided | self.battery_failed

    @property
    def any_crashed(self) -> bool:
        return bool(self.crashed.any())


class PopulationSimulation:
    """``K`` :class:`DronePlant`-equivalent missions as one matrix plant.

    Every row runs the same closed loop — waypoint tracker in, dynamics +
    battery + collision bookkeeping out — over its own initial state,
    charge and waypoint list.  One call per tick to the tracker's
    ``command_batch`` and the model's ``step_batch`` replaces ``K``
    scalar control/integration calls, which is where the population
    plane's throughput comes from.

    Args:
        model: shared dynamics (stateful models must implement the
            ``begin_batch`` per-row contract).
        workspace: shared static geometry.
        tracker: shared waypoint tracker with a vectorised
            ``command_batch`` (bit-identical to its scalar ``command``).
        waypoints: ``(K, W, 3)`` per-row waypoint lists.  A row advances
            to its next waypoint when within ``waypoint_tolerance`` of
            the current one, and holds the last waypoint forever.
        initial_positions / initial_velocities: ``(K, 3)`` starting
            states (velocities default to rest).
        initial_charges: scalar or ``(K,)`` starting charge fractions.
        battery_model: shared charge dynamics.
        collision_margin / ground_altitude: as on :class:`DronePlant`.
        waypoint_tolerance: arrival radius for waypoint advancement.
    """

    def __init__(
        self,
        model: DynamicsModel,
        workspace: Workspace,
        tracker: Optional[WaypointTracker],
        waypoints: np.ndarray,
        initial_positions: np.ndarray,
        initial_velocities: Optional[np.ndarray] = None,
        initial_charges: float | np.ndarray = 1.0,
        battery_model: Optional[BatteryModel] = None,
        collision_margin: float = 0.0,
        ground_altitude: float = 0.15,
        waypoint_tolerance: float = 0.5,
    ) -> None:
        self.model = model
        self.workspace = workspace
        self.tracker = tracker
        self.battery_model = battery_model or BatteryModel()
        self.collision_margin = collision_margin
        self.ground_altitude = ground_altitude
        self.waypoint_tolerance = waypoint_tolerance
        self._waypoints = np.asarray(waypoints, dtype=float)
        if self._waypoints.ndim != 3 or self._waypoints.shape[2] != 3:
            raise ValueError("waypoints must be a (K, W, 3) array")
        size = self._waypoints.shape[0]
        self._initial_positions = (
            np.asarray(initial_positions, dtype=float).reshape(-1, 3).copy()
        )
        if self._initial_positions.shape[0] != size:
            raise ValueError("initial_positions must have one row per mission")
        if initial_velocities is None:
            self._initial_velocities = np.zeros((size, 3))
        else:
            self._initial_velocities = (
                np.asarray(initial_velocities, dtype=float).reshape(-1, 3).copy()
            )
            if self._initial_velocities.shape[0] != size:
                raise ValueError("initial_velocities must have one row per mission")
        self._initial_charges = np.broadcast_to(
            np.asarray(initial_charges, dtype=float), (size,)
        ).copy()
        self.reset()

    @property
    def size(self) -> int:
        """K — the number of missions in the population."""
        return self._waypoints.shape[0]

    def reset(self) -> None:
        """Rewind every row to mission start (Resettable).

        Shared geometry, tracker and models stay warm; only the ``(K, …)``
        state matrices rewind — the population analogue of
        :meth:`DronePlant.reset`.
        """
        self.time = 0.0
        self.positions = self._initial_positions.copy()
        self.velocities = self._initial_velocities.copy()
        self.charges = self._initial_charges.copy()
        self.collided = np.zeros(self.size, dtype=bool)
        self.battery_failed = np.zeros(self.size, dtype=bool)
        self.distance_flown = np.zeros(self.size)
        self.waypoint_index = np.zeros(self.size, dtype=int)
        self.collision_positions = np.full((self.size, 3), np.nan)
        self.min_clearance = self.workspace.clearance_batch(self.positions)
        self.model.begin_batch(self.size)

    # ------------------------------------------------------------------ #
    # the closed loop
    # ------------------------------------------------------------------ #
    def current_targets(self) -> np.ndarray:
        """The ``(K, 3)`` waypoint each row is currently tracking."""
        rows = np.arange(self.size)
        return self._waypoints[rows, self.waypoint_index]

    def _advance_waypoints(self) -> None:
        """Advance rows within tolerance of their target (one hop per tick)."""
        targets = self.current_targets()
        arrived = row_norms(targets - self.positions) < self.waypoint_tolerance
        last = self._waypoints.shape[1] - 1
        self.waypoint_index = np.where(
            arrived & (self.waypoint_index < last),
            self.waypoint_index + 1,
            self.waypoint_index,
        )

    def step(self, dt: float, disturbance: Vec3 = Vec3()) -> None:
        """One physics tick: track, integrate, drain, collide — all rows at once.

        Mirrors :meth:`DronePlant.apply` row by row: frozen (collided)
        rows advance only their clock; battery-depleted airborne rows
        free-fall; post-step rows clamp to the ground plane, latch battery
        failures and collisions, and fold the clearance at their (possibly
        frozen) position into ``min_clearance``.
        """
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        if self.tracker is None:
            raise ValueError(
                "step() needs a tracker; command-driven callers use apply_batch()"
            )
        self._advance_waypoints()
        commands = self.tracker.command_batch(
            self.positions, self.velocities, self.current_targets(), self.time
        )
        if disturbance.norm() > 0.0:
            disturbances: Optional[np.ndarray] = np.broadcast_to(
                np.asarray(disturbance.as_tuple(), dtype=float), (self.size, 3)
            )
        else:
            disturbances = None
        self.apply_batch(commands, dt, disturbances)

    def apply_batch(
        self,
        commands: np.ndarray,
        dt: float,
        disturbances: Optional[np.ndarray] = None,
    ) -> None:
        """Advance every row by ``dt`` under explicit per-row commands.

        The command-driven twin of :meth:`DronePlant.apply`: ``commands``
        is a ``(K, 3)`` acceleration matrix (one row per mission; a hover
        is all zeros) and ``disturbances`` an optional ``(K, 3)`` additive
        gust matrix.  Rows whose disturbance is exactly zero skip the add,
        matching the scalar plant's ``norm() > 0`` guard bit for bit.
        :meth:`step` derives its commands from the waypoint tracker and
        delegates here; the testing plane's row-group adapter calls this
        directly with the commands each execution's discrete stack
        published.
        """
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        self.time += dt
        active = ~self.collided
        if not active.any():
            return
        accelerations = np.array(commands, dtype=float, copy=True)
        if accelerations.shape != (self.size, 3):
            raise ValueError("commands must be a (K, 3) acceleration matrix")
        if disturbances is not None:
            gusts = np.asarray(disturbances, dtype=float)
            if gusts.shape != (self.size, 3):
                raise ValueError("disturbances must be a (K, 3) matrix")
            gusty = row_norms(gusts) > 0.0
            accelerations[gusty] = accelerations[gusty] + gusts[gusty]
        # Pre-step depletion while airborne: the drone free-falls.
        airborne_pre = self.positions[:, 2] > self.ground_altitude
        freefall = (self.charges <= 0.0) & airborne_pre
        accelerations[freefall] = (0.0, 0.0, -self.model.max_acceleration)
        previous = self.positions
        new_positions, new_velocities = self.model.step_batch(
            previous, self.velocities, accelerations, dt
        )
        # Ground clamp: z < 0 rows land with vertical velocity zeroed.
        below = new_positions[:, 2] < 0.0
        new_positions[below, 2] = 0.0
        new_velocities[below, 2] = 0.0
        travelled = row_norms(new_positions - previous)
        new_charges = self.battery_model.step_batch(self.charges, accelerations, dt)
        airborne_post = new_positions[:, 2] > self.ground_altitude
        new_battery_failed = (new_charges <= 0.0) & airborne_post
        # Collision latch (airborne rows only): obstacle hit, bounds exit,
        # or an obstacle crossed between the step's endpoints.
        hit = airborne_post & (
            self.workspace.in_obstacle_batch(new_positions, margin=self.collision_margin)
            | ~self.workspace.in_bounds_batch(new_positions)
            | ~self.workspace.segments_free_batch(previous, new_positions)
        )
        new_velocities[hit] = 0.0
        newly_collided = active & hit
        self.collision_positions[newly_collided] = new_positions[newly_collided]
        clearances = self.workspace.clearance_batch(new_positions)
        # Masked commit: frozen rows keep every field; rows colliding this
        # tick keep their post-step position (frozen from the next tick on)
        # and still record distance, charge and clearance — exactly the
        # scalar order of DronePlant.apply.
        self.positions = np.where(active[:, None], new_positions, self.positions)
        self.velocities = np.where(active[:, None], new_velocities, self.velocities)
        self.distance_flown = np.where(
            active, self.distance_flown + travelled, self.distance_flown
        )
        self.charges = np.where(active, new_charges, self.charges)
        self.battery_failed = self.battery_failed | (active & new_battery_failed)
        self.min_clearance = np.where(
            active, np.minimum(self.min_clearance, clearances), self.min_clearance
        )
        self.collided = self.collided | (active & hit)

    def run(self, duration: float, dt: float = 0.02) -> PopulationStatus:
        """Advance the whole population for ``duration`` seconds of mission time."""
        if dt <= 0.0:
            raise ValueError("dt must be positive")
        remaining = duration
        while remaining > 1e-12:
            step = min(dt, remaining)
            self.step(step)
            remaining -= step
        return self.status()

    # ------------------------------------------------------------------ #
    # scalar-plant row exchange (the testing plane's row-group adapter)
    # ------------------------------------------------------------------ #
    def load_rows(self, plants: Sequence[DronePlant]) -> None:
        """Adopt the live state of ``K`` scalar plants as the ``(K, …)`` rows.

        The plants must share one mission clock (row groups advance in
        lock-step).  Stateful dynamics models restart their per-row batch
        state here (``begin_batch``), so groups should be loaded at points
        where that state is at rest — mission start or a snapshot boundary
        — exactly as the scalar path's shared-model usage assumes.
        """
        if len(plants) != self.size:
            raise ValueError("need exactly one plant per population row")
        for index, plant in enumerate(plants):
            self.positions[index] = plant.state.position.as_tuple()
            self.velocities[index] = plant.state.velocity.as_tuple()
            self.charges[index] = plant.battery.charge
            self.collided[index] = plant.collided
            self.battery_failed[index] = plant.battery_failed
            self.distance_flown[index] = plant.distance_flown
            self.min_clearance[index] = plant.min_clearance
            if plant.collision_position is not None:
                self.collision_positions[index] = plant.collision_position.as_tuple()
            else:
                self.collision_positions[index] = np.nan
        self.time = float(plants[0].time)
        self.model.begin_batch(self.size)

    def store_rows(self, plants: Sequence[DronePlant]) -> None:
        """Scatter the ``(K, …)`` rows back into ``K`` scalar plants.

        The inverse of :meth:`load_rows`; every scalar field round-trips
        bit-exactly (``float`` of a float64 cell is the cell).
        """
        if len(plants) != self.size:
            raise ValueError("need exactly one plant per population row")
        for index, plant in enumerate(plants):
            plant.state = DroneState(
                position=Vec3(
                    float(self.positions[index, 0]),
                    float(self.positions[index, 1]),
                    float(self.positions[index, 2]),
                ),
                velocity=Vec3(
                    float(self.velocities[index, 0]),
                    float(self.velocities[index, 1]),
                    float(self.velocities[index, 2]),
                ),
            )
            plant.battery = BatteryState(charge=float(self.charges[index]))
            plant.collided = bool(self.collided[index])
            plant.battery_failed = bool(self.battery_failed[index])
            plant.distance_flown = float(self.distance_flown[index])
            plant.min_clearance = float(self.min_clearance[index])
            plant.time = float(self.time)
            if plant.collided and np.isfinite(self.collision_positions[index]).all():
                plant.collision_position = Vec3(
                    float(self.collision_positions[index, 0]),
                    float(self.collision_positions[index, 1]),
                    float(self.collision_positions[index, 2]),
                )
            else:
                plant.collision_position = None

    # ------------------------------------------------------------------ #
    # derived observations
    # ------------------------------------------------------------------ #
    @property
    def airborne(self) -> np.ndarray:
        """Row-wise ``DronePlant.airborne``."""
        return self.positions[:, 2] > self.ground_altitude

    @property
    def crashed(self) -> np.ndarray:
        """Row-wise ``DronePlant.crashed``."""
        return self.collided | self.battery_failed

    @property
    def landed(self) -> np.ndarray:
        """Row-wise ``DronePlant.landed`` (grounded and essentially at rest)."""
        return ~self.airborne & (row_norms(self.velocities) < 0.3)

    def status(self) -> PopulationStatus:
        """A copy-out snapshot of every row (for logging and metrics)."""
        return PopulationStatus(
            time=self.time,
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            charges=self.charges.copy(),
            collided=self.collided.copy(),
            battery_failed=self.battery_failed.copy(),
            distance_flown=self.distance_flown.copy(),
            min_clearance=self.min_clearance.copy(),
            waypoint_index=self.waypoint_index.copy(),
        )
