"""Co-simulation of the drone plant with a compiled SOTER system.

This is the reproduction's Gazebo-with-firmware-in-the-loop: the SOTER
program runs under its discrete-event semantics while, between discrete
steps, the plant integrates the currently published control command at a
fine physics step.  Before every discrete step the simulator publishes the
(estimated) drone state and battery status on the program's sensor topics
— those are the ENVIRONMENT-INPUT transitions of the formal semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.monitor import MonitorSuite
from ..core.semantics import SchedulingPolicy, SemanticsEngine
from ..core.system import RTASystem
from ..dynamics import ControlCommand
from ..geometry import Trajectory
from ..runtime.tracing import ExecutionTrace
from .drone import DronePlant
from .environment import NoWind
from .sensors import BatterySensor, StateEstimator


@dataclass
class SimulationConfig:
    """Wiring and fidelity knobs of the co-simulation."""

    physics_dt: float = 0.02
    position_topic: str = "localPosition"
    battery_topic: str = "batteryStatus"
    command_topic: str = "controlCommand"
    monitor_period: float = 0.1
    record_trajectory: bool = True
    record_signals: bool = True

    def __post_init__(self) -> None:
        if self.physics_dt <= 0.0:
            raise ValueError("physics_dt must be positive")
        if self.monitor_period <= 0.0:
            raise ValueError("monitor_period must be positive")


@dataclass
class SimulationResult:
    """Everything one simulated mission produced."""

    engine: SemanticsEngine
    plant: DronePlant
    trace: ExecutionTrace
    monitors: MonitorSuite
    trajectory: Trajectory
    end_time: float
    stop_reason: str

    @property
    def collided(self) -> bool:
        return self.plant.collided

    @property
    def crashed(self) -> bool:
        return self.plant.crashed

    @property
    def safe(self) -> bool:
        return not self.plant.crashed and self.monitors.ok


class DroneSimulation:
    """Couples one :class:`DronePlant` with one compiled :class:`RTASystem`."""

    def __init__(
        self,
        system: RTASystem,
        plant: DronePlant,
        estimator: Optional[StateEstimator] = None,
        battery_sensor: Optional[BatterySensor] = None,
        wind=None,
        scheduler: Optional[SchedulingPolicy] = None,
        monitors: Optional[MonitorSuite] = None,
        config: Optional[SimulationConfig] = None,
    ) -> None:
        self.system = system
        self.plant = plant
        self.estimator = estimator or StateEstimator()
        self.battery_sensor = battery_sensor or BatterySensor()
        self.wind = wind or NoWind()
        self.scheduler = scheduler
        self.monitors = monitors or MonitorSuite()
        self.config = config or SimulationConfig()
        self.trace = ExecutionTrace()
        self.engine = SemanticsEngine(system, scheduler=scheduler, listeners=[self.trace])
        self.trajectory = Trajectory()
        self._last_physics_time = 0.0
        self._next_monitor_time = 0.0
        # Publish the initial sensor values so the very first node firings
        # already see a state estimate.
        self._publish_sensors()

    def reset(self) -> None:
        """Rewind the whole co-simulation to mission start (Resettable).

        Resets the plant, sensors, scheduler, monitors, trace, trajectory
        and semantics engine in place — the compiled system, workspace
        geometry and warm clearance caches are reused, so back-to-back
        missions skip the entire construction cost.
        """
        self.plant.reset()
        for component in (self.estimator, self.battery_sensor, self.scheduler):
            reset = getattr(component, "reset", None)
            if callable(reset):
                reset()
        self.monitors.reset()
        self.trace.reset()
        self.engine.reset()
        self.trajectory.samples.clear()
        self._last_physics_time = 0.0
        self._next_monitor_time = 0.0
        self._publish_sensors()

    # ------------------------------------------------------------------ #
    # the environment hook (plant physics + sensor publication)
    # ------------------------------------------------------------------ #
    def _advance_plant(self, until: float) -> None:
        until = max(until, self._last_physics_time)
        command = self.engine.read_topic(self.config.command_topic)
        if command is not None and not isinstance(command, ControlCommand):
            command = None
        while self._last_physics_time < until - 1e-12:
            dt = min(self.config.physics_dt, until - self._last_physics_time)
            disturbance = self.wind.acceleration(self._last_physics_time)
            self.plant.apply(command, dt, disturbance=disturbance)
            self._last_physics_time += dt
        if self.config.record_trajectory:
            self.trajectory.append(
                time=until, position=self.plant.state.position, velocity=self.plant.state.velocity
            )

    def _publish_sensors(self) -> None:
        estimate = self.estimator.estimate(self.plant.state)
        self.engine.set_input(self.config.position_topic, estimate)
        self.engine.set_input(self.config.battery_topic, self.battery_sensor.measure(self.plant))

    def _environment(self, engine: SemanticsEngine, upcoming: float) -> None:
        self._advance_plant(upcoming)
        self._publish_sensors()
        if self.config.record_signals:
            self.trace.add_sample(upcoming, "clearance", self.plant.clearance)
            self.trace.add_sample(upcoming, "battery", self.plant.battery.charge)
            self.trace.add_sample(upcoming, "speed", self.plant.state.speed)
        while self._next_monitor_time <= upcoming + 1e-12:
            self.monitors.check_all(engine)
            self._next_monitor_time += self.config.monitor_period

    # ------------------------------------------------------------------ #
    # running missions
    # ------------------------------------------------------------------ #
    def run(
        self,
        duration: float,
        stop_when: Optional[Callable[["DroneSimulation"], bool]] = None,
        stop_on_crash: bool = True,
    ) -> SimulationResult:
        """Run the mission for up to ``duration`` seconds of simulated time."""
        stop_reason = "duration elapsed"

        def should_stop(engine: SemanticsEngine) -> bool:
            nonlocal stop_reason
            if stop_on_crash and self.plant.crashed:
                stop_reason = "crash"
                return True
            if stop_when is not None and stop_when(self):
                stop_reason = "stop condition"
                return True
            return False

        self.engine.run_until(duration, environment=self._environment, stop_when=should_stop)
        return SimulationResult(
            engine=self.engine,
            plant=self.plant,
            trace=self.trace,
            monitors=self.monitors,
            trajectory=self.trajectory,
            end_time=self.engine.current_time,
            stop_reason=stop_reason,
        )
