"""Mission-testing-as-a-service: submit scenarios, stream verdicts back.

The swarm layer (:mod:`repro.swarm`) runs one exploration sweep per
``SwarmTester`` call.  This package turns the same control plane + drone
fleet into a *long-running service*: clients POST a mission (scenario
name, overrides, strategy/budget, population size) to
``/api/v1/mission`` and stream back execution records, coverage tables
and confirmed counterexamples incrementally via the cursor-based
``/api/v1/mission/<id>/events?since=<seq>`` endpoint (chunked JSON
lines), with many interleaved missions multiplexed over the existing
session/lease/status machinery.

* :mod:`~repro.service.missions` — :class:`MissionService`, the pure
  state machine: mission lifecycle, per-mission event logs with
  monotonic sequence numbers, control-plane listeners feeding the
  streams, and final reports with ``ParallelTester`` parity (same
  deterministic ordering, same serial replay confirmation);
* :mod:`~repro.service.server` — :class:`MissionServer`, a
  :class:`~repro.swarm.controlplane.ControlPlaneServer` subclass adding
  the mission routes (and optionally hosting a standing drone fleet);
* :mod:`~repro.service.client` — :class:`MissionClient`, the blocking
  HTTP client: submit, poll status, iterate streamed events, fetch the
  final report.

Everything remains pure standard library.  See ``docs/service.md``.
"""

from .client import MissionClient
from .missions import MissionService
from .server import MissionServer

__all__ = ["MissionClient", "MissionServer", "MissionService"]
