"""The mission state machine: submissions, event streams, final reports.

A *mission* is one client-requested exploration sweep running as a
control-plane session on the standing fleet.  The service glues three
concurrent parties together:

* the **client**, who submitted the mission and tails its event log via
  a cursor (each event carries a monotonic ``seq``; re-reading from any
  cursor is idempotent, so a dropped connection resumes cleanly);
* the **control plane**, whose listener hooks
  (:meth:`~repro.swarm.controlplane.ControlPlane.add_listener`) feed
  each *accepted* record into the owning mission's event log the moment
  it is ingested — streaming rides ingestion, so exactly-once falls out
  of the plane's idempotent dedup;
* the **mission runner**, one thread per mission driving an in-process
  :class:`~repro.swarm.tester.SwarmTester` subclass whose transport is
  direct method calls on the plane instead of HTTP.  Reusing the tester
  end-to-end is what makes the final report *byte-equal* to a serial
  :class:`~repro.testing.SystematicTester` run of the same scenario,
  seed and budget: same sharding, same deterministic re-ordering, same
  serial replay confirmation.

Lock ordering is one-way: plane lock -> service lock.  Listener
callbacks (running under the plane lock) may take the service lock to
append events; service code never calls plane methods while holding its
own lock.  Records ingested between ``create_session`` returning and
the mission attaching to its session id are buffered per session and
drained on attach, so the stream never loses its first records to that
race.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..swarm import protocol
from ..swarm.controlplane import ControlPlane
from ..swarm.tester import SwarmReport, SwarmTester


class Mission:
    """One submitted mission: its spec, event log, and final report."""

    def __init__(self, mission_id: str, spec: Dict[str, Any]) -> None:
        self.mission_id = mission_id
        self.spec = spec
        self.session_id: Optional[str] = None
        #: The event log; every event is a JSON-safe dict with a ``seq``
        #: (1-based, dense) and a ``type``.  Append-only.
        self.events: List[Dict[str, Any]] = []
        self.done = False
        self.error: Optional[str] = None
        self.report: Optional[Dict[str, Any]] = None  # wire form, set when done
        self.session_finished = threading.Event()

    @property
    def last_seq(self) -> int:
        return len(self.events)


class MissionService:
    """Runs missions against one :class:`ControlPlane` and streams events.

    ``default_shards`` is how many shards a mission is split into when
    the client does not say (match it to the standing fleet size);
    ``deadline`` bounds one mission's wall-clock time.
    """

    def __init__(
        self,
        plane: ControlPlane,
        *,
        default_shards: int = 2,
        deadline: float = 300.0,
    ) -> None:
        if default_shards < 1:
            raise ValueError("default_shards must be at least 1")
        self.plane = plane
        self.default_shards = default_shards
        self.deadline = deadline
        self._lock = threading.Lock()
        self._events_ready = threading.Condition(self._lock)
        self._missions: Dict[str, Mission] = {}
        self._by_session: Dict[str, Mission] = {}
        #: Records ingested before the owning mission attached (see the
        #: module docstring's race note), keyed by session id.
        self._orphans: Dict[str, List[Tuple[Dict[str, Any], Any]]] = {}
        self._ids = itertools.count(1)
        self._threads: List[threading.Thread] = []
        plane.add_listener(self)

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, spec: Dict[str, Any]) -> str:
        """Validate a mission spec, start its runner thread, return its id.

        Spec fields: ``scenario`` (registry name, required), ``strategy``
        (wire form, see :func:`~repro.swarm.protocol.encode_strategy`,
        required), ``overrides`` (builder kwargs), ``shards``,
        ``population_size``, ``track_coverage``,
        ``stop_at_first_violation``, ``confirm`` (default True).
        """
        if not isinstance(spec, dict):
            raise protocol.ProtocolError("mission spec must be an object")
        scenario = spec.get("scenario")
        if not isinstance(scenario, str):
            raise protocol.ProtocolError("mission spec needs a scenario name")
        strategy_data = spec.get("strategy")
        if not isinstance(strategy_data, dict):
            raise protocol.ProtocolError("mission spec needs a strategy object")
        protocol.decode_strategy(strategy_data)  # fail fast on malformed budgets
        overrides = spec.get("overrides") or {}
        if not isinstance(overrides, dict):
            raise protocol.ProtocolError("mission overrides must be an object")
        try:
            # Eager build failure (unknown scenario, bad override) belongs
            # to the submitter, not to a runner thread's error event.
            protocol.scenario_factory(scenario, **overrides)
        except Exception as error:
            raise protocol.ProtocolError(f"bad mission workload: {error}") from None
        shards = spec.get("shards")
        if shards is not None and int(shards) < 1:
            raise protocol.ProtocolError("shards must be at least 1")
        with self._lock:
            mission_id = f"m{next(self._ids)}"
            mission = Mission(mission_id, dict(spec))
            self._missions[mission_id] = mission
        self._emit(mission, "submitted", scenario=scenario, strategy=strategy_data)
        thread = threading.Thread(
            target=self._run_mission, args=(mission,), daemon=True,
            name=f"mission-{mission_id}",
        )
        self._threads = [t for t in self._threads if t.is_alive()]
        self._threads.append(thread)
        thread.start()
        return mission_id

    def mission(self, mission_id: str) -> Mission:
        with self._lock:
            try:
                return self._missions[mission_id]
            except KeyError:
                raise protocol.ProtocolError(f"unknown mission {mission_id!r}") from None

    def status(self, mission_id: str) -> Dict[str, Any]:
        """A lightweight mission status view (counters, no bodies)."""
        mission = self.mission(mission_id)
        with self._lock:
            return {
                "mission": mission.mission_id,
                "session": mission.session_id,
                "done": mission.done,
                "error": mission.error,
                "last_seq": mission.last_seq,
                "records": sum(
                    1 for event in mission.events if event["type"] == "record"
                ),
            }

    def result(self, mission_id: str) -> Dict[str, Any]:
        """The final report (wire form); an error until the mission is done."""
        mission = self.mission(mission_id)
        with self._lock:
            if not mission.done:
                raise protocol.ProtocolError(
                    f"mission {mission_id} is still running (stream its events)"
                )
            if mission.report is None:
                raise protocol.ProtocolError(
                    f"mission {mission_id} failed: {mission.error}"
                )
            return mission.report

    # ------------------------------------------------------------------ #
    # the event log and its cursors
    # ------------------------------------------------------------------ #
    def events_after(
        self, mission_id: str, since: int, *, timeout: float = 0.0
    ) -> Tuple[List[Dict[str, Any]], bool]:
        """Events with ``seq > since``, and whether the mission is done.

        With a ``timeout`` the call blocks until at least one new event
        arrives (or the mission finishes, or the timeout elapses) — the
        streaming endpoint's building block.  Cursor reads are pure:
        re-reading any range returns identical events.
        """
        mission = self.mission(mission_id)
        deadline = time.monotonic() + timeout
        with self._events_ready:
            while (
                mission.last_seq <= since
                and not mission.done
                and time.monotonic() < deadline
            ):
                self._events_ready.wait(
                    min(0.25, max(0.0, deadline - time.monotonic()))
                )
            return list(mission.events[since:]), mission.done

    def _emit(self, mission: Mission, event_type: str, **payload: Any) -> None:
        with self._events_ready:
            event = {"seq": mission.last_seq + 1, "type": event_type, **payload}
            mission.events.append(event)
            self._events_ready.notify_all()

    # ------------------------------------------------------------------ #
    # control-plane listener hooks (called under the PLANE lock)
    # ------------------------------------------------------------------ #
    def record_accepted(
        self, session_id: str, record: Dict[str, Any], coverage: Any
    ) -> None:
        with self._lock:
            mission = self._by_session.get(session_id)
            if mission is None:
                self._orphans.setdefault(session_id, []).append((record, coverage))
                return
        self._emit_record(mission, record, coverage)

    def session_finished(self, session_id: str) -> None:
        with self._lock:
            mission = self._by_session.get(session_id)
        if mission is not None:
            mission.session_finished.set()

    def _emit_record(
        self, mission: Mission, record: Dict[str, Any], coverage: Any
    ) -> None:
        self._emit(mission, "record", record=dict(record), coverage=coverage)

    def _attach_session(self, mission: Mission, session_id: str) -> None:
        with self._lock:
            mission.session_id = session_id
            self._by_session[session_id] = mission
            orphans = self._orphans.pop(session_id, [])
        for record, coverage in orphans:
            self._emit_record(mission, record, coverage)
        self._emit(mission, "session", session=session_id)

    # ------------------------------------------------------------------ #
    # the runner thread
    # ------------------------------------------------------------------ #
    def _run_mission(self, mission: Mission) -> None:
        spec = mission.spec
        try:
            run = _MissionRun(self, mission)
            report = run.explore(
                stop_at_first_violation=bool(spec.get("stop_at_first_violation")),
                confirm_counterexamples=bool(spec.get("confirm", True)),
            )
            wire = self._encode_report(mission, report)
        except Exception as error:  # the client's problem to read, not ours to die on
            with self._lock:
                mission.error = str(error)
                mission.done = True
            self._emit(mission, "finished", ok=None, error=str(error))
        else:
            with self._lock:
                mission.report = wire
                mission.done = True
            for confirmation in wire["confirmations"]:
                self._emit(mission, "confirmation", **confirmation)
            self._emit(mission, "coverage", coverage=wire["coverage"])
            self._emit(
                mission,
                "finished",
                ok=wire["ok"],
                all_confirmed=wire["all_confirmed"],
                executions=len(wire["records"]),
                duplicates=wire["duplicates"],
                error=None,
            )
        finally:
            with self._events_ready:
                self._events_ready.notify_all()
            if mission.session_id is not None:
                # A long-lived service must not hoard finished sessions.
                self.plane.drop_session(mission.session_id)

    def _encode_report(self, mission: Mission, report: SwarmReport) -> Dict[str, Any]:
        return {
            "mission": mission.mission_id,
            "session": mission.session_id,
            "ok": report.ok,
            "all_confirmed": report.all_confirmed,
            "records": [protocol.encode_record(r) for r in report.executions],
            "coverage": protocol.encode_coverage(report.coverage) or [],
            "confirmations": [
                {
                    "trail": list(c.trail),
                    "confirmed": c.confirmed,
                    "replayed": protocol.encode_record(c.replayed),
                }
                for c in report.confirmations
            ],
            "duplicates": report.duplicates,
            "events": list(report.events),
            "population_stats": dict(report.population_stats),
            "workers": report.workers,
            "wall_time": report.wall_time,
        }


class _MissionRun(SwarmTester):
    """A :class:`SwarmTester` whose transport is the in-process plane.

    Everything else — sharding, report type, deterministic finalise,
    serial replay confirmation — is inherited, which is precisely what
    guarantees mission reports match ``SwarmTester``/``ParallelTester``
    (and therefore serial ``SystematicTester``) output exactly.
    """

    def __init__(self, service: MissionService, mission: Mission) -> None:
        spec = mission.spec
        super().__init__(
            spec["scenario"],
            strategy=protocol.decode_strategy(spec["strategy"]),
            drones=int(spec.get("shards") or service.default_shards),
            scenario_overrides=spec.get("overrides") or None,
            track_coverage=bool(spec.get("track_coverage", False)),
            population_size=spec.get("population_size"),
            deadline=service.deadline,
            control_plane_url="in-process",  # never dialled; _execute overrides
        )
        self.service = service
        self.mission = mission

    def _execute(self, shards: Sequence[Any], report: Any) -> None:
        plane = self.service.plane
        mission = self.mission
        encoded = [protocol.encode_shard(shard) for shard in shards]
        session_id = plane.create_session(
            encoded,
            stop_at_first_violation=bool(shards[0].stop_at_first_violation),
            label=f"mission {mission.mission_id}",
        )
        self.last_session, self.last_url = session_id, "in-process"
        self.service._attach_session(mission, session_id)
        deadline = time.monotonic() + self.deadline
        while not mission.session_finished.wait(timeout=0.25):
            plane.sweep()  # keep the healing ladder ticking on a quiet fleet
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"mission {mission.mission_id} (session {session_id}) missed "
                    f"its {self.deadline:.0f}s deadline"
                )
        summary = plane.session_report(session_id)
        self._ingest_report(summary, report)
        if summary["failed"] is not None:
            raise RuntimeError(
                f"mission failed in a drone:\n{summary['failed']}"
            )
