"""The mission client: submit, stream, and collect final reports.

Pure standard library, like the rest of the stack.  The streaming
iterator reads the chunked JSON-lines response incrementally (one
``readline`` per event), so records arrive as the fleet produces them;
a dropped stream resumes from the last seen ``seq`` without replaying
or losing events.

>>> from repro.service import MissionServer
>>> from repro.testing import RandomStrategy
>>> with MissionServer(fleet=2) as server:
...     client = MissionClient(server.url)
...     mission_id = client.submit(
...         "toy-closed-loop", strategy=RandomStrategy(seed=0, max_executions=4),
...         overrides={"broken_ttf": True})
...     events = list(client.events(mission_id))
...     report = client.result(mission_id)
>>> events[-1]["type"], report["ok"], report["all_confirmed"]
('finished', False, True)
>>> len(report["records"])
4
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

from ..swarm import protocol
from ..swarm.drone import get_json, post_json
from ..testing.parallel import ReplayConfirmation


class MissionClient:
    """A blocking HTTP client for one :class:`~repro.service.MissionServer`."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def submit(
        self,
        scenario: str,
        *,
        strategy: Any,
        overrides: Optional[dict] = None,
        shards: Optional[int] = None,
        population_size: Optional[int] = None,
        track_coverage: bool = False,
        stop_at_first_violation: bool = False,
        confirm: bool = True,
    ) -> str:
        """Submit a mission; returns its id immediately (work is async)."""
        spec: Dict[str, Any] = {
            "scenario": scenario,
            "strategy": protocol.encode_strategy(strategy)
            if not isinstance(strategy, dict)
            else strategy,
            "track_coverage": track_coverage,
            "stop_at_first_violation": stop_at_first_violation,
            "confirm": confirm,
        }
        if overrides:
            spec["overrides"] = overrides
        if shards is not None:
            spec["shards"] = shards
        if population_size is not None:
            spec["population_size"] = population_size
        created = post_json(
            self.base_url, "/api/v1/mission", spec, timeout=self.timeout
        )
        return created["mission"]

    def status(self, mission_id: str) -> Dict[str, Any]:
        return get_json(
            self.base_url, f"/api/v1/mission/{mission_id}", timeout=self.timeout
        )

    def result(self, mission_id: str) -> Dict[str, Any]:
        """The final report (wire form); raises while still running."""
        return get_json(
            self.base_url, f"/api/v1/mission/{mission_id}/result", timeout=self.timeout
        )

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    def events(self, mission_id: str, since: int = 0) -> Iterator[Dict[str, Any]]:
        """Iterate the mission's events from cursor ``since`` to the end.

        Each yielded event is a dict with monotonically increasing
        ``seq``; the final event has ``type == "finished"``.  The HTTP
        response is chunked JSON lines, decoded incrementally — events
        arrive as the fleet produces them, not when the mission ends.
        """
        url = f"{self.base_url}/api/v1/mission/{mission_id}/events?since={int(since)}"
        request = urllib.request.Request(url, method="GET")
        try:
            response = urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                detail = protocol.loads(body).get(
                    "error", body.decode("utf-8", "replace")
                )
            except protocol.ProtocolError:
                detail = body.decode("utf-8", "replace")
            raise protocol.ProtocolError(
                f"event stream rejected: {detail}"
            ) from None
        with response:
            if response.status != 200:
                raise protocol.ProtocolError(
                    f"event stream rejected: HTTP {response.status}"
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)

    def run(
        self, scenario: str, *, strategy: Any, **options: Any
    ) -> Dict[str, Any]:
        """Submit, drain the stream, and return the final report."""
        mission_id = self.submit(scenario, strategy=strategy, **options)
        finished: Optional[Dict[str, Any]] = None
        for event in self.events(mission_id):
            if event["type"] == "finished":
                finished = event
        if finished is None or finished.get("error"):
            detail = finished.get("error") if finished else "stream ended early"
            raise RuntimeError(f"mission {mission_id} failed: {detail}")
        return self.result(mission_id)


# --------------------------------------------------------------------- #
# decoding helpers (wire report -> testing-layer objects)
# --------------------------------------------------------------------- #


def decode_report_records(report: Dict[str, Any]) -> List[Any]:
    """The final report's records as :class:`ExecutionRecord` objects."""
    return [protocol.decode_record(data) for data in report["records"]]


def decode_report_coverage(report: Dict[str, Any]) -> Any:
    """The final report's cumulative coverage as a :class:`CoverageMap`."""
    return protocol.decode_coverage(report.get("coverage") or None)


def decode_report_confirmations(report: Dict[str, Any]) -> List[ReplayConfirmation]:
    """The final report's replay confirmations as testing-layer objects."""
    return [
        ReplayConfirmation(
            trail=list(item["trail"]),
            replayed=protocol.decode_record(item["replayed"]),
            confirmed=bool(item["confirmed"]),
        )
        for item in report["confirmations"]
    ]
