"""The mission service's HTTP surface: a control plane with mission routes.

:class:`MissionServer` extends
:class:`~repro.swarm.controlplane.ControlPlaneServer` — the drone-facing
API (``/api/v1/lease``, ``/api/v1/result``, …) keeps working unchanged
on the same port, so one server is both the fleet's control plane and
the clients' mission front door:

* ``POST /api/v1/mission`` — submit a mission spec; replies
  ``{"mission": <id>}``;
* ``GET /api/v1/mission/<id>`` — lightweight status (done, error,
  last event seq, records so far);
* ``GET /api/v1/mission/<id>/events?since=<seq>`` — the stream: chunked
  JSON lines, one event per line, starting after cursor ``seq`` and
  ending when the mission finishes (reconnect with the last seen seq to
  resume);
* ``GET /api/v1/mission/<id>/result`` — the final report, once done.

``fleet=N`` optionally hosts a standing fleet of N in-process drone
threads (``exit_when_idle=False``) so one ``MissionServer`` is a
complete single-host deployment; leave it 0 when external drones point
at this plane.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from typing import Any, Dict, List, Optional

from ..swarm import protocol
from ..swarm.controlplane import ControlPlaneServer, _Handler
from ..swarm.drone import Drone
from .missions import MissionService

#: How long one streaming read waits for fresh events before emitting a
#: keepalive-sized empty batch check (the stream only ends on "finished").
_STREAM_POLL = 0.25


class _MissionHandler(_Handler):
    """The control-plane routes plus the mission API."""

    # Set by MissionServer on the handler class.
    service: MissionService = None  # type: ignore[assignment]

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        if self.path != "/api/v1/mission":
            super().do_POST()
            return
        try:
            mission_id = self.service.submit(self._payload())
            self._reply({"mission": mission_id})
        except protocol.ProtocolError as error:
            self._error(str(error))
        except (KeyError, TypeError) as error:
            self._error(f"malformed request: {error!r}")

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        parsed = urllib.parse.urlsplit(self.path)
        if not parsed.path.startswith("/api/v1/mission/"):
            super().do_GET()
            return
        try:
            rest = parsed.path[len("/api/v1/mission/") :]
            if rest.endswith("/events"):
                mission_id = rest[: -len("/events")]
                query = urllib.parse.parse_qs(parsed.query)
                since = int(query.get("since", ["0"])[0])
                self._stream_events(mission_id, since)
            elif rest.endswith("/result"):
                self._reply(self.service.result(rest[: -len("/result")]))
            elif "/" not in rest and rest:
                self._reply(self.service.status(rest))
            else:
                self._error(f"unknown endpoint {self.path!r}", status=404)
        except protocol.ProtocolError as error:
            self._error(str(error))
        except (KeyError, TypeError, ValueError) as error:
            self._error(f"malformed request: {error!r}")

    def _stream_events(self, mission_id: str, since: int) -> None:
        service = self.service
        service.mission(mission_id)  # 400 on unknown ids *before* headers go out
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        cursor = since
        while True:
            batch, done = service.events_after(
                mission_id, cursor, timeout=_STREAM_POLL
            )
            for event in batch:
                self._write_chunk(json.dumps(event, sort_keys=True) + "\n")
                cursor = event["seq"]
            if done and not batch:
                break
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    def _write_chunk(self, line: str) -> None:
        data = line.encode("utf-8")
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii") + data + b"\r\n")
        self.wfile.flush()


class MissionServer(ControlPlaneServer):
    """One HTTP server hosting the control plane *and* the mission API."""

    handler_base = _MissionHandler

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        fleet: int = 0,
        default_shards: Optional[int] = None,
        deadline: float = 300.0,
        **plane_options: Any,
    ) -> None:
        if fleet < 0:
            raise ValueError("fleet must be non-negative")
        super().__init__(host=host, port=port, **plane_options)
        self.fleet_size = fleet
        if default_shards is None:
            default_shards = fleet if fleet else 2
        self.service = MissionService(
            self.plane, default_shards=default_shards, deadline=deadline
        )
        # The handler type was built before the service existed; bind now.
        self._server.RequestHandlerClass.service = self.service
        self._fleet: List[Drone] = []
        self._fleet_threads: List[threading.Thread] = []

    def _handler_attributes(self) -> Dict[str, Any]:
        return {**super()._handler_attributes(), "service": None}

    def start(self) -> "MissionServer":
        super().start()
        for index in range(self.fleet_size):
            drone = Drone(
                self.url,
                drone_id=f"service-drone-{index}",
                worker_index=index,
                exit_when_idle=False,
                heartbeat_interval=0.25,
                poll_interval=0.05,
            )
            thread = threading.Thread(target=drone.run, daemon=True)
            thread.start()
            self._fleet.append(drone)
            self._fleet_threads.append(thread)
        return self

    def stop(self) -> None:
        for drone in self._fleet:
            drone.stop()
        for thread in self._fleet_threads:
            thread.join(timeout=10.0)
        self._fleet.clear()
        self._fleet_threads.clear()
        super().stop()
