"""2-D occupancy grids over a workspace.

The SOTER paper uses the Level-Set Toolbox to compute backward reachable
sets over the workspace (Section V-A, Figure 12b).  Our substitute
(:mod:`repro.reachability.levelset`) works on a discretised occupancy grid
of the workspace, which this module provides.  The grid is 2-D (x, y): the
city's obstacles are buildings that extend from the ground, so at flight
altitude the (x, y) projection is what matters, exactly like the 2-D
obstacle map in Figure 2 (right) of the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from .vec import Vec3
from .workspace import Workspace

Cell = Tuple[int, int]


@dataclass
class OccupancyGrid:
    """A uniform 2-D grid marking which cells are occupied by obstacles."""

    origin_x: float
    origin_y: float
    resolution: float
    occupied: np.ndarray  # bool array of shape (nx, ny)

    def __post_init__(self) -> None:
        if self.resolution <= 0.0:
            raise ValueError("grid resolution must be positive")
        if self.occupied.ndim != 2:
            raise ValueError("occupancy array must be 2-D")
        self.occupied = self.occupied.astype(bool)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_workspace(
        workspace: Workspace,
        resolution: float = 0.5,
        inflate: float = 0.0,
        altitude: float = 2.0,
    ) -> "OccupancyGrid":
        """Rasterise a workspace at a given flight ``altitude``.

        ``inflate`` grows every obstacle before rasterisation, which is how
        the planners account for the drone's physical extent.  The
        rasterisation is one batched ``in_obstacle`` query over all cell
        centers; it marks exactly the cells the per-cell scalar loop would
        (see :meth:`_from_workspace_scalar`, kept as the test reference).
        """
        if resolution <= 0.0:
            raise ValueError("grid resolution must be positive")
        lo, hi = workspace.bounds.lo, workspace.bounds.hi
        nx = max(1, int(math.ceil((hi.x - lo.x) / resolution)))
        ny = max(1, int(math.ceil((hi.y - lo.y) / resolution)))
        xs = lo.x + (np.arange(nx) + 0.5) * resolution
        ys = lo.y + (np.arange(ny) + 0.5) * resolution
        grid_x, grid_y = np.meshgrid(xs, ys, indexing="ij")
        centers = np.column_stack(
            [grid_x.ravel(), grid_y.ravel(), np.full(nx * ny, float(altitude))]
        )
        occupied = workspace.in_obstacle_batch(centers, margin=inflate).reshape(nx, ny)
        return OccupancyGrid(origin_x=lo.x, origin_y=lo.y, resolution=resolution, occupied=occupied)

    @staticmethod
    def _from_workspace_scalar(
        workspace: Workspace,
        resolution: float = 0.5,
        inflate: float = 0.0,
        altitude: float = 2.0,
    ) -> "OccupancyGrid":
        """The original per-cell rasterisation loop (reference implementation).

        Kept so the equivalence tests can assert the batched build marks the
        same cells bit-for-bit; benchmarks use it to report the speedup.
        """
        if resolution <= 0.0:
            raise ValueError("grid resolution must be positive")
        lo, hi = workspace.bounds.lo, workspace.bounds.hi
        nx = max(1, int(math.ceil((hi.x - lo.x) / resolution)))
        ny = max(1, int(math.ceil((hi.y - lo.y) / resolution)))
        occupied = np.zeros((nx, ny), dtype=bool)
        for i in range(nx):
            for j in range(ny):
                x = lo.x + (i + 0.5) * resolution
                y = lo.y + (j + 0.5) * resolution
                point = Vec3(x, y, altitude)
                if workspace.in_obstacle(point, margin=inflate):
                    occupied[i, j] = True
        return OccupancyGrid(origin_x=lo.x, origin_y=lo.y, resolution=resolution, occupied=occupied)

    # ------------------------------------------------------------------ #
    # shape and indexing
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        return tuple(self.occupied.shape)  # type: ignore[return-value]

    def world_to_cell(self, point: Vec3) -> Cell:
        """Map a world position to a grid cell (may be out of range)."""
        i = int(math.floor((point.x - self.origin_x) / self.resolution))
        j = int(math.floor((point.y - self.origin_y) / self.resolution))
        return (i, j)

    def cell_to_world(self, cell: Cell, altitude: float = 0.0) -> Vec3:
        """Map a cell to the world coordinates of its center."""
        i, j = cell
        x = self.origin_x + (i + 0.5) * self.resolution
        y = self.origin_y + (j + 0.5) * self.resolution
        return Vec3(x, y, altitude)

    def in_grid(self, cell: Cell) -> bool:
        """True if the cell index lies within the grid."""
        i, j = cell
        nx, ny = self.shape
        return 0 <= i < nx and 0 <= j < ny

    def is_occupied_cell(self, cell: Cell) -> bool:
        """True if the cell is occupied; out-of-grid cells count as occupied."""
        if not self.in_grid(cell):
            return True
        return bool(self.occupied[cell])

    def is_occupied(self, point: Vec3) -> bool:
        """True if the world position falls in an occupied (or out-of-grid) cell."""
        return self.is_occupied_cell(self.world_to_cell(point))

    def free_cells(self) -> Iterator[Cell]:
        """Iterate over all free cells."""
        nx, ny = self.shape
        for i in range(nx):
            for j in range(ny):
                if not self.occupied[i, j]:
                    yield (i, j)

    def neighbors(self, cell: Cell, diagonal: bool = True) -> List[Cell]:
        """In-grid neighbours of a cell (4- or 8-connected)."""
        i, j = cell
        steps = [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if diagonal:
            steps += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
        result = []
        for di, dj in steps:
            candidate = (i + di, j + dj)
            if self.in_grid(candidate):
                result.append(candidate)
        return result

    # ------------------------------------------------------------------ #
    # distance transform
    # ------------------------------------------------------------------ #
    def distance_to_occupied(self) -> np.ndarray:
        """Metric distance from every cell to the nearest occupied cell.

        Octile-metric (8-connected, straight step = resolution, diagonal
        step = √2·resolution) distance transform — the discrete stand-in
        for the signed distance function a level-set toolbox would provide.

        Computed with a vectorised two-pass chamfer sweep: for a 3×3
        neighbourhood the forward (left/up-left/up/up-right) and backward
        (right/down-right/down/down-left) raster passes yield exactly the
        multi-source shortest-path distance the brushfire Dijkstra computes
        (Borgefors' sequential transform), up to floating-point rounding of
        equal path sums.  The Dijkstra version is kept as
        :meth:`_distance_to_occupied_dijkstra` for the equivalence tests.
        """
        dist = np.where(self.occupied, 0.0, np.inf)
        if not self.occupied.any():
            return dist
        straight = self.resolution
        diag = math.sqrt(2.0) * self.resolution
        self._chamfer_pass(dist, straight, diag, forward=True)
        self._chamfer_pass(dist, straight, diag, forward=False)
        return dist

    @staticmethod
    def _chamfer_pass(dist: np.ndarray, straight: float, diag: float, forward: bool) -> None:
        """One raster pass of the chamfer transform, vectorised along rows.

        The within-row relaxation ``d[j] = min(d[j], d[j-1] + straight)``
        is a running minimum of ``d[k] + (j-k)·straight``; subtracting the
        linear ramp ``j·straight`` turns it into a plain prefix minimum,
        which ``np.minimum.accumulate`` computes without a Python loop.
        """
        nx, ny = dist.shape
        ramp = np.arange(ny) * straight
        rows = range(nx) if forward else range(nx - 1, -1, -1)
        previous_index = -1 if forward else 1
        for i in rows:
            row = dist[i]
            pi = i + previous_index
            if 0 <= pi < nx:
                prev = dist[pi]
                np.minimum(row, prev + straight, out=row)
                np.minimum(row[1:], prev[:-1] + diag, out=row[1:])
                np.minimum(row[:-1], prev[1:] + diag, out=row[:-1])
            if forward:
                shifted = row - ramp
                np.minimum.accumulate(shifted, out=shifted)
                np.minimum(row, shifted + ramp, out=row)
            else:
                shifted = (row + ramp)[::-1]
                np.minimum.accumulate(shifted, out=shifted)
                np.minimum(row, shifted[::-1] - ramp, out=row)

    def _distance_to_occupied_dijkstra(self) -> np.ndarray:
        """Reference brushfire (multi-source Dijkstra) distance transform.

        The original scalar implementation, kept for the batch/scalar
        equivalence tests and the benchmark comparison.
        """
        nx, ny = self.shape
        inf = float("inf")
        dist = np.full((nx, ny), inf, dtype=float)
        import heapq

        heap: List[Tuple[float, int, int]] = []
        for i in range(nx):
            for j in range(ny):
                if self.occupied[i, j]:
                    dist[i, j] = 0.0
                    heapq.heappush(heap, (0.0, i, j))
        if not heap:
            return dist
        diag = math.sqrt(2.0) * self.resolution
        straight = self.resolution
        while heap:
            d, i, j = heapq.heappop(heap)
            if d > dist[i, j]:
                continue
            for di, dj in ((-1, 0), (1, 0), (0, -1), (0, 1), (-1, -1), (-1, 1), (1, -1), (1, 1)):
                ni, nj = i + di, j + dj
                if not (0 <= ni < nx and 0 <= nj < ny):
                    continue
                step = diag if di != 0 and dj != 0 else straight
                nd = d + step
                if nd < dist[ni, nj]:
                    dist[ni, nj] = nd
                    heapq.heappush(heap, (nd, ni, nj))
        return dist

    def inflated(self, radius: float) -> "OccupancyGrid":
        """Return a copy where every cell within ``radius`` of an obstacle is occupied."""
        if radius < 0.0:
            raise ValueError("inflation radius must be non-negative")
        dist = self.distance_to_occupied()
        occupied = dist <= radius + 1e-9
        return OccupancyGrid(
            origin_x=self.origin_x,
            origin_y=self.origin_y,
            resolution=self.resolution,
            occupied=occupied,
        )

    def occupancy_fraction(self) -> float:
        """Fraction of cells that are occupied."""
        nx, ny = self.shape
        return float(self.occupied.sum()) / float(nx * ny)
