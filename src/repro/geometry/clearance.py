"""Memoised clearance oracle: the cached half of the safety-query plane.

Every layer of the reproduction keeps asking the same question about the
same static workspace — "is the clearance at this position above/below a
threshold?" (the ``φ_obs`` monitors, the decision modules' ``ttf_2Δ``
checkers, the safe tracker's urgency law).  Profiling shows these scalar
clearance queries dominate systematic-testing throughput.

:class:`ClearanceField` memoises *conservative lower bounds* on clearance
per quantised grid cell: clearance is 1-Lipschitz, so

    ``clearance(p) >= clearance(cell_center) - cell_half_diagonal``

for every point ``p`` inside the cell.  Threshold queries consult the
cached bound first and fall back to the exact workspace computation only
when the bound is not decisive — which makes every answer *bit-for-bit
identical* to the uncached scalar query while skipping the obstacle loop
for the (overwhelmingly common) far-from-obstacle case.

Cells are filled lazily, so the field warms up with the traffic it
actually sees; sharing one workspace instance across executions (see
:func:`repro.apps.scenarios._shared_world`) keeps the cache warm for a
whole worker process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from .shapes import points_as_array
from .vec import Vec3

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .workspace import Workspace

Cell = Tuple[int, int, int]


@dataclass
class ClearanceFieldStats:
    """Counters describing how effective the cache has been."""

    queries: int = 0
    decisive: int = 0  # answered from the cached bound alone
    exact_fallbacks: int = 0  # needed the exact workspace computation
    exact_memo_hits: int = 0  # exact value served from the point memo
    dense_hits: int = 0  # cell bounds served from the precomputed dense grid

    @property
    def hit_rate(self) -> float:
        """Fraction of threshold queries answered without the obstacle loop."""
        if self.queries == 0:
            return 0.0
        return self.decisive / self.queries


class ClearanceField:
    """Grid-cell-quantised conservative clearance cache over one workspace.

    The field never *replaces* the exact clearance — it only pre-answers
    threshold queries whose outcome the cached lower bound already decides.
    ``lower_bound(p) <= workspace.clearance(p)`` always holds (tested as a
    property), and :meth:`exceeds` returns exactly what the corresponding
    scalar comparison would.
    """

    def __init__(self, workspace: "Workspace", resolution: float = 0.5) -> None:
        if resolution <= 0.0:
            raise ValueError("clearance-field resolution must be positive")
        self.workspace = workspace
        self.resolution = resolution
        # Half the diagonal of a cubic cell: the worst-case distance from
        # any point in a cell to the cell center (3-D).
        self.cell_radius = 0.5 * resolution * math.sqrt(3.0)
        self.stats = ClearanceFieldStats()
        self._bounds: Dict[Cell, float] = {}
        # Exact clearance per *exact* query point.  Systematic testing
        # re-asks the same handful of points (finite abstraction menus,
        # periodic estimates) thousands of times per sweep; memoising the
        # exact value turns every repeat into a dict hit while staying
        # trivially bit-identical.  Bounded so continuous workloads (noisy
        # simulation estimates) cannot grow it without limit.
        self._exact: Dict[Tuple[float, float, float], float] = {}
        self._exact_limit = 65536
        self._obstacle_count = len(workspace.obstacles)
        # The optional dense plane: a whole-workspace grid of cell bounds
        # (see :meth:`densify`).  ``None`` until densified; dropped on any
        # workspace mutation, exactly like the lazy memo.
        self._dense: Optional[np.ndarray] = None
        self._dense_origin: Cell = (0, 0, 0)

    def __len__(self) -> int:
        return len(self._bounds)

    def _check_freshness(self) -> None:
        """Drop every cached bound if the workspace grew a new obstacle.

        Callers that captured this field before ``add_obstacle`` would
        otherwise keep reading bounds that no longer under-approximate the
        true clearance — a silently unsafe answer.  A one-int comparison
        per query keeps the memo sound against the supported mutation API
        (``Workspace.add_obstacle``; the obstacle list must not be edited
        in place).
        """
        count = len(self.workspace.obstacles)
        if count != self._obstacle_count:
            self._bounds.clear()
            self._exact.clear()
            self._dense = None
            self._obstacle_count = count

    def _exact_clearance(self, point: Vec3) -> float:
        """The exact clearance, served from the point memo when possible."""
        key = (point.x, point.y, point.z)
        value = self._exact.get(key)
        if value is None:
            value = self.workspace.clearance(point)
            self.stats.exact_fallbacks += 1
            if len(self._exact) < self._exact_limit:
                self._exact[key] = value
        else:
            self.stats.exact_memo_hits += 1
        return value

    # ------------------------------------------------------------------ #
    # bounds
    # ------------------------------------------------------------------ #
    def _cell_of(self, point: Vec3) -> Cell:
        res = self.resolution
        return (
            int(math.floor(point.x / res)),
            int(math.floor(point.y / res)),
            int(math.floor(point.z / res)),
        )

    def densify(self, padding: float = 0.0, max_cells: int = 4_000_000) -> int:
        """Precompute the cell bounds for the whole workspace in one sweep.

        Builds a dense ``(nx, ny, nz)`` grid covering the workspace bounds
        (expanded by ``padding`` metres), filled through the batched exact
        clearance — each cell holds exactly the value the lazy path would
        compute (``clearance(cell_center) - cell_radius``, and
        ``clearance_batch`` is bit-identical to ``clearance``), so every
        conservative decision stays bit-for-bit what the lazy memo gives.
        After densification the hot threshold queries become a pure array
        lookup instead of a dict probe with a cold-miss obstacle loop;
        queries outside the grid fall back to the lazy path unchanged.

        The exact-clearance transform is used rather than the chamfer
        distance of :class:`~repro.geometry.occupancy.OccupancyGrid`: the
        chamfer approximation would break the bit-identity contract the
        threshold queries advertise.

        Returns the number of grid cells.  Dropped automatically (like the
        lazy memo) when the workspace grows an obstacle.
        """
        if padding < 0.0:
            raise ValueError("padding must be non-negative")
        self._check_freshness()
        res = self.resolution
        bounds = self.workspace.bounds
        lo = (
            int(math.floor((bounds.lo.x - padding) / res)),
            int(math.floor((bounds.lo.y - padding) / res)),
            int(math.floor((bounds.lo.z - padding) / res)),
        )
        hi = (
            int(math.floor((bounds.hi.x + padding) / res)),
            int(math.floor((bounds.hi.y + padding) / res)),
            int(math.floor((bounds.hi.z + padding) / res)),
        )
        shape = tuple(h - l + 1 for l, h in zip(lo, hi))
        total = shape[0] * shape[1] * shape[2]
        if total > max_cells:
            raise ValueError(
                f"dense clearance grid would need {total} cells (> {max_cells}); "
                "raise max_cells or coarsen the resolution"
            )
        centers = np.stack(
            np.meshgrid(
                (np.arange(lo[0], hi[0] + 1) + 0.5) * res,
                (np.arange(lo[1], hi[1] + 1) + 0.5) * res,
                (np.arange(lo[2], hi[2] + 1) + 0.5) * res,
                indexing="ij",
            ),
            axis=-1,
        ).reshape(-1, 3)
        values = np.empty(total, dtype=float)
        # Chunked so the (cells x obstacles) intermediates stay bounded.
        chunk = 131072
        for start in range(0, total, chunk):
            stop = min(start + chunk, total)
            values[start:stop] = (
                self.workspace.clearance_batch(centers[start:stop]) - self.cell_radius
            )
        self._dense = values.reshape(shape)
        self._dense_origin = lo
        return total

    @property
    def dense_cells(self) -> int:
        """Number of cells in the dense grid (0 until :meth:`densify`)."""
        return 0 if self._dense is None else int(self._dense.size)

    def _dense_lookup(self, cell: Cell) -> Optional[float]:
        """The dense grid's bound for ``cell``, or ``None`` when off-grid."""
        dense = self._dense
        if dense is None:
            return None
        i = cell[0] - self._dense_origin[0]
        j = cell[1] - self._dense_origin[1]
        k = cell[2] - self._dense_origin[2]
        shape = dense.shape
        if 0 <= i < shape[0] and 0 <= j < shape[1] and 0 <= k < shape[2]:
            self.stats.dense_hits += 1
            return float(dense[i, j, k])
        return None

    def lower_bound(self, point: Vec3) -> float:
        """A conservative lower bound on ``workspace.clearance(point)``.

        Never larger than the true clearance (may be much smaller near
        obstacles or for coarse resolutions).  Served from the dense grid
        when one was precomputed (:meth:`densify`); memoised per cell
        otherwise (and for off-grid cells).
        """
        self._check_freshness()
        cell = self._cell_of(point)
        bound = self._dense_lookup(cell)
        if bound is not None:
            return bound
        bound = self._bounds.get(cell)
        if bound is None:
            res = self.resolution
            center = Vec3((cell[0] + 0.5) * res, (cell[1] + 0.5) * res, (cell[2] + 0.5) * res)
            bound = self.workspace.clearance(center) - self.cell_radius
            self._bounds[cell] = bound
        return bound

    def clearance(self, point: Vec3) -> float:
        """The exact clearance (memoised per point; counted as a fallback)."""
        self._check_freshness()
        return self._exact_clearance(point)

    # ------------------------------------------------------------------ #
    # threshold queries (bit-identical to the uncached comparisons)
    # ------------------------------------------------------------------ #
    def exceeds(self, point: Vec3, threshold: float, strict: bool = True) -> bool:
        """Exactly ``workspace.clearance(point) > threshold`` (``>=`` if not strict).

        Fast path: when the cached cell bound already exceeds the
        threshold, the true clearance must as well (the bound is a lower
        bound), so no exact computation is needed.
        """
        self.stats.queries += 1
        bound = self.lower_bound(point)
        if (bound > threshold) if strict else (bound >= threshold):
            self.stats.decisive += 1
            return True
        exact = self._exact_clearance(point)
        return (exact > threshold) if strict else (exact >= threshold)

    def at_most(self, point: Vec3, threshold: float) -> bool:
        """Exactly ``workspace.clearance(point) <= threshold``."""
        return not self.exceeds(point, threshold, strict=True)

    def decides_above(self, point: Vec3, threshold: float, margin: float = 0.0) -> bool:
        """True only when the cached bound alone proves ``clearance - margin > threshold``.

        A sound one-sided gate: a ``True`` answer is definitive (the exact
        margin-shifted clearance comparison must agree, by monotonicity of
        floating-point subtraction), while ``False`` merely means the
        caller has to fall back to the exact computation.
        """
        self.stats.queries += 1
        if self.lower_bound(point) - margin > threshold:
            self.stats.decisive += 1
            return True
        return False

    def below(self, point: Vec3, threshold: float) -> bool:
        """Exactly ``workspace.clearance(point) < threshold``."""
        return not self.exceeds(point, threshold, strict=False)

    # ------------------------------------------------------------------ #
    # batched access
    # ------------------------------------------------------------------ #
    def lower_bound_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`lower_bound` (fills missing cells in one batch query).

        With a dense grid (:meth:`densify`) in place the in-grid rows are a
        single fancy-indexed lookup; only off-grid rows take the lazy
        fill-the-dict path.
        """
        self._check_freshness()
        pts = points_as_array(points)
        res = self.resolution
        cells = np.floor(pts / res).astype(int)
        dense = self._dense
        if dense is not None:
            origin = np.array(self._dense_origin, dtype=int)
            indices = cells - origin
            shape = np.array(dense.shape, dtype=int)
            on_grid = np.all((indices >= 0) & (indices < shape), axis=1)
            if on_grid.all():
                self.stats.dense_hits += int(on_grid.sum())
                return dense[indices[:, 0], indices[:, 1], indices[:, 2]].astype(float)
            out = np.empty(cells.shape[0], dtype=float)
            picked = indices[on_grid]
            out[on_grid] = dense[picked[:, 0], picked[:, 1], picked[:, 2]]
            self.stats.dense_hits += int(on_grid.sum())
            off = np.flatnonzero(~on_grid)
            out[off] = self._lazy_bounds([tuple(cells[row]) for row in off])
            return out
        return self._lazy_bounds([tuple(cell) for cell in cells])

    def _lazy_bounds(self, keys) -> np.ndarray:
        """Bounds for ``keys`` from the lazy dict, batch-filling cold cells."""
        res = self.resolution
        missing = sorted({key for key in keys if key not in self._bounds})
        if missing:
            centers = (np.array(missing, dtype=float) + 0.5) * res
            bounds = self.workspace.clearance_batch(centers) - self.cell_radius
            for key, bound in zip(missing, bounds):
                self._bounds[key] = float(bound)
        return np.array([self._bounds[key] for key in keys], dtype=float)

    def prewarm(self, points: np.ndarray) -> None:
        """Fill the cells covering ``points`` ahead of time (one batched query)."""
        self.lower_bound_batch(points)
