"""3-D vector primitives used throughout the SOTER reproduction.

The drone case study works in a small 3-D workspace, so a tiny immutable
vector type is sufficient and keeps the rest of the code free of raw
``numpy`` arrays for positions/velocities (arrays are still used in the
numeric kernels where they pay off).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Vec3:
    """An immutable 3-D vector with the usual arithmetic operations."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    # Immutable value: copying returns the object itself, which keeps the
    # snapshot/deepcopy paths of the testing engine from churning through
    # millions of pointless three-field reconstructions.
    def __copy__(self) -> "Vec3":
        return self

    def __deepcopy__(self, memo: dict) -> "Vec3":
        return self

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zero() -> "Vec3":
        """Return the zero vector."""
        return Vec3(0.0, 0.0, 0.0)

    @staticmethod
    def from_iterable(values: Iterable[float]) -> "Vec3":
        """Build a vector from any iterable of three numbers."""
        items = list(values)
        if len(items) != 3:
            raise ValueError(f"expected 3 components, got {len(items)}")
        return Vec3(float(items[0]), float(items[1]), float(items[2]))

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __mul__(self, scalar: float) -> "Vec3":
        return Vec3(self.x * scalar, self.y * scalar, self.z * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Vec3":
        if scalar == 0.0:
            raise ZeroDivisionError("division of Vec3 by zero")
        return Vec3(self.x / scalar, self.y / scalar, self.z / scalar)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y
        yield self.z

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    def dot(self, other: "Vec3") -> float:
        """Dot product with ``other``."""
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        """Cross product with ``other``."""
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def norm(self) -> float:
        """Euclidean length."""
        return math.sqrt(self.dot(self))

    def norm_sq(self) -> float:
        """Squared Euclidean length (avoids the sqrt)."""
        return self.dot(self)

    def distance_to(self, other: "Vec3") -> float:
        """Euclidean distance to ``other``."""
        return (self - other).norm()

    def horizontal_distance_to(self, other: "Vec3") -> float:
        """Distance ignoring the z (altitude) component."""
        dx = self.x - other.x
        dy = self.y - other.y
        return math.hypot(dx, dy)

    def unit(self) -> "Vec3":
        """Unit vector in the same direction; zero vector maps to zero."""
        n = self.norm()
        if n == 0.0:
            return Vec3.zero()
        return self / n

    def clamp_norm(self, max_norm: float) -> "Vec3":
        """Scale the vector down so its norm does not exceed ``max_norm``."""
        if max_norm < 0.0:
            raise ValueError("max_norm must be non-negative")
        n = self.norm()
        if n <= max_norm or n == 0.0:
            return self
        return self * (max_norm / n)

    def with_z(self, z: float) -> "Vec3":
        """Copy of this vector with the z component replaced."""
        return Vec3(self.x, self.y, float(z))

    def lerp(self, other: "Vec3", alpha: float) -> "Vec3":
        """Linear interpolation: ``self`` at alpha=0, ``other`` at alpha=1."""
        return self + (other - self) * alpha

    def is_finite(self) -> bool:
        """True if all components are finite numbers."""
        return all(math.isfinite(c) for c in self)

    def almost_equal(self, other: "Vec3", tol: float = 1e-9) -> bool:
        """Component-wise comparison within ``tol``."""
        return (
            abs(self.x - other.x) <= tol
            and abs(self.y - other.y) <= tol
            and abs(self.z - other.z) <= tol
        )

    def as_tuple(self) -> Tuple[float, float, float]:
        """Return ``(x, y, z)``."""
        return (self.x, self.y, self.z)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Vec3({self.x:.3f}, {self.y:.3f}, {self.z:.3f})"


# --------------------------------------------------------------------- #
# structure-of-arrays row helpers (bit-identical to the Vec3 methods)
# --------------------------------------------------------------------- #
# The batched kernels (vectorised dynamics steps, batched controller laws)
# operate on (N, 3) float64 arrays.  Each helper evaluates exactly the
# floating-point expressions of the corresponding Vec3 method, in the same
# order, so a row-wise result equals the scalar result bit for bit.


def row_norms(rows: np.ndarray) -> np.ndarray:
    """Euclidean length of every row: ``sqrt((x*x + y*y) + z*z)`` like :meth:`Vec3.norm`."""
    x, y, z = rows[:, 0], rows[:, 1], rows[:, 2]
    return np.sqrt(x * x + y * y + z * z)


def row_dots(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise dot products, with :meth:`Vec3.dot`'s summation order."""
    return a[:, 0] * b[:, 0] + a[:, 1] * b[:, 1] + a[:, 2] * b[:, 2]


def unit_rows(rows: np.ndarray) -> np.ndarray:
    """Row-wise :meth:`Vec3.unit`: zero rows map to zero, others to ``row / norm``."""
    norms = row_norms(rows)
    zero = norms == 0.0
    safe = np.where(zero, 1.0, norms)
    return np.where(zero[:, None], 0.0, rows / safe[:, None])


def clamp_norm_rows(rows: np.ndarray, max_norm: float) -> np.ndarray:
    """Row-wise :meth:`Vec3.clamp_norm`: scale rows whose norm exceeds ``max_norm``."""
    if max_norm < 0.0:
        raise ValueError("max_norm must be non-negative")
    norms = row_norms(rows)
    # The scalar method returns the vector unchanged when n <= max or n == 0;
    # n > max_norm >= 0 already implies n != 0.
    needs_scaling = norms > max_norm
    scale = np.divide(
        max_norm, norms, out=np.ones_like(norms), where=needs_scaling
    )
    return np.where(needs_scaling[:, None], rows * scale[:, None], rows)


def pairwise_index_pairs(count: int) -> List[Tuple[int, int]]:
    """The ``(i, j)`` index pairs with ``i < j``, in lexicographic order.

    This is the canonical condensed-matrix ordering shared by the scalar
    pairwise-separation oracle and its batched counterpart: entry ``k`` of
    either result refers to ``pairwise_index_pairs(n)[k]``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [(i, j) for i in range(count) for j in range(i + 1, count)]


def pairwise_separations(points: np.ndarray) -> np.ndarray:
    """Condensed pairwise distances over the second-to-last (vehicle) axis.

    ``points`` is ``(..., N, 3)``; the result is ``(..., N*(N-1)/2)`` in
    :func:`pairwise_index_pairs` order.  One call answers a whole window of
    N² separation queries — ``(S, N, 3)`` in, ``(S, P)`` out — and each
    entry evaluates exactly :meth:`Vec3.distance_to`'s expression
    (``sqrt((dx*dx + dy*dy) + dz*dz)``), so batched separations are
    bit-for-bit identical to the scalar pair loop.
    """
    pts = np.asarray(points, dtype=float)
    if pts.ndim < 2 or pts.shape[-1] != 3:
        raise ValueError(f"expected a (..., N, 3) point array, got shape {pts.shape}")
    count = pts.shape[-2]
    pairs = pairwise_index_pairs(count)
    if not pairs:
        return np.zeros(pts.shape[:-2] + (0,))
    first = np.array([i for i, _ in pairs])
    second = np.array([j for _, j in pairs])
    delta = pts[..., first, :] - pts[..., second, :]
    x, y, z = delta[..., 0], delta[..., 1], delta[..., 2]
    return np.sqrt(x * x + y * y + z * z)


def min_pairwise_separation(positions: Sequence[Vec3]) -> Tuple[float, Tuple[int, int]]:
    """The smallest pairwise distance and its ``(i, j)`` pair (scalar oracle).

    Scans pairs in :func:`pairwise_index_pairs` order with a strict ``<``
    comparison, so ties resolve to the first minimal pair — exactly what
    ``np.argmin`` over :func:`pairwise_separations` returns.
    """
    if len(positions) < 2:
        raise ValueError("pairwise separation needs at least two positions")
    best = math.inf
    best_pair = (0, 1)
    for i, j in pairwise_index_pairs(len(positions)):
        distance = positions[i].distance_to(positions[j])
        if distance < best:
            best = distance
            best_pair = (i, j)
    return best, best_pair


def distance_point_to_segment(point: Vec3, seg_a: Vec3, seg_b: Vec3) -> float:
    """Distance from ``point`` to the segment ``[seg_a, seg_b]``."""
    closest = closest_point_on_segment(point, seg_a, seg_b)
    return point.distance_to(closest)


def closest_point_on_segment(point: Vec3, seg_a: Vec3, seg_b: Vec3) -> Vec3:
    """Closest point on the segment ``[seg_a, seg_b]`` to ``point``."""
    direction = seg_b - seg_a
    length_sq = direction.norm_sq()
    if length_sq == 0.0:
        return seg_a
    t = (point - seg_a).dot(direction) / length_sq
    t = max(0.0, min(1.0, t))
    return seg_a + direction * t


def distance_point_to_polyline(point: Vec3, waypoints: Iterable[Vec3]) -> float:
    """Distance from ``point`` to the polyline through ``waypoints``."""
    pts = list(waypoints)
    if not pts:
        raise ValueError("polyline must have at least one waypoint")
    if len(pts) == 1:
        return point.distance_to(pts[0])
    best = math.inf
    for a, b in zip(pts[:-1], pts[1:]):
        best = min(best, distance_point_to_segment(point, a, b))
    return best
