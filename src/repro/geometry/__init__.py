"""Geometric primitives: vectors, boxes, workspaces, occupancy grids, trajectories."""

from .vec import (
    Vec3,
    clamp_norm_rows,
    closest_point_on_segment,
    distance_point_to_polyline,
    distance_point_to_segment,
    min_pairwise_separation,
    pairwise_index_pairs,
    pairwise_separations,
    row_dots,
    row_norms,
    unit_rows,
)
from .shapes import (
    AABB,
    Sphere,
    any_box_contains_batch,
    first_box_containing,
    min_distance_to_boxes,
    min_distance_to_boxes_batch,
    points_as_array,
)
from .clearance import ClearanceField, ClearanceFieldStats
from .workspace import (
    Workspace,
    corridor_workspace,
    empty_workspace,
    grid_city_workspace,
    min_clearance_along,
)
from .occupancy import OccupancyGrid
from .trajectory import (
    ReferenceTrajectory,
    Trajectory,
    TrajectorySample,
    Tube,
    figure_eight,
    mission_waypoint_square,
)

__all__ = [
    "Vec3",
    "clamp_norm_rows",
    "closest_point_on_segment",
    "distance_point_to_polyline",
    "distance_point_to_segment",
    "min_pairwise_separation",
    "pairwise_index_pairs",
    "pairwise_separations",
    "row_dots",
    "row_norms",
    "unit_rows",
    "AABB",
    "Sphere",
    "any_box_contains_batch",
    "first_box_containing",
    "min_distance_to_boxes",
    "min_distance_to_boxes_batch",
    "points_as_array",
    "ClearanceField",
    "ClearanceFieldStats",
    "Workspace",
    "corridor_workspace",
    "empty_workspace",
    "grid_city_workspace",
    "min_clearance_along",
    "OccupancyGrid",
    "ReferenceTrajectory",
    "Trajectory",
    "TrajectorySample",
    "Tube",
    "figure_eight",
    "mission_waypoint_square",
]
