"""Trajectories, reference trajectories, and safety tubes.

The motion planner emits a *motion plan* (sequence of waypoints); the
reference trajectory is the piecewise-straight path through them, and the
motion-primitive RTA module reasons about how far the actual drone
trajectory strays from it (the tubes of Figure 6 and Figure 12a in the
paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .vec import Vec3, closest_point_on_segment, distance_point_to_polyline
from .workspace import Workspace


@dataclass(frozen=True)
class TrajectorySample:
    """A single timestamped sample of the drone's state along a trajectory."""

    time: float
    position: Vec3
    velocity: Vec3 = Vec3()


@dataclass
class Trajectory:
    """A recorded trajectory: a time-ordered list of samples."""

    samples: List[TrajectorySample] = field(default_factory=list)

    def append(self, time: float, position: Vec3, velocity: Vec3 = Vec3()) -> None:
        """Append a sample; times must be non-decreasing."""
        if self.samples and time < self.samples[-1].time:
            raise ValueError("trajectory samples must be appended in time order")
        self.samples.append(TrajectorySample(time=time, position=position, velocity=velocity))

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def duration(self) -> float:
        """Elapsed time between first and last sample."""
        if len(self.samples) < 2:
            return 0.0
        return self.samples[-1].time - self.samples[0].time

    def path_length(self) -> float:
        """Total distance travelled."""
        total = 0.0
        for a, b in zip(self.samples[:-1], self.samples[1:]):
            total += a.position.distance_to(b.position)
        return total

    def positions(self) -> List[Vec3]:
        """The list of sampled positions."""
        return [sample.position for sample in self.samples]

    def position_at(self, time: float) -> Vec3:
        """Linearly interpolated position at ``time`` (clamped to the range)."""
        if not self.samples:
            raise ValueError("cannot interpolate an empty trajectory")
        if time <= self.samples[0].time:
            return self.samples[0].position
        if time >= self.samples[-1].time:
            return self.samples[-1].position
        for a, b in zip(self.samples[:-1], self.samples[1:]):
            if a.time <= time <= b.time:
                span = b.time - a.time
                alpha = 0.0 if span == 0.0 else (time - a.time) / span
                return a.position.lerp(b.position, alpha)
        return self.samples[-1].position

    def min_clearance(self, workspace: Workspace) -> float:
        """Smallest clearance to obstacles/boundary along the trajectory."""
        best = math.inf
        for sample in self.samples:
            best = min(best, workspace.clearance(sample.position))
        return best

    def max_deviation_from(self, reference: "ReferenceTrajectory") -> float:
        """Largest distance of any sample from the reference polyline."""
        best = 0.0
        for sample in self.samples:
            best = max(best, reference.distance_to(sample.position))
        return best


@dataclass(frozen=True)
class ReferenceTrajectory:
    """A piecewise-straight reference path through an ordered set of waypoints."""

    waypoints: Tuple[Vec3, ...]

    def __post_init__(self) -> None:
        if len(self.waypoints) < 1:
            raise ValueError("a reference trajectory needs at least one waypoint")

    @staticmethod
    def from_waypoints(waypoints: Sequence[Vec3]) -> "ReferenceTrajectory":
        return ReferenceTrajectory(tuple(waypoints))

    def length(self) -> float:
        """Total polyline length."""
        total = 0.0
        for a, b in zip(self.waypoints[:-1], self.waypoints[1:]):
            total += a.distance_to(b)
        return total

    def distance_to(self, point: Vec3) -> float:
        """Distance from ``point`` to the reference polyline."""
        return distance_point_to_polyline(point, self.waypoints)

    def closest_point(self, point: Vec3) -> Vec3:
        """Closest point on the polyline to ``point``."""
        if len(self.waypoints) == 1:
            return self.waypoints[0]
        best_point = self.waypoints[0]
        best_dist = math.inf
        for a, b in zip(self.waypoints[:-1], self.waypoints[1:]):
            candidate = closest_point_on_segment(point, a, b)
            dist = candidate.distance_to(point)
            if dist < best_dist:
                best_dist = dist
                best_point = candidate
        return best_point

    def arc_length_of_closest_point(self, point: Vec3) -> float:
        """Arc length along the polyline of the point closest to ``point``."""
        if len(self.waypoints) == 1:
            return 0.0
        best_len = 0.0
        best_dist = math.inf
        travelled = 0.0
        for a, b in zip(self.waypoints[:-1], self.waypoints[1:]):
            candidate = closest_point_on_segment(point, a, b)
            dist = candidate.distance_to(point)
            if dist < best_dist:
                best_dist = dist
                best_len = travelled + a.distance_to(candidate)
            travelled += a.distance_to(b)
        return best_len

    def point_at_arc_length(self, arc_length: float) -> Vec3:
        """Point at a given arc length along the polyline (clamped to the ends)."""
        total = self.length()
        if total == 0.0:
            return self.waypoints[0]
        return self.point_at_fraction(arc_length / total)

    def advance_from(self, point: Vec3, lookahead: float) -> Vec3:
        """Carrot point: project ``point`` onto the polyline, advance ``lookahead`` metres.

        Used by the certified safe tracker to follow the collision-free
        reference trajectory instead of chasing a possibly occluded
        waypoint.
        """
        if lookahead < 0.0:
            raise ValueError("lookahead must be non-negative")
        start = self.arc_length_of_closest_point(point)
        return self.point_at_arc_length(start + lookahead)

    def point_at_fraction(self, fraction: float) -> Vec3:
        """Point at a given arc-length fraction in [0, 1] along the polyline."""
        fraction = max(0.0, min(1.0, fraction))
        total = self.length()
        if total == 0.0 or len(self.waypoints) == 1:
            return self.waypoints[0]
        target = fraction * total
        travelled = 0.0
        for a, b in zip(self.waypoints[:-1], self.waypoints[1:]):
            seg = a.distance_to(b)
            if travelled + seg >= target:
                alpha = 0.0 if seg == 0.0 else (target - travelled) / seg
                return a.lerp(b, alpha)
            travelled += seg
        return self.waypoints[-1]

    def is_collision_free(self, workspace: Workspace, margin: float = 0.0) -> bool:
        """True if every segment avoids every obstacle by ``margin``."""
        if len(self.waypoints) == 1:
            return workspace.is_free(self.waypoints[0], margin=margin)
        return all(
            workspace.segment_is_free(a, b, margin=margin)
            for a, b in zip(self.waypoints[:-1], self.waypoints[1:])
        )


@dataclass(frozen=True)
class Tube:
    """A tube around a reference trajectory (the φ_safe / φ_safer tubes of Figure 6)."""

    reference: ReferenceTrajectory
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ValueError("tube radius must be non-negative")

    def contains(self, point: Vec3) -> bool:
        """True if ``point`` lies within ``radius`` of the reference polyline."""
        return self.reference.distance_to(point) <= self.radius

    def shrink(self, amount: float) -> "Tube":
        """A concentric tube with a smaller radius (the φ_safer tube)."""
        if amount < 0.0 or amount > self.radius:
            raise ValueError("shrink amount must be between 0 and the tube radius")
        return Tube(reference=self.reference, radius=self.radius - amount)

    def clearance(self, point: Vec3) -> float:
        """Distance from the tube boundary; positive inside, negative outside."""
        return self.radius - self.reference.distance_to(point)


def mission_waypoint_square(
    center: Vec3, side: float, altitude: float
) -> Tuple[Vec3, Vec3, Vec3, Vec3]:
    """The four corners g1..g4 of the square mission used in Figure 5 / 12a."""
    half = side / 2.0
    return (
        Vec3(center.x - half, center.y - half, altitude),
        Vec3(center.x + half, center.y - half, altitude),
        Vec3(center.x + half, center.y + half, altitude),
        Vec3(center.x - half, center.y + half, altitude),
    )


def figure_eight(center: Vec3, radius: float, altitude: float, points: int = 16) -> List[Vec3]:
    """Waypoints approximating the figure-eight loop of Figure 5 (left)."""
    if points < 4:
        raise ValueError("a figure eight needs at least 4 points")
    waypoints: List[Vec3] = []
    for k in range(points):
        theta = 2.0 * math.pi * k / points
        x = center.x + radius * math.sin(theta)
        y = center.y + radius * math.sin(theta) * math.cos(theta)
        waypoints.append(Vec3(x, y, altitude))
    waypoints.append(waypoints[0])
    return waypoints
