"""Geometric shapes (axis-aligned boxes and spheres) for obstacle maps.

The SOTER drone case study (Section II-A of the paper) assumes static,
known obstacles; buildings are modelled as axis-aligned boxes, which is
also what the obstacle map in Figure 2 (right) shows.

Batching contract
-----------------
Every scalar point query has a ``*_batch`` counterpart operating on an
``(N, 3)`` float array of points and returning an ``(N,)`` array.  The
batched versions evaluate *the same floating-point expressions in the
same order* as their scalar counterparts, so their answers are bit-for-bit
identical — callers may mix scalar and batched queries freely without
changing any safety decision.  :func:`points_as_array` converts an
iterable of :class:`Vec3` (or anything array-like) into the batch layout.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from .vec import Vec3


def points_as_array(points: Sequence[Vec3] | np.ndarray) -> np.ndarray:
    """Convert points into the ``(N, 3)`` float64 batch layout.

    Accepts a sequence of :class:`Vec3` (or 3-tuples) or an already-shaped
    numpy array; always returns a 2-D ``(N, 3)`` float64 array.
    """
    if isinstance(points, np.ndarray):
        array = np.asarray(points, dtype=float)
    else:
        array = np.array([(p.x, p.y, p.z) if isinstance(p, Vec3) else tuple(p) for p in points], dtype=float)
    if array.ndim == 1:
        array = array.reshape(1, 3) if array.size == 3 else array.reshape(-1, 3)
    if array.ndim != 2 or array.shape[1] != 3:
        raise ValueError(f"expected an (N, 3) point array, got shape {array.shape}")
    return array


@dataclass(frozen=True)
class AABB:
    """Axis-aligned bounding box defined by two corner points."""

    lo: Vec3
    hi: Vec3

    def __post_init__(self) -> None:
        if self.lo.x > self.hi.x or self.lo.y > self.hi.y or self.lo.z > self.hi.z:
            raise ValueError(f"AABB lower corner must not exceed upper corner: {self.lo} vs {self.hi}")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def from_center_size(center: Vec3, size: Vec3) -> "AABB":
        """Build a box from its center point and full edge lengths."""
        half = size * 0.5
        return AABB(center - half, center + half)

    @staticmethod
    def from_footprint(x: float, y: float, width: float, depth: float, height: float) -> "AABB":
        """Build a building-like box from a ground footprint and a height."""
        lo = Vec3(x, y, 0.0)
        hi = Vec3(x + width, y + depth, height)
        return AABB(lo, hi)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def center(self) -> Vec3:
        return (self.lo + self.hi) * 0.5

    @property
    def size(self) -> Vec3:
        return self.hi - self.lo

    @property
    def volume(self) -> float:
        s = self.size
        return s.x * s.y * s.z

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def contains(self, point: Vec3, margin: float = 0.0) -> bool:
        """True if ``point`` lies inside the box inflated by ``margin``."""
        return (
            self.lo.x - margin <= point.x <= self.hi.x + margin
            and self.lo.y - margin <= point.y <= self.hi.y + margin
            and self.lo.z - margin <= point.z <= self.hi.z + margin
        )

    def contains_batch(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Vectorised :meth:`contains` over an ``(N, 3)`` point array."""
        pts = points_as_array(points)
        lo = (self.lo.x - margin, self.lo.y - margin, self.lo.z - margin)
        hi = (self.hi.x + margin, self.hi.y + margin, self.hi.z + margin)
        inside = np.ones(pts.shape[0], dtype=bool)
        for axis in range(3):
            inside &= (pts[:, axis] >= lo[axis]) & (pts[:, axis] <= hi[axis])
        return inside

    def inflate(self, margin: float) -> "AABB":
        """Return a copy grown by ``margin`` on every face (may shrink if negative)."""
        grow = Vec3(margin, margin, margin)
        lo = self.lo - grow
        hi = self.hi + grow
        if lo.x > hi.x or lo.y > hi.y or lo.z > hi.z:
            raise ValueError("inflate with a negative margin collapsed the box")
        return AABB(lo, hi)

    def intersects(self, other: "AABB") -> bool:
        """True if this box and ``other`` overlap (closed intervals)."""
        return (
            self.lo.x <= other.hi.x
            and self.hi.x >= other.lo.x
            and self.lo.y <= other.hi.y
            and self.hi.y >= other.lo.y
            and self.lo.z <= other.hi.z
            and self.hi.z >= other.lo.z
        )

    def closest_point(self, point: Vec3) -> Vec3:
        """Closest point of the box to ``point``."""
        return Vec3(
            min(max(point.x, self.lo.x), self.hi.x),
            min(max(point.y, self.lo.y), self.hi.y),
            min(max(point.z, self.lo.z), self.hi.z),
        )

    def distance_to_point(self, point: Vec3) -> float:
        """Euclidean distance from ``point`` to the box (zero if inside)."""
        return point.distance_to(self.closest_point(point))

    def distance_to_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`distance_to_point` over an ``(N, 3)`` point array.

        Mirrors the scalar evaluation (clamp each axis, then
        ``sqrt((dx*dx + dy*dy) + dz*dz)``) so results are bit-identical.
        """
        pts = points_as_array(points)
        dx = pts[:, 0] - np.minimum(np.maximum(pts[:, 0], self.lo.x), self.hi.x)
        dy = pts[:, 1] - np.minimum(np.maximum(pts[:, 1], self.lo.y), self.hi.y)
        dz = pts[:, 2] - np.minimum(np.maximum(pts[:, 2], self.lo.z), self.hi.z)
        return np.sqrt(dx * dx + dy * dy + dz * dz)

    def clamp(self, point: Vec3) -> Vec3:
        """Clamp ``point`` inside the box."""
        return self.closest_point(point)

    def segment_intersects(self, seg_a: Vec3, seg_b: Vec3, margin: float = 0.0) -> bool:
        """True if the segment ``[seg_a, seg_b]`` passes through the inflated box.

        Uses the slab method, which is exact for axis-aligned boxes.
        """
        box = self.inflate(margin) if margin != 0.0 else self
        direction = seg_b - seg_a
        t_min, t_max = 0.0, 1.0
        for axis in range(3):
            origin = seg_a.as_tuple()[axis]
            delta = direction.as_tuple()[axis]
            lo = box.lo.as_tuple()[axis]
            hi = box.hi.as_tuple()[axis]
            if abs(delta) < 1e-12:
                if origin < lo or origin > hi:
                    return False
                continue
            t1 = (lo - origin) / delta
            t2 = (hi - origin) / delta
            if t1 > t2:
                t1, t2 = t2, t1
            t_min = max(t_min, t1)
            t_max = min(t_max, t2)
            if t_min > t_max:
                return False
        return True

    def random_point(self, rng: random.Random) -> Vec3:
        """Uniformly sample a point inside the box."""
        return Vec3(
            rng.uniform(self.lo.x, self.hi.x),
            rng.uniform(self.lo.y, self.hi.y),
            rng.uniform(self.lo.z, self.hi.z),
        )

    def corners(self) -> Tuple[Vec3, ...]:
        """The eight corner points."""
        xs = (self.lo.x, self.hi.x)
        ys = (self.lo.y, self.hi.y)
        zs = (self.lo.z, self.hi.z)
        return tuple(Vec3(x, y, z) for x in xs for y in ys for z in zs)

    def union(self, other: "AABB") -> "AABB":
        """Smallest box containing both boxes."""
        return AABB(
            Vec3(min(self.lo.x, other.lo.x), min(self.lo.y, other.lo.y), min(self.lo.z, other.lo.z)),
            Vec3(max(self.hi.x, other.hi.x), max(self.hi.y, other.hi.y), max(self.hi.z, other.hi.z)),
        )


@dataclass(frozen=True)
class Sphere:
    """A sphere, used for spherical keep-out zones and goal regions."""

    center: Vec3
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ValueError("sphere radius must be non-negative")

    def contains(self, point: Vec3, margin: float = 0.0) -> bool:
        """True if ``point`` is within ``radius + margin`` of the center."""
        return self.center.distance_to(point) <= self.radius + margin

    def contains_batch(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Vectorised :meth:`contains` over an ``(N, 3)`` point array."""
        return self._center_distances(points) <= self.radius + margin

    def distance_to_point(self, point: Vec3) -> float:
        """Distance from ``point`` to the sphere surface (zero if inside)."""
        return max(0.0, self.center.distance_to(point) - self.radius)

    def distance_to_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`distance_to_point` over an ``(N, 3)`` point array."""
        return np.maximum(0.0, self._center_distances(points) - self.radius)

    def _center_distances(self, points: np.ndarray) -> np.ndarray:
        pts = points_as_array(points)
        dx = self.center.x - pts[:, 0]
        dy = self.center.y - pts[:, 1]
        dz = self.center.z - pts[:, 2]
        return np.sqrt(dx * dx + dy * dy + dz * dz)

    def bounding_box(self) -> AABB:
        """Axis-aligned bounding box of the sphere."""
        r = Vec3(self.radius, self.radius, self.radius)
        return AABB(self.center - r, self.center + r)


def min_distance_to_boxes(point: Vec3, boxes: Iterable[AABB]) -> float:
    """Distance from ``point`` to the nearest box in ``boxes`` (inf if empty)."""
    best = math.inf
    for box in boxes:
        best = min(best, box.distance_to_point(point))
    return best


def min_distance_to_boxes_batch(points: np.ndarray, boxes: Iterable[AABB]) -> np.ndarray:
    """Vectorised :func:`min_distance_to_boxes` over an ``(N, 3)`` point array."""
    pts = points_as_array(points)
    best = np.full(pts.shape[0], math.inf)
    for box in boxes:
        np.minimum(best, box.distance_to_points(pts), out=best)
    return best


def any_box_contains_batch(points: np.ndarray, boxes: Iterable[AABB], margin: float = 0.0) -> np.ndarray:
    """Vectorised "point is inside some box" over an ``(N, 3)`` point array."""
    pts = points_as_array(points)
    inside = np.zeros(pts.shape[0], dtype=bool)
    for box in boxes:
        inside |= box.contains_batch(pts, margin=margin)
    return inside


def first_box_containing(point: Vec3, boxes: Iterable[AABB], margin: float = 0.0) -> Optional[AABB]:
    """Return the first box containing ``point`` (inflated by ``margin``), if any."""
    for box in boxes:
        if box.contains(point, margin=margin):
            return box
    return None
