"""Workspaces: bounded regions with static obstacles.

A :class:`Workspace` is the geometric model of the environment the drone
operates in (the "city" of Figure 2 in the SOTER paper).  It provides the
collision queries every other layer relies on: the safety predicate
``φ_obs`` of the motion-primitive RTA module, plan validation for the
motion-planner RTA module, and the backward-reachable-set computation used
to derive ``ttf_2Δ`` and ``φ_safer``.

Batching contract
-----------------
Every scalar query has a ``*_batch`` counterpart over ``(N, 3)`` point
arrays that evaluates the same floating-point expressions in the same
order, so scalar and batched answers are bit-for-bit identical (see
:mod:`repro.geometry.shapes`).  :meth:`Workspace.clearance_field` hands
out a lazily built, per-instance :class:`~repro.geometry.clearance.ClearanceField`
memo — the cached scalar fast path of the safety-query plane.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .shapes import (
    AABB,
    any_box_contains_batch,
    min_distance_to_boxes,
    min_distance_to_boxes_batch,
    points_as_array,
)
from .vec import Vec3

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .clearance import ClearanceField


@dataclass
class Workspace:
    """A bounded 3-D region containing static axis-aligned obstacles.

    The obstacle set must only be mutated through :meth:`add_obstacle`
    (which invalidates the query-plane caches); replacing entries of
    ``obstacles`` in place is unsupported and would desynchronise the
    cached obstacle arrays and clearance bounds.
    """

    bounds: AABB
    obstacles: List[AABB] = field(default_factory=list)
    name: str = "workspace"

    def __post_init__(self) -> None:
        for obstacle in self.obstacles:
            self._check_obstacle(obstacle)
        # Per-instance caches of the safety-query plane.  Both are keyed on
        # the obstacle count so direct ``add_obstacle`` calls invalidate
        # them; they must never be shared between workspaces.
        self._obstacle_array_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
        self._clearance_field_cache: Optional[Tuple[int, float, "ClearanceField"]] = None

    def _check_obstacle(self, obstacle: AABB) -> None:
        if not self.bounds.intersects(obstacle):
            raise ValueError(f"obstacle {obstacle} lies entirely outside the workspace bounds")

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def add_obstacle(self, obstacle: AABB) -> None:
        """Add a static obstacle, validating that it overlaps the bounds."""
        self._check_obstacle(obstacle)
        self.obstacles.append(obstacle)

    def obstacle_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked ``(M, 3)`` lower/upper corner arrays of all obstacles (cached)."""
        cache = self._obstacle_array_cache
        if cache is None or cache[0] != len(self.obstacles):
            if self.obstacles:
                lo = np.array([o.lo.as_tuple() for o in self.obstacles], dtype=float)
                hi = np.array([o.hi.as_tuple() for o in self.obstacles], dtype=float)
            else:
                lo = np.zeros((0, 3))
                hi = np.zeros((0, 3))
            cache = (len(self.obstacles), lo, hi)
            self._obstacle_array_cache = cache
        return cache[1], cache[2]

    def clearance_field(self, resolution: float = 0.5) -> "ClearanceField":
        """The lazily built, cached :class:`ClearanceField` of this workspace.

        The field memoises conservative per-cell clearance lower bounds; it
        is (re)built whenever the obstacle set or requested resolution
        changes, and is shared by every caller holding the same workspace
        instance — which is what lets worker processes reuse one warm cache
        across many explored executions.
        """
        from .clearance import ClearanceField

        cache = self._clearance_field_cache
        if cache is None or cache[0] != len(self.obstacles) or cache[1] != resolution:
            field_obj = ClearanceField(self, resolution=resolution)
            cache = (len(self.obstacles), resolution, field_obj)
            self._clearance_field_cache = cache
        return cache[2]

    def with_margin(self, margin: float) -> "Workspace":
        """Copy of the workspace with every obstacle inflated by ``margin``."""
        inflated = [obstacle.inflate(margin) for obstacle in self.obstacles]
        return Workspace(bounds=self.bounds, obstacles=inflated, name=f"{self.name}+{margin:.2f}m")

    # ------------------------------------------------------------------ #
    # collision queries
    # ------------------------------------------------------------------ #
    def in_bounds(self, point: Vec3, margin: float = 0.0) -> bool:
        """True if ``point`` lies inside the workspace bounds shrunk by ``margin``."""
        return (
            self.bounds.lo.x + margin <= point.x <= self.bounds.hi.x - margin
            and self.bounds.lo.y + margin <= point.y <= self.bounds.hi.y - margin
            and self.bounds.lo.z + margin <= point.z <= self.bounds.hi.z - margin
        )

    def in_obstacle(self, point: Vec3, margin: float = 0.0) -> bool:
        """True if ``point`` is inside (or within ``margin`` of) any obstacle."""
        return any(obstacle.contains(point, margin=margin) for obstacle in self.obstacles)

    def is_free(self, point: Vec3, margin: float = 0.0) -> bool:
        """True if ``point`` is inside bounds and not within ``margin`` of an obstacle."""
        return self.in_bounds(point) and not self.in_obstacle(point, margin=margin)

    def segment_is_free(self, seg_a: Vec3, seg_b: Vec3, margin: float = 0.0) -> bool:
        """True if the straight segment between the endpoints avoids all obstacles."""
        if not (self.in_bounds(seg_a) and self.in_bounds(seg_b)):
            return False
        return not any(
            obstacle.segment_intersects(seg_a, seg_b, margin=margin) for obstacle in self.obstacles
        )

    def distance_to_nearest_obstacle(self, point: Vec3) -> float:
        """Distance to the nearest obstacle surface (inf if there are none)."""
        return min_distance_to_boxes(point, self.obstacles)

    def distance_to_boundary(self, point: Vec3, include_floor: bool = False) -> float:
        """Distance from ``point`` to the workspace boundary (negative if outside).

        By default the lower z face (the ground plane) is excluded: the
        drone is supposed to fly close to — and land on — the ground, so
        only the lateral walls and the ceiling count as hazards.
        """
        dx = min(point.x - self.bounds.lo.x, self.bounds.hi.x - point.x)
        dy = min(point.y - self.bounds.lo.y, self.bounds.hi.y - point.y)
        dz = self.bounds.hi.z - point.z
        if include_floor:
            dz = min(dz, point.z - self.bounds.lo.z)
        return min(dx, dy, dz)

    def clearance(self, point: Vec3) -> float:
        """Minimum of obstacle distance and (floor-less) boundary distance.

        This is the quantity the motion-primitive safety predicate and the
        level-set substitute reason about: the drone is in ``φ_safe`` as
        long as its clearance is positive.
        """
        return min(self.distance_to_nearest_obstacle(point), self.distance_to_boundary(point))

    # ------------------------------------------------------------------ #
    # batched collision queries (bit-identical to the scalar versions)
    # ------------------------------------------------------------------ #
    def in_bounds_batch(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Vectorised :meth:`in_bounds` over an ``(N, 3)`` point array."""
        pts = points_as_array(points)
        lo, hi = self.bounds.lo, self.bounds.hi
        return (
            (pts[:, 0] >= lo.x + margin)
            & (pts[:, 0] <= hi.x - margin)
            & (pts[:, 1] >= lo.y + margin)
            & (pts[:, 1] <= hi.y - margin)
            & (pts[:, 2] >= lo.z + margin)
            & (pts[:, 2] <= hi.z - margin)
        )

    def in_obstacle_batch(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Vectorised :meth:`in_obstacle` over an ``(N, 3)`` point array."""
        return any_box_contains_batch(points, self.obstacles, margin=margin)

    def is_free_batch(self, points: np.ndarray, margin: float = 0.0) -> np.ndarray:
        """Vectorised :meth:`is_free` over an ``(N, 3)`` point array."""
        return self.in_bounds_batch(points) & ~self.in_obstacle_batch(points, margin=margin)

    def distance_to_nearest_obstacle_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`distance_to_nearest_obstacle` (inf with no obstacles).

        One fused ``(M, N)`` clamp-and-norm over the cached obstacle-corner
        arrays instead of a per-box Python loop; the per-element operations
        (axis clamps, ``(dx*dx + dy*dy) + dz*dz`` norm, running minimum)
        are exactly the scalar ones, so answers stay bit-identical.
        """
        pts = points_as_array(points)
        if not self.obstacles:
            return np.full(pts.shape[0], np.inf)
        lo, hi = self.obstacle_arrays()  # (M, 3)
        closest = np.minimum(np.maximum(pts[None, :, :], lo[:, None, :]), hi[:, None, :])
        delta = pts[None, :, :] - closest  # (M, N, 3)
        dx, dy, dz = delta[:, :, 0], delta[:, :, 1], delta[:, :, 2]
        return np.sqrt(dx * dx + dy * dy + dz * dz).min(axis=0)

    def distance_to_boundary_batch(self, points: np.ndarray, include_floor: bool = False) -> np.ndarray:
        """Vectorised :meth:`distance_to_boundary` over an ``(N, 3)`` point array."""
        pts = points_as_array(points)
        lo, hi = self.bounds.lo, self.bounds.hi
        dx = np.minimum(pts[:, 0] - lo.x, hi.x - pts[:, 0])
        dy = np.minimum(pts[:, 1] - lo.y, hi.y - pts[:, 1])
        dz = hi.z - pts[:, 2]
        if include_floor:
            dz = np.minimum(dz, pts[:, 2] - lo.z)
        return np.minimum(np.minimum(dx, dy), dz)

    def clearance_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`clearance`: one call answers N safety queries.

        This is the workhorse of the batched safety-query plane — monitors,
        decision modules and the backward-reachable-set build all reduce to
        it.  Bit-for-bit identical to mapping :meth:`clearance` over the
        points.
        """
        pts = points_as_array(points)
        return np.minimum(
            self.distance_to_nearest_obstacle_batch(pts), self.distance_to_boundary_batch(pts)
        )

    def segments_free_batch(
        self, starts: np.ndarray, ends: np.ndarray, margin: float = 0.0
    ) -> np.ndarray:
        """Vectorised :meth:`segment_is_free` over ``(N, 3)`` endpoint arrays.

        Evaluates the same slab tests as the scalar version for every
        (segment, obstacle) pair at once; used by plan validation to check a
        whole waypoint path with one query.
        """
        a = points_as_array(starts)
        b = points_as_array(ends)
        if a.shape != b.shape:
            raise ValueError("start and end point arrays must have the same shape")
        free = self.in_bounds_batch(a) & self.in_bounds_batch(b)
        if not self.obstacles:
            return free
        direction = b - a  # (N, 3)
        parallel = np.abs(direction) < 1e-12  # (N, 3)
        lo_arr, hi_arr = self.obstacle_arrays()  # (M, 3)
        lo_arr = lo_arr[:, None, :] - margin  # (M, 1, 3) inflated boxes
        hi_arr = hi_arr[:, None, :] + margin
        with np.errstate(divide="ignore", invalid="ignore"):
            t1 = (lo_arr - a[None, :, :]) / direction[None, :, :]  # (M, N, 3)
            t2 = (hi_arr - a[None, :, :]) / direction[None, :, :]
        t_lo = np.minimum(t1, t2)
        t_hi = np.maximum(t1, t2)
        # Parallel axes contribute no t-interval but require the origin to
        # lie inside the slab (exactly the scalar early-out).
        par = parallel[None, :, :]
        origin_ok = (a[None, :, :] >= lo_arr) & (a[None, :, :] <= hi_arr)
        t_lo = np.where(par, -np.inf, t_lo)
        t_hi = np.where(par, np.inf, t_hi)
        t_min = np.maximum(t_lo.max(axis=2), 0.0)  # (M, N)
        t_max = np.minimum(t_hi.min(axis=2), 1.0)
        axis_ok = np.where(par, origin_ok, True).all(axis=2)
        hit = axis_ok & (t_min <= t_max)  # segment n intersects box m
        return free & ~hit.any(axis=0)

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def random_free_point(
        self,
        rng: random.Random,
        margin: float = 0.0,
        altitude_range: Optional[Tuple[float, float]] = None,
        max_tries: int = 1000,
    ) -> Vec3:
        """Sample a collision-free point uniformly from the workspace.

        ``margin`` is enforced as a *clearance* requirement — distance to
        both obstacles and the lateral walls/ceiling — so sampled goals are
        places a drone can actually be sent to.  ``altitude_range``
        restricts the z component, which is how the surveillance
        application keeps goals at flying altitude.
        """
        for _ in range(max_tries):
            point = self.bounds.random_point(rng)
            if altitude_range is not None:
                point = point.with_z(rng.uniform(*altitude_range))
            if self.is_free(point) and self.clearance(point) >= margin:
                return point
        raise RuntimeError(
            f"could not sample a free point in workspace {self.name!r} after {max_tries} tries"
        )

    def clamp(self, point: Vec3) -> Vec3:
        """Clamp ``point`` into the workspace bounds."""
        return self.bounds.clamp(point)


def grid_city_workspace(
    width: float = 50.0,
    depth: float = 50.0,
    ceiling: float = 12.0,
    building_rows: int = 3,
    building_cols: int = 3,
    building_size: float = 6.0,
    building_height: float = 8.0,
    street_margin: float = 6.0,
    name: str = "city",
) -> Workspace:
    """Build a regular city-block workspace like the Gazebo city of Figure 2.

    Buildings are laid out on a regular grid with streets between them; the
    drone flies below the ceiling and between the buildings.  All parameters
    are in metres.
    """
    if building_rows < 1 or building_cols < 1:
        raise ValueError("the city must have at least one building row and column")
    bounds = AABB(Vec3(0.0, 0.0, 0.0), Vec3(width, depth, ceiling))
    workspace = Workspace(bounds=bounds, obstacles=[], name=name)
    usable_w = width - 2 * street_margin
    usable_d = depth - 2 * street_margin
    step_x = usable_w / building_cols
    step_y = usable_d / building_rows
    if building_size >= min(step_x, step_y):
        raise ValueError("buildings are too large for the requested grid spacing")
    for row in range(building_rows):
        for col in range(building_cols):
            cx = street_margin + (col + 0.5) * step_x
            cy = street_margin + (row + 0.5) * step_y
            footprint_x = cx - building_size / 2.0
            footprint_y = cy - building_size / 2.0
            workspace.add_obstacle(
                AABB.from_footprint(footprint_x, footprint_y, building_size, building_size, building_height)
            )
    return workspace


def corridor_workspace(
    length: float = 40.0,
    width: float = 10.0,
    ceiling: float = 8.0,
    pillar_positions: Sequence[float] = (12.0, 24.0),
    pillar_size: float = 2.5,
    pillar_height: float = 6.0,
    name: str = "corridor",
) -> Workspace:
    """A long corridor with pillars; used for the g1..g4 square-mission experiments."""
    bounds = AABB(Vec3(0.0, 0.0, 0.0), Vec3(length, width, ceiling))
    workspace = Workspace(bounds=bounds, obstacles=[], name=name)
    for x in pillar_positions:
        footprint_x = x - pillar_size / 2.0
        footprint_y = width / 2.0 - pillar_size / 2.0
        workspace.add_obstacle(
            AABB.from_footprint(footprint_x, footprint_y, pillar_size, pillar_size, pillar_height)
        )
    return workspace


def empty_workspace(side: float = 20.0, ceiling: float = 10.0, name: str = "empty") -> Workspace:
    """An obstacle-free box, useful for unit tests and the quickstart example."""
    return Workspace(bounds=AABB(Vec3(0.0, 0.0, 0.0), Vec3(side, side, ceiling)), obstacles=[], name=name)


def min_clearance_along(points: Iterable[Vec3], workspace: Workspace) -> float:
    """Minimum clearance of a sequence of points with respect to ``workspace``."""
    best = math.inf
    for point in points:
        best = min(best, workspace.clearance(point))
    return best
