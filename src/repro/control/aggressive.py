"""The untrusted high-performance tracker (PX4-autopilot stand-in).

Figure 5 (right) of the paper shows the PX4 low-level controller, optimised
for time, overshooting during high-speed manoeuvres and colliding with
obstacles near the reference trajectory.  This tracker reproduces that
failure mode: it cruises close to the plant's maximum speed, does not slow
down in anticipation of waypoint changes, and ignores obstacles entirely —
making it fast on straight legs and dangerous around corners, exactly the
profile the RTA module is designed to exploit safely.
"""

from __future__ import annotations

import numpy as np

from ..dynamics import ControlCommand, DroneState
from ..geometry import Vec3, clamp_norm_rows, row_norms, unit_rows
from .base import WaypointTracker


class AggressiveTracker(WaypointTracker):
    """Time-optimised waypoint tracker with no safety margin (untrusted AC)."""

    name = "aggressive-tracker"

    def __init__(
        self,
        cruise_speed: float = 4.5,
        max_acceleration: float = 6.0,
        velocity_gain: float = 3.0,
        corner_anticipation: float = 0.0,
    ) -> None:
        if cruise_speed <= 0.0 or max_acceleration <= 0.0:
            raise ValueError("speeds and accelerations must be positive")
        if not 0.0 <= corner_anticipation <= 1.0:
            raise ValueError("corner_anticipation must lie in [0, 1]")
        self.cruise_speed = cruise_speed
        self.max_acceleration = max_acceleration
        self.velocity_gain = velocity_gain
        # 0.0 = no anticipation (most aggressive); 1.0 = full braking at waypoints.
        self.corner_anticipation = corner_anticipation
        # The control law is a pure function of (state, target); systematic
        # testing feeds it a finite menu of estimates against repeating
        # plan waypoints, so exact-input memoisation turns most firings
        # into dict hits.  Bounded so continuous workloads cannot grow it.
        self._memo: dict = {}
        self._memo_limit = 4096

    def command(self, state: DroneState, target: Vec3, now: float) -> ControlCommand:
        position, velocity = state.position, state.velocity
        key = (
            position.x, position.y, position.z,
            velocity.x, velocity.y, velocity.z,
            target.x, target.y, target.z,
        )
        cached = self._memo.get(key)
        if cached is None:
            cached = self._compute_command(state, target)
            if len(self._memo) < self._memo_limit:
                self._memo[key] = cached
        return cached

    def _compute_command(self, state: DroneState, target: Vec3) -> ControlCommand:
        to_target = target - state.position
        distance = to_target.norm()
        if distance < 1e-6:
            desired_velocity = Vec3.zero()
        else:
            # Cruise at full speed toward the waypoint; only slow down very
            # close to the target, scaled by how much anticipation the
            # controller was configured with (none by default).
            slow_radius = self.corner_anticipation * (
                self.cruise_speed * self.cruise_speed / (2.0 * self.max_acceleration)
            )
            if distance < slow_radius and slow_radius > 0.0:
                speed = self.cruise_speed * (distance / slow_radius)
            else:
                speed = self.cruise_speed
            desired_velocity = to_target.unit() * speed
        acceleration = (desired_velocity - state.velocity) * self.velocity_gain
        return ControlCommand(acceleration=acceleration.clamp_norm(self.max_acceleration))

    def command_batch(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        targets: np.ndarray,
        now: float,
    ) -> np.ndarray:
        """Vectorised control law over ``(N, 3)`` state/target arrays.

        Evaluates the same floating-point expressions in the same order as
        :meth:`_compute_command` (distance, optional slow-radius taper,
        unit direction times speed, velocity-error gain, clamp), so row
        *i* is bit-for-bit identical to ``command(state_i, target_i,
        now)`` — the oracle asserted in ``tests/control``.  The scalar
        memo is bypassed: the law is a pure function of (state, target),
        and the batch is the hot path precisely when inputs rarely repeat.
        """
        positions = np.asarray(positions, dtype=float).reshape(-1, 3)
        velocities = np.asarray(velocities, dtype=float).reshape(-1, 3)
        targets = np.asarray(targets, dtype=float).reshape(-1, 3)
        to_target = targets - positions
        distance = row_norms(to_target)
        slow_radius = self.corner_anticipation * (
            self.cruise_speed * self.cruise_speed / (2.0 * self.max_acceleration)
        )
        if slow_radius > 0.0:
            speed = np.where(
                distance < slow_radius,
                self.cruise_speed * (distance / slow_radius),
                self.cruise_speed,
            )
        else:
            speed = np.full(distance.shape, self.cruise_speed)
        desired_velocity = np.where(
            (distance < 1e-6)[:, None], 0.0, unit_rows(to_target) * speed[:, None]
        )
        acceleration = (desired_velocity - velocities) * self.velocity_gain
        return clamp_norm_rows(acceleration, self.max_acceleration)
