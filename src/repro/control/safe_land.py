"""The safe-landing controller (SC of the battery-safety RTA module).

When the battery decision module determines that continuing the mission
may leave too little charge to land (``bt - cost* < T_max``), it hands
control to a certified planner that "safely lands the drone from its
current position" (Section V-B).  This controller implements that
behaviour: kill horizontal velocity, then descend at a fixed safe rate
until touchdown.
"""

from __future__ import annotations

from ..dynamics import ControlCommand, DroneState
from ..geometry import Vec3
from .base import WaypointTracker


class SafeLandingController(WaypointTracker):
    """Brings the drone to a hover and descends vertically at a safe rate."""

    name = "safe-landing"

    def __init__(
        self,
        descent_speed: float = 1.0,
        max_acceleration: float = 4.0,
        velocity_gain: float = 3.0,
        touchdown_altitude: float = 0.15,
    ) -> None:
        if descent_speed <= 0.0:
            raise ValueError("descent_speed must be positive")
        if touchdown_altitude < 0.0:
            raise ValueError("touchdown_altitude must be non-negative")
        self.descent_speed = descent_speed
        self.max_acceleration = max_acceleration
        self.velocity_gain = velocity_gain
        self.touchdown_altitude = touchdown_altitude

    def landed(self, state: DroneState) -> bool:
        """True once the drone has reached the ground and is (nearly) at rest."""
        return state.altitude <= self.touchdown_altitude and state.speed <= 0.3

    def command(self, state: DroneState, target: Vec3, now: float) -> ControlCommand:
        # The target waypoint is ignored: landing happens at the current (x, y).
        if self.landed(state):
            return ControlCommand.hover()
        horizontal_velocity = Vec3(state.velocity.x, state.velocity.y, 0.0)
        if state.altitude > self.touchdown_altitude:
            desired_vertical = -self.descent_speed
        else:
            desired_vertical = 0.0
        desired_velocity = Vec3(0.0, 0.0, desired_vertical)
        acceleration = (desired_velocity - state.velocity) * self.velocity_gain
        # Slow the final metre of descent to avoid a hard touchdown.
        if state.altitude < 1.0:
            acceleration = Vec3(
                acceleration.x,
                acceleration.y,
                acceleration.z * 0.6,
            )
        del horizontal_velocity  # documented intent; PD already damps it
        return ControlCommand(acceleration=acceleration.clamp_norm(self.max_acceleration))
