"""The certified safe tracker (the SC of the motion-primitive RTA module).

The paper synthesises its safe controller with FaSTrack; the substitute
here is a conservative PD tracker with:

* a hard cap on commanded speed (far below the plant limit),
* obstacle-aware braking and repulsion: when the clearance to the nearest
  obstacle falls below the certified margin, the tracker prioritises
  increasing clearance over making progress toward the waypoint.

Together with the analytic :class:`~repro.reachability.TrackingErrorCertificate`
this gives the module its P2a (never leaves φ_safe once inside) and P2b
(recovers into φ_safer) evidence.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..dynamics import ControlCommand, DroneState
from ..geometry import (
    ClearanceField,
    Vec3,
    Workspace,
    clamp_norm_rows,
    row_dots,
    row_norms,
    unit_rows,
)
from ..reachability.fastrack import SafeTrackerParams
from .base import WaypointTracker, pd_acceleration


class SafeWaypointTracker(WaypointTracker):
    """Conservative, obstacle-aware waypoint tracker (certified safe controller)."""

    name = "safe-tracker"

    def __init__(
        self,
        params: SafeTrackerParams,
        workspace: Optional[Workspace] = None,
        recovery_clearance: Optional[float] = None,
        lookahead: float = 2.0,
        clearance_field: Optional[ClearanceField] = None,
    ) -> None:
        self.params = params
        self.workspace = workspace
        # Clearance below which the tracker actively retreats from obstacles;
        # chosen so the SC pushes the drone back into φ_safer (property P2b).
        self.recovery_clearance = (
            recovery_clearance if recovery_clearance is not None else params.obstacle_margin * 2.0
        )
        self.lookahead = lookahead
        self.clearance_field = clearance_field
        self._reference = None
        # Per-instance memos of the tracker's pure geometric sub-queries.
        # The away direction depends only on the (static) workspace and the
        # query position; the carrot point additionally depends on the
        # current reference polyline, so it is cleared on ``set_plan``.
        # Systematic testing drives the tracker with a finite menu of
        # estimates, so these turn the per-firing obstacle loops into dict
        # hits — and they are exactly the warm state the reset-and-reuse
        # explorer keeps alive across executions (a fresh build discards
        # them every run).  Bounded so continuous (noisy) workloads cannot
        # grow them without limit.
        self._memo_limit = 4096
        self._away_memo: dict = {}
        self._carrot_memo: dict = {}
        self._command_memo: dict = {}
        self._memo_obstacle_count = len(workspace.obstacles) if workspace is not None else 0

    def _check_memo_freshness(self) -> None:
        """Drop the geometry-derived memos if the workspace grew an obstacle.

        Mirrors :meth:`ClearanceField._check_freshness`: the supported
        mutation API is ``Workspace.add_obstacle``, and a memoised command
        or away direction computed against the old obstacle set would
        otherwise steer the safe controller with stale geometry.
        """
        if self.workspace is None:
            return
        count = len(self.workspace.obstacles)
        if count != self._memo_obstacle_count:
            self._away_memo.clear()
            self._carrot_memo.clear()
            self._command_memo.clear()
            self._memo_obstacle_count = count

    def set_plan(self, plan: object) -> None:
        """Follow the plan's collision-free reference trajectory when available."""
        reference = getattr(plan, "reference", None)
        self._reference = reference() if callable(reference) else None
        self._carrot_memo.clear()
        self._command_memo.clear()

    def reset(self) -> None:
        self._reference = None
        self._carrot_memo.clear()
        self._command_memo.clear()
        # The away-direction memo only depends on the immutable workspace;
        # keeping it warm across resets is the point of instance reuse.

    # -- delta-snapshot hooks (see repro.core.resettable) -------------- #
    def capture_delta_state(self) -> object:
        # The reference trajectory is the tracker's only semantic state;
        # plans are immutable, so a reference suffices.
        return self._reference

    def restore_delta_state(self, state: object) -> None:
        if self._reference is not state:
            # The carrot/command memos are keyed by position only — they
            # are valid for exactly one reference polyline (see set_plan).
            self._reference = state
            self._carrot_memo.clear()
            self._command_memo.clear()

    # ------------------------------------------------------------------ #
    # control law
    # ------------------------------------------------------------------ #
    def command(self, state: DroneState, target: Vec3, now: float) -> ControlCommand:
        # The whole law is a pure function of (state, target) given the
        # current reference polyline (the memo is cleared on ``set_plan``),
        # so exact-input repeats — ubiquitous under finite-menu systematic
        # testing — are answered from the memo, bit-identically.
        self._check_memo_freshness()
        position, velocity = state.position, state.velocity
        key = (
            position.x, position.y, position.z,
            velocity.x, velocity.y, velocity.z,
            target.x, target.y, target.z,
        )
        cached = self._command_memo.get(key)
        if cached is None:
            cached = self._compute_command(state, target, now)
            if len(self._command_memo) < self._memo_limit:
                self._command_memo[key] = cached
        return cached

    def _compute_command(self, state: DroneState, target: Vec3, now: float) -> ControlCommand:
        if self._reference is not None:
            # Carrot-following along the reference: the target handed in by
            # the primitive node may lie behind an obstacle corner relative
            # to the drone's (deviated) position, whereas the reference
            # polyline is collision-free by construction.
            key = (state.position.x, state.position.y, state.position.z)
            carrot = self._carrot_memo.get(key)
            if carrot is None:
                carrot = self._reference.advance_from(state.position, self.lookahead)
                if len(self._carrot_memo) < self._memo_limit:
                    self._carrot_memo[key] = carrot
            target = carrot
        tracking = pd_acceleration(
            state,
            target,
            position_gain=self.params.position_gain,
            velocity_gain=self.params.velocity_gain,
            max_speed=self.params.max_speed,
            max_acceleration=self.params.max_acceleration,
        )
        urgency = self._urgency(state)
        if urgency <= 0.0:
            acceleration = tracking
        else:
            # Blend between making progress and retreating from the obstacle:
            # the deeper the drone is inside the recovery band, the more the
            # repulsive/braking terms dominate.  This keeps property P2b
            # (clearance keeps increasing until φ_safer) while still letting
            # the safe controller track waypoints that pass near obstacles.
            away = self._away_direction(state.position)
            # Slide along the obstacle face toward the target instead of
            # pushing straight back — the classic potential-field fix that
            # prevents the controller from dead-locking behind a corner.
            to_target = (target - state.position).with_z(0.0)
            if to_target.norm() > 1e-6:
                to_target = to_target.unit()
                tangential = to_target - away * to_target.dot(away)
            else:
                tangential = Vec3.zero()
            escape = away + tangential * 0.8
            escape = escape.unit() if escape.norm() > 1e-6 else away
            repulsion = escape * self.params.max_acceleration
            braking = state.velocity * (-self.params.velocity_gain)
            acceleration = (
                tracking * (1.0 - 0.8 * urgency)
                + repulsion * (0.7 * urgency)
                + braking * (0.3 * urgency)
            )
        acceleration = acceleration.clamp_norm(self.params.max_acceleration)
        return ControlCommand(acceleration=acceleration)

    # ------------------------------------------------------------------ #
    # batched control law (bit-identical to mapping ``command`` row-wise)
    # ------------------------------------------------------------------ #
    def command_batch(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        targets: np.ndarray,
        now: float,
    ) -> np.ndarray:
        """Vectorised :meth:`command` over ``(N, 3)`` state/target arrays.

        Evaluates exactly the scalar law's floating-point expressions in
        the same order over the whole batch — PD tracking, urgency band,
        away/tangential escape blend, saturation — so row *i* equals
        ``command(state_i, target_i, now).acceleration`` bit for bit.
        This is what lets the batched well-formedness rollouts integrate
        every falsification sample simultaneously yet land on the same
        trajectories as the scalar path.  Carrot-following along a plan
        reference is not vectorised (the checker rollouts never set a
        plan); that case falls back to the scalar loop.
        """
        if self._reference is not None:
            return super().command_batch(positions, velocities, targets, now)
        self._check_memo_freshness()
        P = np.asarray(positions, dtype=float).reshape(-1, 3)
        V = np.asarray(velocities, dtype=float).reshape(-1, 3)
        T = np.asarray(targets, dtype=float).reshape(-1, 3)
        params = self.params
        # pd_acceleration, row-wise.
        desired = (T - P) * params.position_gain
        desired = clamp_norm_rows(desired, params.max_speed)
        tracking = (desired - V) * params.velocity_gain
        tracking = clamp_norm_rows(tracking, params.max_acceleration)
        # One fused obstacle sweep feeds both the urgency band (clearance)
        # and, for the urgent rows, the away direction (nearest box).
        geometry = self._batch_geometry(P)
        if geometry[0] is None:  # no workspace: never urgent
            urgency = np.zeros(P.shape[0])
        else:
            urgency = self._urgency_from_clearance(geometry[0])
        acceleration = tracking
        urgent = np.nonzero(urgency > 0.0)[0]
        if urgent.size:
            away = self._away_from_geometry(P, urgent, geometry)
            to_target = T[urgent] - P[urgent]
            to_target[:, 2] = 0.0
            norms = row_norms(to_target)
            progress = norms > 1e-6
            unit_target = np.where(
                progress[:, None], to_target / np.where(progress, norms, 1.0)[:, None], 0.0
            )
            tangential = np.where(
                progress[:, None],
                unit_target - away * row_dots(unit_target, away)[:, None],
                0.0,
            )
            escape = away + tangential * 0.8
            escape_norms = row_norms(escape)
            escapable = escape_norms > 1e-6
            escape = np.where(
                escapable[:, None],
                escape / np.where(escapable, escape_norms, 1.0)[:, None],
                away,
            )
            repulsion = escape * params.max_acceleration
            braking = V[urgent] * (-params.velocity_gain)
            u = urgency[urgent]
            blended = (
                tracking[urgent] * (1.0 - 0.8 * u)[:, None]
                + repulsion * (0.7 * u)[:, None]
                + braking * (0.3 * u)[:, None]
            )
            acceleration = acceleration.copy()
            acceleration[urgent] = blended
        return clamp_norm_rows(acceleration, params.max_acceleration)

    def _batch_geometry(self, positions: np.ndarray):
        """One obstacle/boundary sweep shared by urgency and away-direction.

        Returns ``(clearance, closest, dist, boundary)``: the exact
        clearances (same values as ``workspace.clearance_batch``), the
        per-(box, row) closest points and distances (``None`` without
        obstacles), and the boundary distances.
        """
        workspace = self.workspace
        if workspace is None:
            return None, None, None, None
        if workspace.obstacles:
            lo, hi = workspace.obstacle_arrays()  # (M, 3)
            closest = np.minimum(np.maximum(positions[None, :, :], lo[:, None, :]), hi[:, None, :])
            delta = positions[None, :, :] - closest  # (M, K, 3)
            dx, dy, dz = delta[:, :, 0], delta[:, :, 1], delta[:, :, 2]
            dist = np.sqrt(dx * dx + dy * dy + dz * dz)  # (M, K)
            obstacle_dist = dist.min(axis=0)
        else:
            closest = dist = None
            obstacle_dist = np.full(positions.shape[0], np.inf)
        boundary = workspace.distance_to_boundary_batch(positions)
        clearance = np.minimum(obstacle_dist, boundary)
        return clearance, closest, dist, boundary

    def _urgency_from_clearance(self, clearance: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`_urgency` from precomputed exact clearances."""
        band = max(self.recovery_clearance - self.params.obstacle_margin, 1e-6)
        urgency = np.minimum(1.0, np.maximum(0.0, (self.recovery_clearance - clearance) / band))
        return np.where(clearance >= self.recovery_clearance, 0.0, urgency)

    def _away_from_geometry(
        self, positions: np.ndarray, rows: np.ndarray, geometry
    ) -> np.ndarray:
        """Away directions for the selected ``rows``, reusing the shared sweep."""
        workspace = self.workspace
        assert workspace is not None
        _, closest, dist, boundary = geometry
        selected = positions[rows]
        count = rows.shape[0]
        if closest is not None:
            dist = dist[:, rows]  # (M, K')
            nearest = np.argmin(dist, axis=0)  # first minimum, like the scalar strict <
            cols = np.arange(count)
            nearest_dist = dist[nearest, cols]
            away = selected - closest[:, rows, :][nearest, cols, :]
            degenerate = row_norms(away) < 1e-6
            if degenerate.any():
                lo, hi = workspace.obstacle_arrays()
                centers = (lo + hi) * 0.5
                away = np.where(degenerate[:, None], selected - centers[nearest], away)
            directions = unit_rows(away)
        else:
            nearest_dist = np.full(count, np.inf)
            directions = np.zeros((count, 3))
        center = workspace.bounds.center
        toward = np.empty_like(selected)
        toward[:, 0] = center.x - selected[:, 0]
        toward[:, 1] = center.y - selected[:, 1]
        toward[:, 2] = 0.0
        toward_norms = row_norms(toward)
        use_boundary = (boundary[rows] < nearest_dist) & (toward_norms > 1e-6)
        if use_boundary.any():
            directions = np.where(use_boundary[:, None], unit_rows(toward), directions)
        # The scalar path re-normalises the (single) chosen direction once
        # more when summing the direction list; replicate that exactly.
        return unit_rows(directions)

    def _urgency(self, state: DroneState) -> float:
        """0 when comfortably clear of obstacles, 1 at the certified margin."""
        if self.workspace is None:
            return 0.0
        if self.clearance_field is not None:
            # Common case first: the cached lower bound proves the tracker
            # is comfortably clear, skipping the exact obstacle loop.  The
            # exact value is computed once and reused for both the
            # early-return test and the band interpolation below.
            if self.clearance_field.decides_above(state.position, self.recovery_clearance):
                return 0.0
            clearance = self.clearance_field.clearance(state.position)
        else:
            clearance = self.workspace.clearance(state.position)
        if clearance >= self.recovery_clearance:
            return 0.0
        floor = self.params.obstacle_margin
        band = max(self.recovery_clearance - floor, 1e-6)
        return min(1.0, max(0.0, (self.recovery_clearance - clearance) / band))

    def _away_direction(self, position: Vec3) -> Vec3:
        """Unit vector pointing away from the nearest obstacle / boundary.

        Memoised per exact position: the workspace is immutable, so the
        direction is a pure function of the query point.
        """
        key = (position.x, position.y, position.z)
        cached = self._away_memo.get(key)
        if cached is None:
            cached = self._compute_away_direction(position)
            if len(self._away_memo) < self._memo_limit:
                self._away_memo[key] = cached
        return cached

    def _compute_away_direction(self, position: Vec3) -> Vec3:
        assert self.workspace is not None
        nearest_box = None
        nearest_dist = float("inf")
        for obstacle in self.workspace.obstacles:
            dist = obstacle.distance_to_point(position)
            if dist < nearest_dist:
                nearest_dist = dist
                nearest_box = obstacle
        directions = []
        if nearest_box is not None and nearest_dist < float("inf"):
            closest = nearest_box.closest_point(position)
            away = position - closest
            if away.norm() < 1e-6:
                away = position - nearest_box.center
            directions.append(away.unit())
        # Also push away from the workspace boundary if that is the nearest hazard.
        boundary_dist = self.workspace.distance_to_boundary(position)
        if boundary_dist < nearest_dist:
            center = self.workspace.bounds.center
            toward_center = (center - position).with_z(0.0)
            if toward_center.norm() > 1e-6:
                directions = [toward_center.unit()]
        if not directions:
            return Vec3.zero()
        combined = Vec3.zero()
        for direction in directions:
            combined = combined + direction
        return combined.unit() if combined.norm() > 1e-6 else Vec3.zero()


class BrakingController(WaypointTracker):
    """A minimal certified controller that simply brakes to a hover.

    Used by the quickstart example and unit tests as the simplest possible
    safe controller: bounded dynamics guarantee it stops within its
    stopping distance, after which the state no longer changes.
    """

    name = "braking"

    def __init__(self, max_acceleration: float, velocity_gain: float = 4.0) -> None:
        if max_acceleration <= 0.0:
            raise ValueError("max_acceleration must be positive")
        self.max_acceleration = max_acceleration
        self.velocity_gain = velocity_gain

    def command(self, state: DroneState, target: Vec3, now: float) -> ControlCommand:
        acceleration = (state.velocity * (-self.velocity_gain)).clamp_norm(self.max_acceleration)
        return ControlCommand(acceleration=acceleration)
