"""The certified safe tracker (the SC of the motion-primitive RTA module).

The paper synthesises its safe controller with FaSTrack; the substitute
here is a conservative PD tracker with:

* a hard cap on commanded speed (far below the plant limit),
* obstacle-aware braking and repulsion: when the clearance to the nearest
  obstacle falls below the certified margin, the tracker prioritises
  increasing clearance over making progress toward the waypoint.

Together with the analytic :class:`~repro.reachability.TrackingErrorCertificate`
this gives the module its P2a (never leaves φ_safe once inside) and P2b
(recovers into φ_safer) evidence.
"""

from __future__ import annotations

from typing import Optional

from ..dynamics import ControlCommand, DroneState
from ..geometry import ClearanceField, Vec3, Workspace
from ..reachability.fastrack import SafeTrackerParams
from .base import WaypointTracker, pd_acceleration


class SafeWaypointTracker(WaypointTracker):
    """Conservative, obstacle-aware waypoint tracker (certified safe controller)."""

    name = "safe-tracker"

    def __init__(
        self,
        params: SafeTrackerParams,
        workspace: Optional[Workspace] = None,
        recovery_clearance: Optional[float] = None,
        lookahead: float = 2.0,
        clearance_field: Optional[ClearanceField] = None,
    ) -> None:
        self.params = params
        self.workspace = workspace
        # Clearance below which the tracker actively retreats from obstacles;
        # chosen so the SC pushes the drone back into φ_safer (property P2b).
        self.recovery_clearance = (
            recovery_clearance if recovery_clearance is not None else params.obstacle_margin * 2.0
        )
        self.lookahead = lookahead
        self.clearance_field = clearance_field
        self._reference = None

    def set_plan(self, plan: object) -> None:
        """Follow the plan's collision-free reference trajectory when available."""
        reference = getattr(plan, "reference", None)
        self._reference = reference() if callable(reference) else None

    def reset(self) -> None:
        self._reference = None

    # ------------------------------------------------------------------ #
    # control law
    # ------------------------------------------------------------------ #
    def command(self, state: DroneState, target: Vec3, now: float) -> ControlCommand:
        if self._reference is not None:
            # Carrot-following along the reference: the target handed in by
            # the primitive node may lie behind an obstacle corner relative
            # to the drone's (deviated) position, whereas the reference
            # polyline is collision-free by construction.
            target = self._reference.advance_from(state.position, self.lookahead)
        tracking = pd_acceleration(
            state,
            target,
            position_gain=self.params.position_gain,
            velocity_gain=self.params.velocity_gain,
            max_speed=self.params.max_speed,
            max_acceleration=self.params.max_acceleration,
        )
        urgency = self._urgency(state)
        if urgency <= 0.0:
            acceleration = tracking
        else:
            # Blend between making progress and retreating from the obstacle:
            # the deeper the drone is inside the recovery band, the more the
            # repulsive/braking terms dominate.  This keeps property P2b
            # (clearance keeps increasing until φ_safer) while still letting
            # the safe controller track waypoints that pass near obstacles.
            away = self._away_direction(state.position)
            # Slide along the obstacle face toward the target instead of
            # pushing straight back — the classic potential-field fix that
            # prevents the controller from dead-locking behind a corner.
            to_target = (target - state.position).with_z(0.0)
            if to_target.norm() > 1e-6:
                to_target = to_target.unit()
                tangential = to_target - away * to_target.dot(away)
            else:
                tangential = Vec3.zero()
            escape = away + tangential * 0.8
            escape = escape.unit() if escape.norm() > 1e-6 else away
            repulsion = escape * self.params.max_acceleration
            braking = state.velocity * (-self.params.velocity_gain)
            acceleration = (
                tracking * (1.0 - 0.8 * urgency)
                + repulsion * (0.7 * urgency)
                + braking * (0.3 * urgency)
            )
        acceleration = acceleration.clamp_norm(self.params.max_acceleration)
        return ControlCommand(acceleration=acceleration)

    def _urgency(self, state: DroneState) -> float:
        """0 when comfortably clear of obstacles, 1 at the certified margin."""
        if self.workspace is None:
            return 0.0
        if self.clearance_field is not None:
            # Common case first: the cached lower bound proves the tracker
            # is comfortably clear, skipping the exact obstacle loop.  The
            # exact value is computed once and reused for both the
            # early-return test and the band interpolation below.
            if self.clearance_field.decides_above(state.position, self.recovery_clearance):
                return 0.0
            clearance = self.clearance_field.clearance(state.position)
        else:
            clearance = self.workspace.clearance(state.position)
        if clearance >= self.recovery_clearance:
            return 0.0
        floor = self.params.obstacle_margin
        band = max(self.recovery_clearance - floor, 1e-6)
        return min(1.0, max(0.0, (self.recovery_clearance - clearance) / band))

    def _away_direction(self, position: Vec3) -> Vec3:
        """Unit vector pointing away from the nearest obstacle / boundary."""
        assert self.workspace is not None
        nearest_box = None
        nearest_dist = float("inf")
        for obstacle in self.workspace.obstacles:
            dist = obstacle.distance_to_point(position)
            if dist < nearest_dist:
                nearest_dist = dist
                nearest_box = obstacle
        directions = []
        if nearest_box is not None and nearest_dist < float("inf"):
            closest = nearest_box.closest_point(position)
            away = position - closest
            if away.norm() < 1e-6:
                away = position - nearest_box.center
            directions.append(away.unit())
        # Also push away from the workspace boundary if that is the nearest hazard.
        boundary_dist = self.workspace.distance_to_boundary(position)
        if boundary_dist < nearest_dist:
            center = self.workspace.bounds.center
            toward_center = (center - position).with_z(0.0)
            if toward_center.norm() > 1e-6:
                directions = [toward_center.unit()]
        if not directions:
            return Vec3.zero()
        combined = Vec3.zero()
        for direction in directions:
            combined = combined + direction
        return combined.unit() if combined.norm() > 1e-6 else Vec3.zero()


class BrakingController(WaypointTracker):
    """A minimal certified controller that simply brakes to a hover.

    Used by the quickstart example and unit tests as the simplest possible
    safe controller: bounded dynamics guarantee it stops within its
    stopping distance, after which the state no longer changes.
    """

    name = "braking"

    def __init__(self, max_acceleration: float, velocity_gain: float = 4.0) -> None:
        if max_acceleration <= 0.0:
            raise ValueError("max_acceleration must be positive")
        self.max_acceleration = max_acceleration
        self.velocity_gain = velocity_gain

    def command(self, state: DroneState, target: Vec3, now: float) -> ControlCommand:
        acceleration = (state.velocity * (-self.velocity_gain)).clamp_norm(self.max_acceleration)
        return ControlCommand(acceleration=acceleration)
