"""A "data-driven" tracker with occasional unsafe excursions.

Figure 5 (left) of the paper evaluates a low-level controller designed
with a data-driven approach on a figure-eight loop: it follows the loop
well most of the time but occasionally deviates dangerously.  Training a
neural-network controller is outside the scope of an offline reproduction,
so this class emulates the *behavioural envelope* that matters to SOTER: a
nominally competent tracker whose policy sporadically produces sustained,
large command errors (as a misgeneralising network does in off-nominal
states).  The misbehaviour is seeded and therefore reproducible.
"""

from __future__ import annotations

import random

from ..dynamics import ControlCommand, DroneState
from ..geometry import Vec3
from .base import WaypointTracker, pd_acceleration


class LearnedTracker(WaypointTracker):
    """Competent-most-of-the-time tracker with seeded, sustained error bursts."""

    name = "learned-tracker"

    def __init__(
        self,
        cruise_speed: float = 3.5,
        max_acceleration: float = 6.0,
        position_gain: float = 1.6,
        velocity_gain: float = 2.5,
        glitch_probability: float = 0.01,
        glitch_duration: float = 0.8,
        glitch_magnitude: float = 5.0,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= glitch_probability <= 1.0:
            raise ValueError("glitch_probability must be in [0, 1]")
        if glitch_duration < 0.0 or glitch_magnitude < 0.0:
            raise ValueError("glitch duration and magnitude must be non-negative")
        self.cruise_speed = cruise_speed
        self.max_acceleration = max_acceleration
        self.position_gain = position_gain
        self.velocity_gain = velocity_gain
        self.glitch_probability = glitch_probability
        self.glitch_duration = glitch_duration
        self.glitch_magnitude = glitch_magnitude
        self.seed = seed
        self._rng = random.Random(seed)
        self._glitch_until = -1.0
        self._glitch_direction = Vec3.zero()
        self.glitch_count = 0

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._glitch_until = -1.0
        self._glitch_direction = Vec3.zero()
        self.glitch_count = 0

    # -- delta-snapshot hooks (see repro.core.resettable) -------------- #
    def capture_delta_state(self) -> tuple:
        return (
            self._rng.getstate(),
            self._glitch_until,
            self._glitch_direction,
            self.glitch_count,
        )

    def restore_delta_state(self, state: tuple) -> None:
        rng_state, until, direction, count = state
        self._rng.setstate(rng_state)
        self._glitch_until = until
        self._glitch_direction = direction
        self.glitch_count = count

    def command(self, state: DroneState, target: Vec3, now: float) -> ControlCommand:
        nominal = pd_acceleration(
            state,
            target,
            position_gain=self.position_gain,
            velocity_gain=self.velocity_gain,
            max_speed=self.cruise_speed,
            max_acceleration=self.max_acceleration,
        )
        if now < self._glitch_until:
            # During a glitch the policy pushes hard in a wrong, fixed direction,
            # as a misbehaving learned policy does once it leaves its training
            # distribution.
            biased = nominal * 0.2 + self._glitch_direction * self.glitch_magnitude
            return ControlCommand(acceleration=biased.clamp_norm(self.max_acceleration))
        if self._rng.random() < self.glitch_probability:
            self.glitch_count += 1
            self._glitch_until = now + self.glitch_duration
            self._glitch_direction = self._random_direction()
        return ControlCommand(acceleration=nominal)

    def _random_direction(self) -> Vec3:
        while True:
            candidate = Vec3(
                self._rng.uniform(-1.0, 1.0), self._rng.uniform(-1.0, 1.0), self._rng.uniform(-0.2, 0.2)
            )
            if candidate.norm() > 1e-6:
                return candidate.unit()
