"""Controller interfaces for the motion-primitive layer.

A *tracker* converts the drone's current state plus a target waypoint into
a :class:`~repro.dynamics.ControlCommand`.  The advanced controllers
(PX4-like aggressive tracker, "learned" tracker) and the certified safe
tracker all implement this interface, which is what allows an RTA module
to swap one for the other at runtime (well-formedness property P1b).
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from ..dynamics import ControlCommand, DroneState
from ..geometry import Vec3


class WaypointTracker(abc.ABC):
    """Generates acceleration commands that drive the drone toward a waypoint."""

    #: Human-readable controller name used in traces and benchmark tables.
    name: str = "tracker"

    @abc.abstractmethod
    def command(self, state: DroneState, target: Vec3, now: float) -> ControlCommand:
        """Compute the control command for the current state and target."""

    def set_plan(self, plan: object) -> None:
        """Inform the tracker of the plan the target waypoints belong to.

        Most trackers ignore this; the certified safe tracker uses the
        plan's collision-free reference trajectory to pick its carrot
        point instead of chasing a possibly occluded waypoint.
        """

    def reset(self) -> None:
        """Clear any internal state between missions (default: nothing to clear)."""

    # -- delta-snapshot hooks (see repro.core.resettable) -------------- #
    # Most trackers are pure control laws whose only instance state is
    # memo caches of deterministic sub-queries — semantics-neutral warm
    # state that snapshots deliberately leave alone.  Stateful trackers
    # (the learned tracker's RNG, the safe tracker's reference) override.
    def capture_delta_state(self) -> object:
        """Everything that evolves during a mission, as plain values."""
        return None

    def restore_delta_state(self, state: object) -> None:
        """Rewind to a :meth:`capture_delta_state` point, in place."""

    def command_batch(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        targets: np.ndarray,
        now: float,
    ) -> np.ndarray:
        """Commanded accelerations for N (state, target) pairs at once.

        ``positions``/``velocities``/``targets`` are ``(N, 3)`` arrays;
        returns the ``(N, 3)`` commanded accelerations (yaw rates are not
        batched — every tracker in the case study leaves them at zero).
        Row *i* must equal ``command(state_i, target_i, now)``; the default
        implementation guarantees that by looping over the scalar law,
        while vectorised overrides (the certified safe tracker) evaluate
        the same expressions over the whole batch.  The batched
        well-formedness rollouts drive whole sample sets through this API.
        """
        positions = np.asarray(positions, dtype=float).reshape(-1, 3)
        velocities = np.asarray(velocities, dtype=float).reshape(-1, 3)
        targets = np.asarray(targets, dtype=float).reshape(-1, 3)
        accelerations = np.empty_like(positions)
        for i in range(positions.shape[0]):
            state = DroneState(position=Vec3(*positions[i]), velocity=Vec3(*velocities[i]))
            command = self.command(state, Vec3(*targets[i]), now)
            accelerations[i] = command.acceleration.as_tuple()
        return accelerations


class HoverController(WaypointTracker):
    """Commands zero acceleration regardless of the target (a trivial baseline)."""

    name = "hover"

    def command(self, state: DroneState, target: Vec3, now: float) -> ControlCommand:
        return ControlCommand.hover()


def pd_acceleration(
    state: DroneState,
    target: Vec3,
    position_gain: float,
    velocity_gain: float,
    max_speed: Optional[float] = None,
    max_acceleration: Optional[float] = None,
) -> Vec3:
    """The shared PD law all trackers build on.

    The command drives the drone toward a desired velocity that points at
    the target with magnitude proportional to the distance (saturated at
    ``max_speed``); the acceleration is the velocity error scaled by
    ``velocity_gain`` and optionally saturated.
    """
    to_target = target - state.position
    desired_velocity = to_target * position_gain
    if max_speed is not None:
        desired_velocity = desired_velocity.clamp_norm(max_speed)
    acceleration = (desired_velocity - state.velocity) * velocity_gain
    if max_acceleration is not None:
        acceleration = acceleration.clamp_norm(max_acceleration)
    return acceleration
