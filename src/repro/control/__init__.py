"""Controllers: untrusted advanced trackers, certified safe trackers, and primitive nodes."""

from .base import HoverController, WaypointTracker, pd_acceleration
from .aggressive import AggressiveTracker
from .learned import LearnedTracker
from .pd_tracker import BrakingController, SafeWaypointTracker
from .safe_land import SafeLandingController
from .primitives import MotionPrimitiveLibrary, MotionPrimitiveNode, PrimitiveProgress

__all__ = [
    "HoverController",
    "WaypointTracker",
    "pd_acceleration",
    "AggressiveTracker",
    "LearnedTracker",
    "BrakingController",
    "SafeWaypointTracker",
    "SafeLandingController",
    "MotionPrimitiveLibrary",
    "MotionPrimitiveNode",
    "PrimitiveProgress",
]
