"""Motion-primitive nodes: the SOTER nodes wrapping the waypoint trackers.

A motion-primitive node (the ``MotionPrimitive`` node of Figure 4 in the
paper) subscribes to the drone's estimated position and the current motion
plan, tracks the plan waypoint by waypoint, and publishes the low-level
control command.  Both the untrusted advanced primitive and the certified
safe primitive are instances of the same node class parameterised with
different trackers, which keeps their I/O signatures identical as the RTA
module requires (property P1b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

from ..core.node import Node
from ..dynamics import ControlCommand, DroneState
from ..geometry import Vec3
from ..planning import Plan
from .base import WaypointTracker


@dataclass
class PrimitiveProgress:
    """Mutable tracking state of a motion-primitive node."""

    plan_id: Optional[int] = None
    waypoint_index: int = 0
    waypoints_reached: int = 0


class MotionPrimitiveNode(Node):
    """Tracks the active motion plan with a pluggable waypoint tracker."""

    def __init__(
        self,
        name: str,
        tracker: WaypointTracker,
        plan_topic: str = "activePlan",
        position_topic: str = "localPosition",
        command_topic: str = "controlCommand",
        period: float = 0.05,
        capture_radius: float = 1.0,
    ) -> None:
        if capture_radius <= 0.0:
            raise ValueError("capture_radius must be positive")
        super().__init__(
            name=name,
            subscribes=(plan_topic, position_topic),
            publishes=(command_topic,),
            period=period,
        )
        self.tracker = tracker
        self.plan_topic = plan_topic
        self.position_topic = position_topic
        self.command_topic = command_topic
        self.capture_radius = capture_radius
        self.progress = PrimitiveProgress()

    def reset(self) -> None:
        self.tracker.reset()
        self.progress = PrimitiveProgress()

    # Delta-snapshot hooks (see repro.core.resettable): progress scalars
    # plus whatever mission state the tracker declares.
    def capture_delta_state(self) -> tuple:
        progress = self.progress
        return (
            progress.plan_id,
            progress.waypoint_index,
            progress.waypoints_reached,
            self.tracker.capture_delta_state(),
        )

    def restore_delta_state(self, state: tuple) -> None:
        plan_id, waypoint_index, waypoints_reached, tracker_state = state
        progress = self.progress
        progress.plan_id = plan_id
        progress.waypoint_index = waypoint_index
        progress.waypoints_reached = waypoints_reached
        self.tracker.restore_delta_state(tracker_state)

    # ------------------------------------------------------------------ #
    # the read → compute → publish step
    # ------------------------------------------------------------------ #
    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        state = inputs.get(self.position_topic)
        plan = inputs.get(self.plan_topic)
        if not isinstance(state, DroneState):
            # Without a position estimate the safest command is "no thrust".
            return {self.command_topic: ControlCommand.hover()}
        target = self._current_target(state, plan)
        if target is None:
            return {self.command_topic: ControlCommand.hover()}
        command = self.tracker.command(state, target, now)
        return {self.command_topic: command}

    def _current_target(self, state: DroneState, plan: Any) -> Optional[Vec3]:
        if not isinstance(plan, Plan):
            return None
        if plan.plan_id != self.progress.plan_id:
            # A new plan arrived: restart tracking from its beginning.
            self.progress = PrimitiveProgress(plan_id=plan.plan_id, waypoint_index=0)
            self.tracker.set_plan(plan)
        index = self.progress.waypoint_index
        target = plan.waypoint_after(index)
        # Advance through waypoints as they are captured.
        while (
            index < len(plan.waypoints) - 1
            and state.position.distance_to(target) <= self.capture_radius
        ):
            index += 1
            self.progress.waypoint_index = index
            self.progress.waypoints_reached += 1
            target = plan.waypoint_after(index)
        return target

    # ------------------------------------------------------------------ #
    # progress queries (used by the surveillance application and metrics)
    # ------------------------------------------------------------------ #
    def tracking_plan(self) -> Optional[int]:
        """The identifier of the plan currently being tracked."""
        return self.progress.plan_id

    def remaining_waypoints(self, plan: Optional[Plan]) -> int:
        """How many waypoints of ``plan`` are still ahead of the drone."""
        if plan is None or plan.plan_id != self.progress.plan_id:
            return 0 if plan is None else len(plan.waypoints)
        return max(0, len(plan.waypoints) - 1 - self.progress.waypoint_index)


class MotionPrimitiveLibrary:
    """A small registry of named trackers (the paper's "motion primitive library")."""

    def __init__(self) -> None:
        self._trackers: dict[str, WaypointTracker] = {}

    def register(self, tracker: WaypointTracker, name: Optional[str] = None) -> None:
        """Register a tracker under a name (defaults to the tracker's own name)."""
        key = name or tracker.name
        if key in self._trackers:
            raise ValueError(f"a tracker named {key!r} is already registered")
        self._trackers[key] = tracker

    def get(self, name: str) -> WaypointTracker:
        try:
            return self._trackers[name]
        except KeyError as exc:
            raise KeyError(f"no tracker named {name!r} is registered") from exc

    def names(self) -> tuple[str, ...]:
        return tuple(self._trackers.keys())

    def make_node(
        self,
        tracker_name: str,
        node_name: str,
        plan_topic: str = "activePlan",
        position_topic: str = "localPosition",
        command_topic: str = "controlCommand",
        period: float = 0.05,
    ) -> MotionPrimitiveNode:
        """Instantiate a motion-primitive node around a registered tracker."""
        return MotionPrimitiveNode(
            name=node_name,
            tracker=self.get(tracker_name),
            plan_topic=plan_topic,
            position_topic=position_topic,
            command_topic=command_topic,
            period=period,
        )
