"""Runtime: executors, scheduling policies, tracing, and fault injection."""

from .executor import (
    AsyncSimulatedTimeExecutor,
    ExecutionResult,
    SimulatedTimeExecutor,
    WallClockExecutor,
)
from .faults import (
    NODE_FAULT_KINDS,
    TOPIC_FAULT_KINDS,
    ChoiceFaultInjector,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultPlane,
    FaultSite,
    FaultSpec,
    FaultWindow,
    TopicFaultGate,
)
from .scheduler import JitteryOSScheduler, OverloadScheduler, PerfectScheduler
from .tracing import ExecutionTrace, FiringEvent, ModeSwitchEvent, SampleEvent

__all__ = [
    "AsyncSimulatedTimeExecutor",
    "ExecutionResult",
    "SimulatedTimeExecutor",
    "WallClockExecutor",
    "NODE_FAULT_KINDS",
    "TOPIC_FAULT_KINDS",
    "ChoiceFaultInjector",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlane",
    "FaultSite",
    "FaultSpec",
    "FaultWindow",
    "TopicFaultGate",
    "JitteryOSScheduler",
    "OverloadScheduler",
    "PerfectScheduler",
    "ExecutionTrace",
    "FiringEvent",
    "ModeSwitchEvent",
    "SampleEvent",
]
