"""Runtime: executors, scheduling policies, tracing, and fault injection."""

from .executor import ExecutionResult, SimulatedTimeExecutor, WallClockExecutor
from .faults import FaultInjector, FaultKind, FaultSpec
from .scheduler import JitteryOSScheduler, OverloadScheduler, PerfectScheduler
from .tracing import ExecutionTrace, FiringEvent, ModeSwitchEvent, SampleEvent

__all__ = [
    "ExecutionResult",
    "SimulatedTimeExecutor",
    "WallClockExecutor",
    "FaultInjector",
    "FaultKind",
    "FaultSpec",
    "JitteryOSScheduler",
    "OverloadScheduler",
    "PerfectScheduler",
    "ExecutionTrace",
    "FiringEvent",
    "ModeSwitchEvent",
    "SampleEvent",
]
