"""Executors: drive a compiled RTA system forward in (simulated or wall) time.

The generated C runtime in the paper executes the program "according to
the program's operational semantics" with OS timers providing the periodic
behaviour.  The Python runtime offers two equivalents:

* :class:`SimulatedTimeExecutor` — runs the discrete-event semantics as
  fast as possible in virtual time (used by all tests and benchmarks);
* :class:`WallClockExecutor` — paces the same semantics against the wall
  clock (a thin demonstration of on-line execution; not used by the
  benchmarks).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from ..core.monitor import MonitorSuite
from ..core.semantics import SchedulingPolicy, SemanticsEngine
from ..core.system import RTASystem
from .tracing import ExecutionTrace

EnvironmentHook = Callable[[SemanticsEngine, float], None]
StopCondition = Callable[[SemanticsEngine], bool]


@dataclass
class ExecutionResult:
    """What an executor run produced."""

    engine: SemanticsEngine
    trace: ExecutionTrace
    monitors: MonitorSuite
    wall_time: float
    end_time: float

    @property
    def safe(self) -> bool:
        """True if no monitor recorded a violation."""
        return self.monitors.ok


class SimulatedTimeExecutor:
    """Runs an RTA system in virtual time with optional monitors and environment.

    ``monitor_batch`` selects the monitor-evaluation path: ``1`` (the
    default) checks every monitor immediately at each sampling instant;
    larger values snapshot the monitored values and evaluate them in
    batched windows of that many samples (see
    :meth:`~repro.core.monitor.MonitorSuite.flush`), which produces the
    same violations — identical times, messages, order — while amortising
    predicate dispatch.  A final flush runs before :meth:`run` returns, so
    the result always reflects every sample.
    """

    def __init__(
        self,
        system: RTASystem,
        scheduler: Optional[SchedulingPolicy] = None,
        monitors: Optional[MonitorSuite] = None,
        monitor_period: float = 0.05,
        monitor_batch: int = 1,
    ) -> None:
        if monitor_period <= 0.0:
            raise ValueError("monitor_period must be positive")
        if monitor_batch < 1:
            raise ValueError("monitor_batch must be at least 1")
        self.system = system
        self.scheduler = scheduler
        self.monitors = monitors or MonitorSuite()
        self.monitor_period = monitor_period
        self.monitor_batch = monitor_batch

    def run(
        self,
        duration: float,
        environment: Optional[EnvironmentHook] = None,
        stop_when: Optional[StopCondition] = None,
    ) -> ExecutionResult:
        """Execute for ``duration`` seconds of virtual time."""
        trace = ExecutionTrace()
        engine = SemanticsEngine(self.system, scheduler=self.scheduler, listeners=[trace])
        started = _time.perf_counter()
        next_monitor_time = 0.0
        batched = self.monitor_batch > 1

        def hook(inner_engine: SemanticsEngine, upcoming: float) -> None:
            nonlocal next_monitor_time
            if environment is not None:
                environment(inner_engine, upcoming)
            while next_monitor_time <= upcoming + 1e-12:
                if batched:
                    self.monitors.capture_all(inner_engine)
                    if self.monitors.pending_samples >= self.monitor_batch:
                        self.monitors.flush()
                else:
                    self.monitors.check_all(inner_engine)
                next_monitor_time += self.monitor_period

        engine.run_until(duration, environment=hook, stop_when=stop_when)
        if batched:
            self.monitors.flush()
        wall = _time.perf_counter() - started
        return ExecutionResult(
            engine=engine,
            trace=trace,
            monitors=self.monitors,
            wall_time=wall,
            end_time=engine.current_time,
        )


class WallClockExecutor:
    """Paces the discrete-event execution against the wall clock.

    Every discrete step is delayed until its virtual time has elapsed in
    real time (scaled by ``time_scale``).  This mirrors deploying the
    generated program with OS timers; it exists for demonstration and for
    the quickstart example, not for the benchmarks.
    """

    def __init__(
        self,
        system: RTASystem,
        time_scale: float = 1.0,
        scheduler: Optional[SchedulingPolicy] = None,
        monitors: Optional[MonitorSuite] = None,
        monitor_period: float = 0.05,
    ) -> None:
        if time_scale <= 0.0:
            raise ValueError("time_scale must be positive")
        if monitor_period <= 0.0:
            raise ValueError("monitor_period must be positive")
        self.system = system
        self.time_scale = time_scale
        self.scheduler = scheduler
        self.monitors = monitors or MonitorSuite()
        self.monitor_period = monitor_period

    def run(self, duration: float, environment: Optional[EnvironmentHook] = None) -> ExecutionResult:
        """Execute for ``duration`` seconds of virtual time, paced in real time.

        Monitors passed to the constructor are checked on the same
        ``monitor_period`` schedule the :class:`SimulatedTimeExecutor`
        uses, right before each discrete step whose time they precede.
        """
        trace = ExecutionTrace()
        engine = SemanticsEngine(self.system, scheduler=self.scheduler, listeners=[trace])
        start_wall = _time.perf_counter()
        next_monitor_time = 0.0
        while True:
            next_time = engine.peek_next_time()
            if next_time is None or next_time > duration:
                break
            target_wall = start_wall + next_time / self.time_scale
            delay = target_wall - _time.perf_counter()
            if delay > 0:
                _time.sleep(min(delay, 0.05))
            if environment is not None:
                environment(engine, next_time)
            while next_monitor_time <= next_time + 1e-12:
                self.monitors.check_all(engine)
                next_monitor_time += self.monitor_period
            engine.step()
        wall = _time.perf_counter() - start_wall
        return ExecutionResult(
            engine=engine,
            trace=trace,
            monitors=self.monitors,
            wall_time=wall,
            end_time=engine.current_time,
        )
