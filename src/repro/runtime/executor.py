"""Executors: drive a compiled RTA system forward in (simulated or wall) time.

The generated C runtime in the paper executes the program "according to
the program's operational semantics" with OS timers providing the periodic
behaviour.  The Python runtime offers three equivalents:

* :class:`SimulatedTimeExecutor` — runs the discrete-event semantics as
  fast as possible in virtual time (used by all tests and benchmarks);
* :class:`AsyncSimulatedTimeExecutor` — the asyncio twin: the same
  virtual-time semantics, but the environment hook may be a coroutine so
  wall-clock-bound work (sensor IO, fleet co-simulation) of many missions
  can overlap in one event loop;
* :class:`WallClockExecutor` — paces the same semantics against the wall
  clock (a thin demonstration of on-line execution; not used by the
  benchmarks).

Re-entrancy
-----------
Every executor's :meth:`run` resets its monitor suite before driving the
engine, so one executor (and one shared suite) can serve many missions
back to back without the second run inheriting the first run's recorded
violations or pending batched samples.  Note that the suite object is
shared across runs: a previously returned :class:`ExecutionResult` reads
whatever the suite currently holds, so snapshot violations before
re-running if you need the old run's verdicts.
"""

from __future__ import annotations

import asyncio
import inspect
import time as _time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..core.monitor import MonitorSuite
from ..core.semantics import SchedulingPolicy, SemanticsEngine
from ..core.system import RTASystem
from .tracing import ExecutionTrace

EnvironmentHook = Callable[[SemanticsEngine, float], None]
#: An async-capable hook: may return ``None`` (plain call) or an awaitable.
AsyncEnvironmentHook = Callable[[SemanticsEngine, float], Any]
StopCondition = Callable[[SemanticsEngine], bool]


@dataclass
class ExecutionResult:
    """What an executor run produced."""

    engine: SemanticsEngine
    trace: ExecutionTrace
    monitors: MonitorSuite
    wall_time: float
    end_time: float

    @property
    def safe(self) -> bool:
        """True if no monitor recorded a violation."""
        return self.monitors.ok


class SimulatedTimeExecutor:
    """Runs an RTA system in virtual time with optional monitors and environment.

    ``monitor_batch`` selects the monitor-evaluation path: ``1`` (the
    default) checks every monitor immediately at each sampling instant;
    larger values snapshot the monitored values and evaluate them in
    batched windows of that many samples (see
    :meth:`~repro.core.monitor.MonitorSuite.flush`), which produces the
    same violations — identical times, messages, order — while amortising
    predicate dispatch.  A final flush runs before :meth:`run` returns, so
    the result always reflects every sample.
    """

    def __init__(
        self,
        system: RTASystem,
        scheduler: Optional[SchedulingPolicy] = None,
        monitors: Optional[MonitorSuite] = None,
        monitor_period: float = 0.05,
        monitor_batch: int = 1,
    ) -> None:
        if monitor_period <= 0.0:
            raise ValueError("monitor_period must be positive")
        if monitor_batch < 1:
            raise ValueError("monitor_batch must be at least 1")
        self.system = system
        self.scheduler = scheduler
        self.monitors = monitors or MonitorSuite()
        self.monitor_period = monitor_period
        self.monitor_batch = monitor_batch

    def run(
        self,
        duration: float,
        environment: Optional[EnvironmentHook] = None,
        stop_when: Optional[StopCondition] = None,
    ) -> ExecutionResult:
        """Execute for ``duration`` seconds of virtual time.

        The monitor suite is reset first, so repeated ``run()`` calls on
        one executor produce independent verdicts (no violations or
        pending batched samples inherited from an earlier mission).
        """
        self.monitors.reset()
        trace = ExecutionTrace()
        engine = SemanticsEngine(self.system, scheduler=self.scheduler, listeners=[trace])
        started = _time.perf_counter()
        next_monitor_time = 0.0
        batched = self.monitor_batch > 1

        def hook(inner_engine: SemanticsEngine, upcoming: float) -> None:
            nonlocal next_monitor_time
            if environment is not None:
                environment(inner_engine, upcoming)
            while next_monitor_time <= upcoming + 1e-12:
                if batched:
                    self.monitors.capture_all(inner_engine)
                    if self.monitors.pending_samples >= self.monitor_batch:
                        self.monitors.flush()
                else:
                    self.monitors.check_all(inner_engine)
                next_monitor_time += self.monitor_period

        engine.run_until(duration, environment=hook, stop_when=stop_when)
        if batched:
            self.monitors.flush()
        wall = _time.perf_counter() - started
        return ExecutionResult(
            engine=engine,
            trace=trace,
            monitors=self.monitors,
            wall_time=wall,
            end_time=engine.current_time,
        )


class AsyncSimulatedTimeExecutor:
    """The asyncio twin of :class:`SimulatedTimeExecutor`.

    Drives the identical virtual-time semantics — same step order, same
    monitor cadence, same batched-window behaviour — but the environment
    hook may be a coroutine function (or return an awaitable), so hooks
    that perform IO or co-simulate a remote fleet suspend the mission at
    well-defined points and let other missions of the same event loop
    make progress.  With a plain synchronous hook (or none) the execution
    is step-for-step identical to the synchronous executor: the engine
    never observes the event loop.

    ``yield_every`` optionally inserts an ``await asyncio.sleep(0)``
    every that many discrete steps, so a long hook-free mission still
    cooperates with its loop neighbours; ``0`` (the default) never yields
    and relies on the hook's own awaits.
    """

    def __init__(
        self,
        system: RTASystem,
        scheduler: Optional[SchedulingPolicy] = None,
        monitors: Optional[MonitorSuite] = None,
        monitor_period: float = 0.05,
        monitor_batch: int = 1,
        yield_every: int = 0,
    ) -> None:
        if monitor_period <= 0.0:
            raise ValueError("monitor_period must be positive")
        if monitor_batch < 1:
            raise ValueError("monitor_batch must be at least 1")
        if yield_every < 0:
            raise ValueError("yield_every must be non-negative")
        self.system = system
        self.scheduler = scheduler
        self.monitors = monitors or MonitorSuite()
        self.monitor_period = monitor_period
        self.monitor_batch = monitor_batch
        self.yield_every = yield_every

    async def run(
        self,
        duration: float,
        environment: Optional[AsyncEnvironmentHook] = None,
        stop_when: Optional[StopCondition] = None,
    ) -> ExecutionResult:
        """Execute for ``duration`` seconds of virtual time (awaitable).

        Mirrors :meth:`SimulatedTimeExecutor.run` exactly: monitors are
        reset first (re-entrancy), the environment hook and the monitor
        cadence run before each discrete step, and a final flush delivers
        any pending batched samples.  Awaitables returned by the hook are
        awaited in place — the only points where the mission can suspend
        besides the optional ``yield_every`` heartbeat.
        """
        self.monitors.reset()
        trace = ExecutionTrace()
        engine = SemanticsEngine(self.system, scheduler=self.scheduler, listeners=[trace])
        started = _time.perf_counter()
        next_monitor_time = 0.0
        batched = self.monitor_batch > 1
        steps = 0
        while True:
            next_time = engine.peek_next_time()
            if next_time is None or next_time > duration + 1e-12:
                break
            if environment is not None:
                pending = environment(engine, next_time)
                if inspect.isawaitable(pending):
                    await pending
            while next_monitor_time <= next_time + 1e-12:
                if batched:
                    self.monitors.capture_all(engine)
                    if self.monitors.pending_samples >= self.monitor_batch:
                        self.monitors.flush()
                else:
                    self.monitors.check_all(engine)
                next_monitor_time += self.monitor_period
            engine.step()
            steps += 1
            if self.yield_every and steps % self.yield_every == 0:
                await asyncio.sleep(0)
            if stop_when is not None and stop_when(engine):
                break
        if batched:
            self.monitors.flush()
        wall = _time.perf_counter() - started
        return ExecutionResult(
            engine=engine,
            trace=trace,
            monitors=self.monitors,
            wall_time=wall,
            end_time=engine.current_time,
        )


class WallClockExecutor:
    """Paces the discrete-event execution against the wall clock.

    Every discrete step is delayed until its virtual time has elapsed in
    real time (scaled by ``time_scale``).  This mirrors deploying the
    generated program with OS timers; it exists for demonstration and for
    the quickstart example, not for the benchmarks.
    """

    def __init__(
        self,
        system: RTASystem,
        time_scale: float = 1.0,
        scheduler: Optional[SchedulingPolicy] = None,
        monitors: Optional[MonitorSuite] = None,
        monitor_period: float = 0.05,
    ) -> None:
        if time_scale <= 0.0:
            raise ValueError("time_scale must be positive")
        if monitor_period <= 0.0:
            raise ValueError("monitor_period must be positive")
        self.system = system
        self.time_scale = time_scale
        self.scheduler = scheduler
        self.monitors = monitors or MonitorSuite()
        self.monitor_period = monitor_period

    def run(self, duration: float, environment: Optional[EnvironmentHook] = None) -> ExecutionResult:
        """Execute for ``duration`` seconds of virtual time, paced in real time.

        Monitors passed to the constructor are checked on the same
        ``monitor_period`` schedule the :class:`SimulatedTimeExecutor`
        uses, right before each discrete step whose time they precede.
        The suite is reset first, so repeated runs stay independent.
        """
        self.monitors.reset()
        trace = ExecutionTrace()
        engine = SemanticsEngine(self.system, scheduler=self.scheduler, listeners=[trace])
        start_wall = _time.perf_counter()
        next_monitor_time = 0.0
        while True:
            next_time = engine.peek_next_time()
            if next_time is None or next_time > duration:
                break
            target_wall = start_wall + next_time / self.time_scale
            delay = target_wall - _time.perf_counter()
            if delay > 0:
                _time.sleep(min(delay, 0.05))
            if environment is not None:
                environment(engine, next_time)
            while next_monitor_time <= next_time + 1e-12:
                self.monitors.check_all(engine)
                next_monitor_time += self.monitor_period
            engine.step()
        wall = _time.perf_counter() - start_wall
        return ExecutionResult(
            engine=engine,
            trace=trace,
            monitors=self.monitors,
            wall_time=wall,
            end_time=engine.current_time,
        )
