"""Execution tracing: the runtime's record of what happened during a run.

The trace is an :class:`~repro.core.semantics.EngineListener`; attach it to
a :class:`~repro.core.semantics.SemanticsEngine` to collect node firings,
mode switches, and environment inputs, plus any state samples the
simulator adds.  The mission metrics of the evaluation (disengagement
counts, fraction of time in AC mode, ...) are computed from these traces.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..core.decision import Mode
from ..core.node import Node


@dataclass(frozen=True)
class FiringEvent:
    """A node firing at a point in time."""

    time: float
    node: str
    enabled: bool
    published: Tuple[str, ...]


@dataclass(frozen=True)
class ModeSwitchEvent:
    """A decision-module mode switch."""

    time: float
    module: str
    previous: str
    new: str
    reason: str

    @property
    def is_disengagement(self) -> bool:
        return self.previous == Mode.AC.value and self.new == Mode.SC.value


@dataclass(frozen=True)
class SampleEvent:
    """A periodic sample of a scalar signal added by the simulator (e.g. clearance)."""

    time: float
    signal: str
    value: float


@dataclass
class ExecutionTrace:
    """A full record of one execution."""

    firings: List[FiringEvent] = field(default_factory=list)
    switches: List[ModeSwitchEvent] = field(default_factory=list)
    inputs: int = 0
    samples: List[SampleEvent] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def reset(self) -> None:
        """Forget every recorded event (Resettable: reuse across missions)."""
        self.firings.clear()
        self.switches.clear()
        self.inputs = 0
        self.samples.clear()
        self.notes.clear()

    # ------------------------------------------------------------------ #
    # EngineListener protocol
    # ------------------------------------------------------------------ #
    def on_node_fired(
        self, time: float, node: Node, outputs: Mapping[str, Any], enabled: bool
    ) -> None:
        self.firings.append(
            FiringEvent(time=time, node=node.name, enabled=enabled, published=tuple(outputs.keys()))
        )

    def on_mode_switch(
        self, time: float, module_name: str, previous: Mode, new: Mode, reason: str
    ) -> None:
        self.switches.append(
            ModeSwitchEvent(
                time=time, module=module_name, previous=previous.value, new=new.value, reason=reason
            )
        )

    def on_environment_input(self, time: float, topic: str, value: Any) -> None:
        self.inputs += 1

    # ------------------------------------------------------------------ #
    # simulator hooks
    # ------------------------------------------------------------------ #
    def add_sample(self, time: float, signal: str, value: float) -> None:
        """Record a scalar signal sample (drone clearance, battery charge, ...)."""
        self.samples.append(SampleEvent(time=time, signal=signal, value=float(value)))

    def note(self, message: str) -> None:
        """Attach a free-form annotation to the trace."""
        self.notes.append(message)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def firings_of(self, node_name: str) -> List[FiringEvent]:
        return [event for event in self.firings if event.node == node_name]

    def switches_of(self, module_name: str) -> List[ModeSwitchEvent]:
        return [event for event in self.switches if event.module == module_name]

    def disengagements(self, module_name: Optional[str] = None) -> List[ModeSwitchEvent]:
        """All AC→SC switches, optionally restricted to one module."""
        return [
            event
            for event in self.switches
            if event.is_disengagement and (module_name is None or event.module == module_name)
        ]

    def signal(self, name: str) -> List[Tuple[float, float]]:
        """Time series of a sampled signal."""
        return [(event.time, event.value) for event in self.samples if event.signal == name]

    def min_signal(self, name: str) -> Optional[float]:
        """Minimum value a sampled signal attained (None if never sampled)."""
        values = [value for _, value in self.signal(name)]
        return min(values) if values else None

    def duration(self) -> float:
        """Time span covered by the trace."""
        times = [event.time for event in self.firings] + [event.time for event in self.samples]
        if not times:
            return 0.0
        return max(times) - min(times)

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def switches_to_csv(self) -> str:
        """Mode switches as CSV text (time, module, previous, new, reason)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["time", "module", "previous", "new", "reason"])
        for event in self.switches:
            writer.writerow([f"{event.time:.3f}", event.module, event.previous, event.new, event.reason])
        return buffer.getvalue()

    def summary(self) -> Dict[str, Any]:
        """Compact dictionary summary of the trace."""
        return {
            "firings": len(self.firings),
            "mode_switches": len(self.switches),
            "disengagements": len(self.disengagements()),
            "environment_inputs": self.inputs,
            "samples": len(self.samples),
            "duration": self.duration(),
        }
