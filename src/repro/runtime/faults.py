"""Fault injection for untrusted components.

Section V of the paper evaluates SOTER "in the presence of bugs introduced
using fault injection in the advanced controller" and with bugs injected
into the third-party RRT* planner.  Two fault planes live here:

* the **probabilistic** plane — :class:`FaultInjector` wraps any node and
  perturbs its outputs according to a :class:`FaultSpec`, drawing fault
  timing from a private seeded RNG.  Good for simulation campaigns, but
  invisible to the systematic testing engine: the RNG is not a choice
  point, so the testers cannot enumerate, target, or replay fault timings.
* the **strategy-driven** plane — a :class:`FaultPlan` declares *fault
  sites* (a wrapped node or a topic) with activation *windows* and
  candidate *kinds*; each ``(site, window)`` pair becomes one labeled
  choice in the execution's trail (option 0 = no fault), resolved by the
  same :class:`~repro.testing.strategies.ChoiceStrategy` that drives every
  other nondeterministic choice.  Exhaustive enumeration sweeps the fault
  space, trails replay bit-identically, the population trie compacts
  shared fault prefixes, and coverage gains a fault axis.
  :class:`ChoiceFaultInjector` is the node-site wrapper,
  :class:`TopicFaultGate` intercepts topic publishes at the
  :class:`~repro.core.topics.TopicBoard`, and :class:`FaultPlane` ties
  both to the tester's environment hook.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.errors import NodeError
from ..core.node import Node
from ..dynamics import ControlCommand
from ..geometry import Vec3


class FaultKind(enum.Enum):
    """Supported output fault classes."""

    DROP = "drop"          # the output is silently not published (topics: reading dropout)
    STUCK = "stuck"        # the last published value is repeated forever
    BIAS = "bias"          # a constant offset is added (control commands only)
    NOISE = "noise"        # random perturbation is added (control commands only)
    INVERT = "invert"      # the commanded acceleration is negated (control commands only)
    CRASH = "crash"        # the node stops firing, then restarts from reset() (node sites only)
    SUBSTITUTE = "substitute"  # outputs replaced by builder-supplied values (node sites only)
    DELAY = "delay"        # topic publishes are delivered late (topic sites only)


#: Kinds a :class:`ChoiceFaultInjector` (node site) can inject.
NODE_FAULT_KINDS = frozenset(
    {
        FaultKind.DROP,
        FaultKind.STUCK,
        FaultKind.BIAS,
        FaultKind.NOISE,
        FaultKind.INVERT,
        FaultKind.CRASH,
        FaultKind.SUBSTITUTE,
    }
)

#: Kinds a :class:`TopicFaultGate` (topic site) can inject.
TOPIC_FAULT_KINDS = frozenset({FaultKind.DROP, FaultKind.STUCK, FaultKind.DELAY})


@dataclass
class FaultSpec:
    """When and how a fault manifests."""

    kind: FaultKind
    probability: float = 1.0
    magnitude: float = 1.0
    start_time: float = 0.0
    end_time: float = float("inf")
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")
        if self.end_time < self.start_time:
            raise ValueError("fault window must have end_time >= start_time")


class FaultInjector(Node):
    """Wraps a node and injects faults into its published outputs.

    The injector preserves the wrapped node's interface (same name is NOT
    reused — the injector gets ``<name>.faulty`` so traces can tell them
    apart; subscriptions, publications, and period are identical, which
    keeps well-formedness property P1 intact when the injector replaces
    the AC inside an RTA module).
    """

    def __init__(self, inner: Node, spec: FaultSpec, rename: Optional[str] = None) -> None:
        super().__init__(
            name=rename or f"{inner.name}.faulty",
            subscribes=inner.subscribes,
            publishes=inner.publishes,
            period=inner.period,
            offset=inner.offset,
        )
        self.inner = inner
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._last_outputs: dict[str, Any] = {}
        self.injected_faults = 0

    def reset(self) -> None:
        self.inner.reset()
        self._rng = random.Random(self.spec.seed)
        self._last_outputs = {}
        self.injected_faults = 0

    def _active(self, now: float) -> bool:
        if not self.spec.start_time <= now <= self.spec.end_time:
            return False
        return self._rng.random() < self.spec.probability

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        outputs = dict(self.inner.step(now, inputs) or {})
        if not self._active(now):
            self._last_outputs = dict(outputs)
            return outputs
        self.injected_faults += 1
        if self.spec.kind is FaultKind.DROP:
            return {}
        if self.spec.kind is FaultKind.STUCK:
            return dict(self._last_outputs)
        corrupted = {name: self._corrupt(value) for name, value in outputs.items()}
        self._last_outputs = dict(corrupted)
        return corrupted

    def _corrupt(self, value: Any) -> Any:
        """Apply the value-level fault; only control commands are perturbed."""
        if not isinstance(value, ControlCommand):
            return value
        if self.spec.kind is FaultKind.BIAS:
            offset = Vec3(self.spec.magnitude, 0.0, 0.0)
            return ControlCommand(acceleration=value.acceleration + offset, yaw_rate=value.yaw_rate)
        if self.spec.kind is FaultKind.NOISE:
            noise = Vec3(
                self._rng.uniform(-self.spec.magnitude, self.spec.magnitude),
                self._rng.uniform(-self.spec.magnitude, self.spec.magnitude),
                self._rng.uniform(-self.spec.magnitude, self.spec.magnitude) * 0.2,
            )
            return ControlCommand(acceleration=value.acceleration + noise, yaw_rate=value.yaw_rate)
        if self.spec.kind is FaultKind.INVERT:
            return ControlCommand(acceleration=-value.acceleration, yaw_rate=value.yaw_rate)
        raise NodeError(f"unsupported fault kind {self.spec.kind}")


# --------------------------------------------------------------------- #
# the strategy-driven fault plane: plans, sites, windows
# --------------------------------------------------------------------- #


def _coerce_kind(value: Any) -> FaultKind:
    if isinstance(value, FaultKind):
        return value
    return FaultKind(str(value))


@dataclass(frozen=True)
class FaultWindow:
    """A half-open activation window ``[start, end)`` in model time.

    Half-open intervals make adjacent windows (``[0, 1)``, ``[1, 2)``)
    partition time without a double-activation instant, so each firing or
    publish belongs to at most one window of a site.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.end > self.start:
            raise ValueError("fault windows must have end > start")

    def contains(self, now: float) -> bool:
        return self.start <= now < self.end


@dataclass(frozen=True)
class FaultSite:
    """One injectable location: a node's outputs or a topic's publishes.

    Exactly one of ``node``/``topic`` names the target.  ``kinds`` are the
    candidate fault classes; together with "no fault" they form the option
    menu of the per-window choice point, labeled
    ``fault:<site name>:w<index>`` in the trail.  **Option 0 is always "no
    fault"**, so truncated exhaustive enumeration and trails replayed
    beyond their recorded length (both default to option 0) degrade to the
    fault-free execution.
    """

    kinds: Tuple[FaultKind, ...]
    windows: Tuple[FaultWindow, ...]
    node: Optional[str] = None
    topic: Optional[str] = None
    magnitude: float = 1.0
    delay: float = 0.2
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", tuple(_coerce_kind(kind) for kind in self.kinds))
        object.__setattr__(
            self,
            "windows",
            tuple(
                window if isinstance(window, FaultWindow) else FaultWindow(*window)
                for window in self.windows
            ),
        )
        if (self.node is None) == (self.topic is None):
            raise ValueError("a fault site targets exactly one of node= or topic=")
        if not self.kinds:
            raise ValueError("a fault site needs at least one candidate kind")
        if not self.windows:
            raise ValueError("a fault site needs at least one activation window")
        allowed = NODE_FAULT_KINDS if self.node is not None else TOPIC_FAULT_KINDS
        surface = "node" if self.node is not None else "topic"
        for kind in self.kinds:
            if kind not in allowed:
                raise ValueError(f"fault kind {kind.value!r} is not injectable at a {surface} site")
        ordered = sorted(self.windows, key=lambda window: window.start)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start < earlier.end:
                raise ValueError("fault windows of one site must not overlap")
        object.__setattr__(self, "windows", tuple(ordered))
        if self.delay <= 0.0:
            raise ValueError("the delivery delay must be positive")

    @property
    def name(self) -> str:
        """Stable site label used in choice labels and coverage keys."""
        if self.node is not None:
            return f"node:{self.node}"
        return f"topic:{self.topic}"

    def options(self) -> int:
        """Number of options at each of this site's choice points."""
        return 1 + len(self.kinds)

    def encode(self) -> Tuple[Any, ...]:
        """The wire form: nested tuples of JSON scalars (hashable, JSON-safe)."""
        return (
            "node" if self.node is not None else "topic",
            self.node if self.node is not None else self.topic,
            tuple(kind.value for kind in self.kinds),
            tuple((window.start, window.end) for window in self.windows),
            self.magnitude,
            self.delay,
            self.seed,
        )

    @classmethod
    def decode(cls, data: Sequence[Any]) -> "FaultSite":
        surface, target, kinds, windows, magnitude, delay, seed = data
        if surface not in ("node", "topic"):
            raise ValueError(f"unknown fault surface {surface!r}")
        return cls(
            kinds=tuple(_coerce_kind(kind) for kind in kinds),
            windows=tuple(FaultWindow(float(start), float(end)) for start, end in windows),
            node=str(target) if surface == "node" else None,
            topic=str(target) if surface == "topic" else None,
            magnitude=float(magnitude),
            delay=float(delay),
            seed=int(seed),
        )


@dataclass(frozen=True)
class FaultPlan:
    """The declared fault space of one scenario: a tuple of fault sites.

    A plan is a *value object*: :meth:`encode` produces nested tuples of
    JSON scalars, which survive the swarm wire protocol's JSON round trip
    (tuples encode as lists and come back as tuples via ``_tuplify``) and
    stay hashable for the drones' warm-tester cache keys.

    >>> plan = FaultPlan(sites=(FaultSite(
    ...     kinds=(FaultKind.DROP,), windows=(FaultWindow(0.0, 1.0),),
    ...     topic="localPosition"),))
    >>> FaultPlan.coerce(plan.encode()) == plan
    True
    """

    sites: Tuple[FaultSite, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "sites", tuple(self.sites))
        names = [site.name for site in self.sites]
        if len(set(names)) != len(names):
            raise ValueError("fault sites must target distinct nodes/topics")

    def node_sites(self) -> Tuple[FaultSite, ...]:
        return tuple(site for site in self.sites if site.node is not None)

    def topic_sites(self) -> Tuple[FaultSite, ...]:
        return tuple(site for site in self.sites if site.topic is not None)

    def site_for_node(self, node_name: str) -> Optional[FaultSite]:
        for site in self.sites:
            if site.node == node_name:
                return site
        return None

    def encode(self) -> Tuple[Tuple[Any, ...], ...]:
        return tuple(site.encode() for site in self.sites)

    @classmethod
    def decode(cls, data: Sequence[Sequence[Any]]) -> "FaultPlan":
        return cls(sites=tuple(FaultSite.decode(site) for site in data))

    @classmethod
    def coerce(cls, value: Any) -> Optional["FaultPlan"]:
        """Accept a plan, its encoded form, or ``None`` (scenario overrides)."""
        if value is None or isinstance(value, FaultPlan):
            return value
        return cls.decode(value)


class _WindowedSite:
    """Shared per-execution choice state of one fault site.

    The activation of window *i* is decided lazily — at the first firing
    (node sites) or publish/advance (topic sites) inside the window — by
    drawing one choice with ``1 + len(kinds)`` options from the bound
    strategy.  Decision times are deterministic given the trail prefix, so
    the choice sits at a stable trail position: the property the
    population trie's trail-determinism contract requires.
    """

    __slots__ = ("site", "strategy", "_decisions")

    def __init__(self, site: FaultSite) -> None:
        self.site = site
        self.strategy: Any = None
        self._decisions: List[Optional[int]] = [None] * len(site.windows)

    def bind_strategy(self, strategy: Any) -> None:
        self.strategy = strategy

    def reset(self) -> None:
        self._decisions = [None] * len(self.site.windows)

    def active_kind(self, now: float) -> Optional[FaultKind]:
        """The decided kind at ``now``, drawing the window choice on first entry."""
        for index, window in enumerate(self.site.windows):
            if not window.contains(now):
                continue
            decided = self._decisions[index]
            if decided is None:
                if self.strategy is None:
                    decided = 0  # unbound models degrade to fault-free
                else:
                    decided = self.strategy.choose(
                        self.site.options(), label=f"fault:{self.site.name}:w{index}"
                    )
                self._decisions[index] = decided
            if decided == 0:
                return None
            return self.site.kinds[decided - 1]
        return None

    def coverage_sample(self, now: float) -> Optional[Tuple[str, str, str]]:
        """The fault-axis coverage key at ``now`` (only for decided windows)."""
        for index, window in enumerate(self.site.windows):
            if not window.contains(now):
                continue
            decided = self._decisions[index]
            if decided is None:
                return None
            kind = "ok" if decided == 0 else self.site.kinds[decided - 1].value
            return (f"fault:{self.site.name}", kind, f"w{index}")
        return None


class ChoiceFaultInjector(Node):
    """A node-site injector whose fault timing lives in the choice trail.

    Same interface-preservation guarantees as :class:`FaultInjector`
    (identical subscriptions, publications and period, renamed to
    ``<name>.faultable`` by default), but *when* and *which* fault
    manifests is decided by the execution's strategy through the site's
    per-window choice points — never by a hidden RNG.  The only RNG left
    is the NOISE perturbation's value stream, which is seeded from the
    site and re-seeded on reset, so a replayed trail reproduces the noisy
    outputs bit-identically.

    ``FaultKind.CRASH`` models crash-and-restart: during an active crash
    window the inner node is not stepped and nothing is published; at the
    first firing after the crash the inner node is ``reset()`` — it
    restarts from its boot state mid-execution.  ``FaultKind.SUBSTITUTE``
    replaces outputs with builder-supplied values (``substitutes`` maps
    output topics to the injected value) — the hook scenario builders use
    to inject *specific* bad data, e.g. a corner-cutting plan.
    """

    def __init__(
        self,
        inner: Node,
        site: FaultSite,
        rename: Optional[str] = None,
        substitutes: Optional[Mapping[str, Any]] = None,
    ) -> None:
        if site.node is None:
            raise ValueError("ChoiceFaultInjector needs a node-targeting fault site")
        super().__init__(
            name=rename or f"{inner.name}.faultable",
            subscribes=inner.subscribes,
            publishes=inner.publishes,
            period=inner.period,
            offset=inner.offset,
        )
        self.inner = inner
        self.site = site
        self.substitutes = dict(substitutes or {})
        if FaultKind.SUBSTITUTE in site.kinds and not self.substitutes:
            raise ValueError("SUBSTITUTE faults need a substitutes= mapping")
        self._state = _WindowedSite(site)
        self._last_outputs: Dict[str, Any] = {}
        self._crashed = False
        self._rng = random.Random(site.seed)
        self.injected_faults = 0

    # -- strategy plumbing (duck-typed, like NondeterministicNode) ------- #
    def bind_strategy(self, strategy: Any) -> None:
        self._state.bind_strategy(strategy)

    def coverage_sample(self, now: float) -> Optional[Tuple[str, str, str]]:
        return self._state.coverage_sample(now)

    def reset(self) -> None:
        self.inner.reset()
        self._state.reset()
        self._last_outputs = {}
        self._crashed = False
        self._rng = random.Random(self.site.seed)
        self.injected_faults = 0

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        kind = self._state.active_kind(now)
        if kind is FaultKind.CRASH:
            self.injected_faults += 1
            self._crashed = True
            return {}
        if self._crashed:
            # First firing after a crash window: the node restarts from its
            # boot state (crash-and-restart, not crash-and-resume).
            self.inner.reset()
            self._crashed = False
        outputs = dict(self.inner.step(now, inputs) or {})
        if kind is None:
            self._last_outputs = dict(outputs)
            return outputs
        self.injected_faults += 1
        if kind is FaultKind.DROP:
            return {}
        if kind is FaultKind.STUCK:
            return dict(self._last_outputs)
        if kind is FaultKind.SUBSTITUTE:
            substituted = {
                topic: self.substitutes.get(topic, value) for topic, value in outputs.items()
            }
            if not outputs:
                substituted = dict(self.substitutes)
            self._last_outputs = dict(substituted)
            return substituted
        corrupted = {topic: self._corrupt(kind, value) for topic, value in outputs.items()}
        self._last_outputs = dict(corrupted)
        return corrupted

    def _corrupt(self, kind: FaultKind, value: Any) -> Any:
        if not isinstance(value, ControlCommand):
            return value
        magnitude = self.site.magnitude
        if kind is FaultKind.BIAS:
            offset = Vec3(magnitude, 0.0, 0.0)
            return ControlCommand(acceleration=value.acceleration + offset, yaw_rate=value.yaw_rate)
        if kind is FaultKind.NOISE:
            noise = Vec3(
                self._rng.uniform(-magnitude, magnitude),
                self._rng.uniform(-magnitude, magnitude),
                self._rng.uniform(-magnitude, magnitude) * 0.2,
            )
            return ControlCommand(acceleration=value.acceleration + noise, yaw_rate=value.yaw_rate)
        if kind is FaultKind.INVERT:
            return ControlCommand(acceleration=-value.acceleration, yaw_rate=value.yaw_rate)
        raise NodeError(f"unsupported node fault kind {kind}")


class TopicFaultGate:
    """Message loss, freezes and delays injected at the :class:`TopicBoard`.

    The board's :meth:`~repro.core.topics.TopicBoard.publish` is the
    single choke point every topic write funnels through (node firings via
    ``publish_many``, environment inputs via ``engine.set_input``), so one
    gate covers the entire topic plane.  For each gated topic the active
    window's decided kind maps to:

    * ``DROP`` — the reading blacks out: the write is replaced by ``None``
      (subscribers see a missing value, sensor-dropout style);
    * ``STUCK`` — the message is lost: the write is swallowed and the
      previous value persists (message-loss style);
    * ``DELAY`` — the write is buffered and delivered ``site.delay``
      seconds later by :meth:`advance`.

    Ungated topics pay one dict lookup; boards without a gate installed
    pay one attribute check (see ``TopicBoard.publish``).
    """

    def __init__(self, sites: Sequence[FaultSite]) -> None:
        for site in sites:
            if site.topic is None:
                raise ValueError("TopicFaultGate needs topic-targeting fault sites")
        self._by_topic: Dict[str, _WindowedSite] = {
            site.topic: _WindowedSite(site) for site in sites  # type: ignore[misc]
        }
        self._board: Any = None
        self._pending: List[Tuple[float, str, Any]] = []
        self.now = 0.0
        self.injected_faults = 0

    @property
    def site_states(self) -> List[_WindowedSite]:
        return list(self._by_topic.values())

    def bind_strategy(self, strategy: Any) -> None:
        for state in self._by_topic.values():
            state.bind_strategy(strategy)

    def install(self, board: Any) -> None:
        """Attach this gate to a topic board (idempotent per board)."""
        self._board = board
        board._gate = self

    def reset(self) -> None:
        self.now = 0.0
        self._pending.clear()
        self.injected_faults = 0
        for state in self._by_topic.values():
            state.reset()

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    def capture_delta_state(self) -> Any:
        """Clock, pending delayed writes, and every site's window decisions."""
        return (
            self.now,
            tuple(self._pending),
            self.injected_faults,
            tuple(tuple(state._decisions) for state in self._by_topic.values()),
        )

    def restore_delta_state(self, state: Any) -> None:
        """Rewind the gate in place (identity preserved — the board keeps
        pointing at the installed gate)."""
        now, pending, injected, decisions = state
        self.now = now
        self._pending[:] = pending
        self.injected_faults = injected
        for site_state, row in zip(self._by_topic.values(), decisions):
            site_state._decisions = list(row)

    def advance(self, now: float) -> None:
        """Move the gate clock and deliver every delayed write now due."""
        self.now = now
        if not self._pending:
            return
        due = [entry for entry in self._pending if entry[0] <= now + 1e-12]
        if not due:
            return
        self._pending = [entry for entry in self._pending if entry[0] > now + 1e-12]
        # Deliveries land in send order (stable within equal due times);
        # values were type-checked at their original publish.
        for _, name, value in due:
            self._board.values[name] = value

    def admit(self, name: str, value: Any) -> bool:
        """Gate one publish; True lets the board's normal write proceed."""
        state = self._by_topic.get(name)
        if state is None:
            return True
        kind = state.active_kind(self.now)
        if kind is None:
            return True
        self.injected_faults += 1
        if kind is FaultKind.DROP:
            self._board.values[name] = None
            return False
        if kind is FaultKind.STUCK:
            return False
        if kind is FaultKind.DELAY:
            self._pending.append((self.now + state.site.delay, name, value))
            return False
        raise NodeError(f"unsupported topic fault kind {kind}")


class FaultPlane:
    """The execution-facing façade of one scenario's fault plan.

    Duck-types the :class:`~repro.testing.abstractions.AbstractEnvironment`
    interface (``apply``/``reset``/``bind_strategy``) and wraps the
    scenario's real environment, so the testers' hot loops need no new
    hook: scenario builders store the plane as the model instance's
    ``environment``.  On every sampling instant :meth:`apply` installs the
    gate on the engine's board (once), advances the gate clock, delivers
    due delayed writes, and then delegates to the inner environment.

    Node-site injectors are *adopted* from the compiled system
    (:meth:`adopt`), so builders that wire injectors deep inside RTA
    modules don't have to thread handles out.  ``fault_sites`` exposes
    every site's choice state for the coverage plane's fault axis.
    """

    def __init__(self, plan: FaultPlan, environment: Any = None) -> None:
        self.plan = plan
        self.environment = environment
        self.gate = TopicFaultGate(plan.topic_sites())
        self.injectors: List[ChoiceFaultInjector] = []
        self._strategy: Any = None

    def adopt(self, system: Any) -> "FaultPlane":
        """Register every :class:`ChoiceFaultInjector` found in ``system``."""
        for node in system.all_nodes():
            if isinstance(node, ChoiceFaultInjector) and node not in self.injectors:
                self.injectors.append(node)
        return self

    @property
    def fault_sites(self) -> List[Any]:
        """Every site's choice state (objects with ``coverage_sample(now)``)."""
        return list(self.injectors) + self.gate.site_states

    def bind_strategy(self, strategy: Any) -> None:
        self._strategy = strategy
        self.gate.bind_strategy(strategy)
        if self.environment is not None:
            self.environment.bind_strategy(strategy)
        # Injectors are nodes: the tester binds them directly through the
        # system's node list; binding here too keeps standalone use (no
        # tester) working.
        for injector in self.injectors:
            injector.bind_strategy(strategy)

    def reset(self) -> None:
        self.gate.reset()
        if self.environment is not None:
            self.environment.reset()

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    # The plane has no ``delta_version``, so snapshotters treat it as
    # always-dirty; the capture is small (gate clock + window decisions +
    # the inner environment's own compact state).  Injectors are nodes —
    # their state is covered by the per-node snapshot components.
    def capture_delta_state(self) -> Any:
        inner: Any = None
        if self.environment is not None:
            hook = getattr(self.environment, "capture_delta_state", None)
            if hook is None:
                raise TypeError(
                    "FaultPlane delta snapshots need an inner environment "
                    "with capture_delta_state/restore_delta_state hooks"
                )
            inner = hook()
        return self.gate.capture_delta_state(), inner

    def restore_delta_state(self, state: Any) -> None:
        gate_state, inner = state
        self.gate.restore_delta_state(gate_state)
        if self.environment is not None:
            self.environment.restore_delta_state(inner)

    def apply(self, engine: Any, upcoming_time: float) -> None:
        board = engine.board
        if getattr(board, "_gate", None) is not self.gate:
            self.gate.install(board)
        self.gate.advance(upcoming_time)
        if self.environment is not None:
            self.environment.apply(engine, upcoming_time)
