"""Fault injection for untrusted components.

Section V of the paper evaluates SOTER "in the presence of bugs introduced
using fault injection in the advanced controller" and with bugs injected
into the third-party RRT* planner.  The :class:`FaultInjector` wraps any
node and perturbs its outputs according to a :class:`FaultSpec`, without
the wrapped node being aware of it — exactly the situation the RTA module
must tolerate.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from ..core.errors import NodeError
from ..core.node import Node
from ..dynamics import ControlCommand
from ..geometry import Vec3


class FaultKind(enum.Enum):
    """Supported output fault classes."""

    DROP = "drop"          # the output is silently not published
    STUCK = "stuck"        # the last published value is repeated forever
    BIAS = "bias"          # a constant offset is added (control commands only)
    NOISE = "noise"        # random perturbation is added (control commands only)
    INVERT = "invert"      # the commanded acceleration is negated (control commands only)


@dataclass
class FaultSpec:
    """When and how a fault manifests."""

    kind: FaultKind
    probability: float = 1.0
    magnitude: float = 1.0
    start_time: float = 0.0
    end_time: float = float("inf")
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")
        if self.end_time < self.start_time:
            raise ValueError("fault window must have end_time >= start_time")


class FaultInjector(Node):
    """Wraps a node and injects faults into its published outputs.

    The injector preserves the wrapped node's interface (same name is NOT
    reused — the injector gets ``<name>.faulty`` so traces can tell them
    apart; subscriptions, publications, and period are identical, which
    keeps well-formedness property P1 intact when the injector replaces
    the AC inside an RTA module).
    """

    def __init__(self, inner: Node, spec: FaultSpec, rename: Optional[str] = None) -> None:
        super().__init__(
            name=rename or f"{inner.name}.faulty",
            subscribes=inner.subscribes,
            publishes=inner.publishes,
            period=inner.period,
            offset=inner.offset,
        )
        self.inner = inner
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._last_outputs: dict[str, Any] = {}
        self.injected_faults = 0

    def reset(self) -> None:
        self.inner.reset()
        self._rng = random.Random(self.spec.seed)
        self._last_outputs = {}
        self.injected_faults = 0

    def _active(self, now: float) -> bool:
        if not self.spec.start_time <= now <= self.spec.end_time:
            return False
        return self._rng.random() < self.spec.probability

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        outputs = dict(self.inner.step(now, inputs) or {})
        if not self._active(now):
            self._last_outputs = dict(outputs)
            return outputs
        self.injected_faults += 1
        if self.spec.kind is FaultKind.DROP:
            return {}
        if self.spec.kind is FaultKind.STUCK:
            return dict(self._last_outputs)
        corrupted = {name: self._corrupt(value) for name, value in outputs.items()}
        self._last_outputs = dict(corrupted)
        return corrupted

    def _corrupt(self, value: Any) -> Any:
        """Apply the value-level fault; only control commands are perturbed."""
        if not isinstance(value, ControlCommand):
            return value
        if self.spec.kind is FaultKind.BIAS:
            offset = Vec3(self.spec.magnitude, 0.0, 0.0)
            return ControlCommand(acceleration=value.acceleration + offset, yaw_rate=value.yaw_rate)
        if self.spec.kind is FaultKind.NOISE:
            noise = Vec3(
                self._rng.uniform(-self.spec.magnitude, self.spec.magnitude),
                self._rng.uniform(-self.spec.magnitude, self.spec.magnitude),
                self._rng.uniform(-self.spec.magnitude, self.spec.magnitude) * 0.2,
            )
            return ControlCommand(acceleration=value.acceleration + noise, yaw_rate=value.yaw_rate)
        if self.spec.kind is FaultKind.INVERT:
            return ControlCommand(acceleration=-value.acceleration, yaw_rate=value.yaw_rate)
        raise NodeError(f"unsupported fault kind {self.spec.kind}")
