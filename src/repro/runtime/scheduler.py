"""Scheduling policies: how close the runtime keeps to the nominal calendar.

The paper's generated C runtime drives the periodic nodes with OS timers
and observes (Section V-D) that all 34 crashes in the 104-hour campaign
happened because the safe controller "was not scheduled in time" after the
decision module switched — a scheduling effect, not a logic error — and
that running on a real-time OS would remove them.  These policies let the
reproduction span that spectrum:

* :class:`PerfectScheduler` — an idealised real-time OS: every firing is
  released exactly on time;
* :class:`JitteryOSScheduler` — OS timers under load: release jitter and
  occasional dropped activations;
* :class:`OverloadScheduler` — a pathological policy that starves selected
  nodes, used in fault-injection tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..core.errors import SchedulingError
from ..core.node import Node


class PerfectScheduler:
    """Idealised real-time scheduling: no jitter, no dropped activations."""

    def release_jitter(self, node: Node, nominal_time: float) -> float:
        return 0.0

    def drops_execution(self, node: Node, nominal_time: float) -> bool:
        return False


@dataclass
class JitteryOSScheduler:
    """Best-effort OS-timer scheduling with bounded jitter and rare drops.

    ``max_jitter`` bounds the release delay of every firing; ``drop_rate``
    is the probability that a given activation is missed entirely (e.g.
    because the process was preempted past the next activation).  Both
    default to values small enough that the system usually behaves well —
    matching the paper's observation that crashes were rare (34 over 104
    hours) but real.
    """

    max_jitter: float = 0.02
    drop_rate: float = 0.002
    seed: int = 0
    only_nodes: Optional[Sequence[str]] = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_jitter < 0.0:
            raise SchedulingError("max_jitter must be non-negative")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise SchedulingError("drop_rate must be a probability")
        self._rng = random.Random(self.seed)

    def reset(self) -> None:
        """Re-seed the jitter/drop stream from the construction seed (Resettable)."""
        self._rng = random.Random(self.seed)

    def _affects(self, node: Node) -> bool:
        return self.only_nodes is None or node.name in self.only_nodes

    def release_jitter(self, node: Node, nominal_time: float) -> float:
        if not self._affects(node):
            return 0.0
        return self._rng.uniform(0.0, self.max_jitter)

    def drops_execution(self, node: Node, nominal_time: float) -> bool:
        if not self._affects(node):
            return False
        return self._rng.random() < self.drop_rate


@dataclass
class OverloadScheduler:
    """Starves the listed nodes inside a time window (for fault-injection tests)."""

    starved_nodes: Sequence[str]
    start_time: float = 0.0
    end_time: float = float("inf")

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise SchedulingError("the overload window must have end_time >= start_time")

    def release_jitter(self, node: Node, nominal_time: float) -> float:
        return 0.0

    def drops_execution(self, node: Node, nominal_time: float) -> bool:
        if node.name not in self.starved_nodes:
            return False
        return self.start_time <= nominal_time <= self.end_time
