"""Builders for the three RTA modules of the drone surveillance stack (Figure 8).

* **Safe motion primitive** (Section V-A): the untrusted tracker is paired
  with a FaSTrack-style certified tracker; φ_safe is "the drone is clear
  of obstacles", φ_safer is the complement of the 2Δ backward reachable
  set of the obstacles, and ttf_2Δ comes from worst-case reachability of
  the bounded-dynamics plant.
* **Battery safety** (Section V-B): the advanced controller forwards the
  motion plan, the safe controller lands the drone; φ_safe is ``bt > 0``,
  φ_safer is ``bt > 85 %``, and ttf_2Δ is ``bt - cost* < T_max``.
* **Safe motion planner** (Section V-C): the untrusted (possibly
  bug-injected) RRT* planner is paired with a certified grid planner;
  φ_safe/φ_safer require the published plan to keep clearance from every
  obstacle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..control import MotionPrimitiveNode, SafeWaypointTracker, WaypointTracker
from ..core.module import ModuleCertificate, RTAModuleSpec
from ..core.node import Node
from ..core.specs import SafetySpec
from ..dynamics import BatteryModel, BatteryState, DroneState, DynamicsModel
from ..geometry import Vec3, Workspace
from ..planning import PlanValidator
from ..planning.faulty import Planner
from ..reachability import (
    SampledControllerReachability,
    StateSampler,
    WorstCaseReachability,
    states_as_arrays,
    synthesize_safe_tracker,
)
from ..simulation.drone import BatteryStatus
from .nodes import PlanForwardNode, PlannerNode, SafeLandingPlannerNode
from .topics import (
    ACTIVE_PLAN_TOPIC,
    BATTERY_TOPIC,
    COMMAND_TOPIC,
    GOAL_TOPIC,
    MOTION_PLAN_TOPIC,
    POSITION_TOPIC,
)


# --------------------------------------------------------------------------- #
# safe motion primitive module (Section V-A)
# --------------------------------------------------------------------------- #
@dataclass
class MotionPrimitiveModuleConfig:
    """Tunables of the RTA-protected motion primitive.

    ``use_query_cache`` routes every clearance threshold check of the
    module (φ_safe, φ_safer, ``ttf_2Δ``, the safe tracker's urgency law)
    through the workspace's shared :class:`~repro.geometry.ClearanceField`.
    Decisions are bit-for-bit identical either way; the flag exists so
    equivalence tests and benchmarks can compare the cached and uncached
    planes.
    """

    delta: float = 0.1
    node_period: float = 0.05
    collision_margin: float = 0.05
    ttf_margin: float = 0.15
    safer_extra_margin: float = 0.5
    safe_speed_fraction: float = 0.3
    plan_topic: str = ACTIVE_PLAN_TOPIC
    position_topic: str = POSITION_TOPIC
    command_topic: str = COMMAND_TOPIC
    use_query_cache: bool = True

    def __post_init__(self) -> None:
        if self.delta <= 0.0 or self.node_period <= 0.0:
            raise ValueError("periods must be positive")
        if self.node_period > self.delta + 1e-12:
            raise ValueError("the controller period must not exceed Δ (property P1a)")


@dataclass
class MotionPrimitiveModule:
    """The built module spec plus the pieces tests and benchmarks reuse."""

    spec: RTAModuleSpec
    advanced_node: MotionPrimitiveNode
    safe_node: MotionPrimitiveNode
    safe_tracker: SafeWaypointTracker
    reachability: WorstCaseReachability
    safer_clearance: float
    config: MotionPrimitiveModuleConfig


def build_safe_motion_primitive(
    workspace: Workspace,
    model: DynamicsModel,
    advanced_tracker: WaypointTracker,
    config: Optional[MotionPrimitiveModuleConfig] = None,
    name: str = "SafeMotionPrimitive",
) -> MotionPrimitiveModule:
    """Construct the RTA-protected motion primitive of Section V-A."""
    config = config or MotionPrimitiveModuleConfig()
    reach = WorstCaseReachability(model)
    two_delta = 2.0 * config.delta
    tracker_params, certificate = synthesize_safe_tracker(
        model, workspace, safe_speed_fraction=config.safe_speed_fraction
    )
    # φ_safer must satisfy two constraints:
    #  * P3: it lies outside the 2Δ backward reachable set of the obstacles
    #    (clearance above the worst-case travel distance over 2Δ), and
    #  * hysteresis (Remark 3.3): handing control back to the AC must not
    #    immediately re-trigger ttf_2Δ even once the AC accelerates back to
    #    cruise speed, so it also dominates the unavoidable-travel radius at
    #    the plant's maximum speed (R5 strictly inside R4 in Figure 10).
    reach_full = model.max_displacement(model.max_speed, two_delta)
    cruise_state = DroneState(velocity=Vec3(model.max_speed, 0.0, 0.0))
    cruise_radius = (
        reach.unavoidable_travel_radius(cruise_state, two_delta)
        + config.ttf_margin
        + config.collision_margin
    )
    safer_clearance = max(reach_full, cruise_radius) + config.safer_extra_margin

    # The module's clearance threshold checks all go through the shared
    # safety-query plane: the cached ClearanceField answers the common
    # far-from-obstacle case from its memo, the batch predicates let the
    # monitors evaluate whole sample windows in one vectorised call.
    field = workspace.clearance_field() if config.use_query_cache else None

    def _clearance_exceeds(position: Vec3, threshold: float) -> bool:
        if field is not None:
            return field.exceeds(position, threshold)
        return workspace.clearance(position) > threshold

    def _positions(states: Sequence[DroneState]):
        return [s.position.as_tuple() for s in states]

    safe_spec: SafetySpec[DroneState] = SafetySpec(
        name="phi_obs",
        predicate=lambda state: _clearance_exceeds(state.position, config.collision_margin),
        description="the drone is outside every obstacle and inside the workspace",
        batch_predicate=lambda states: workspace.clearance_batch(_positions(states))
        > config.collision_margin,
    )
    safer_spec: SafetySpec[DroneState] = SafetySpec(
        name="phi_obs_safer",
        predicate=lambda state: _clearance_exceeds(state.position, safer_clearance),
        description=f"clearance exceeds the 2Δ worst-case travel distance ({safer_clearance:.2f} m)",
        batch_predicate=lambda states: workspace.clearance_batch(_positions(states))
        > safer_clearance,
    )

    def ttf(state: DroneState) -> bool:
        # Switch while the safe controller can still brake: worst-case travel
        # over 2Δ plus the stopping distance from the speed attainable then
        # (the value-function-style switching surface; see
        # WorstCaseReachability.unavoidable_travel_radius).
        radius = reach.unavoidable_travel_radius(state, two_delta) + config.ttf_margin
        return not _clearance_exceeds(state.position, radius + config.collision_margin)

    safe_tracker = SafeWaypointTracker(
        params=tracker_params,
        workspace=workspace,
        recovery_clearance=safer_clearance + 0.3,
        clearance_field=field,
    )
    advanced_node = MotionPrimitiveNode(
        name=f"{name}.ac",
        tracker=advanced_tracker,
        plan_topic=config.plan_topic,
        position_topic=config.position_topic,
        command_topic=config.command_topic,
        period=config.node_period,
    )
    safe_node = MotionPrimitiveNode(
        name=f"{name}.sc",
        tracker=safe_tracker,
        plan_topic=config.plan_topic,
        position_topic=config.position_topic,
        command_topic=config.command_topic,
        period=config.node_period,
    )
    module_certificate = ModuleCertificate(
        p2a_justification=(
            "FaSTrack-style certificate: the safe tracker caps its speed at "
            f"{tracker_params.max_speed:.2f} m/s, giving a stopping distance of "
            f"{certificate.stopping_distance:.2f} m < its obstacle margin "
            f"{tracker_params.obstacle_margin:.2f} m, so once clear of obstacles it stays clear"
        ),
        p2b_justification=(
            "the safe tracker's repulsion term increases clearance at ≥ "
            f"{certificate.recovery_rate:.2f} m/s until it exceeds the φ_safer threshold "
            f"{safer_clearance:.2f} m"
        ),
        p3_justification=(
            "worst-case displacement over 2Δ is "
            f"{reach_full:.2f} m, strictly below the φ_safer clearance {safer_clearance:.2f} m, "
            "so any controller keeps the drone clear of obstacles for 2Δ"
        ),
    )
    spec = RTAModuleSpec(
        name=name,
        advanced=advanced_node,
        safe=safe_node,
        delta=config.delta,
        safe_spec=safe_spec,
        safer_spec=safer_spec,
        ttf=ttf,
        state_topics=(config.position_topic,),
        certificate=module_certificate,
        description="RTA-protected motion primitive (obstacle avoidance)",
    )
    return MotionPrimitiveModule(
        spec=spec,
        advanced_node=advanced_node,
        safe_node=safe_node,
        safe_tracker=safe_tracker,
        reachability=reach,
        safer_clearance=safer_clearance,
        config=config,
    )


class DroneClosedLoopModel:
    """Closed-loop hooks for the falsification-based well-formedness checks.

    The sampler draws states from the recoverable region (speeds up to the
    advanced controller's envelope, clearance above the safe tracker's
    stopping distance) — mirroring the regions-of-operation discussion of
    Figure 10: P2a/P2b are obligations about the states the DM can actually
    hand to the SC.
    """

    def __init__(
        self,
        module: MotionPrimitiveModule,
        model: DynamicsModel,
        workspace: Workspace,
        seed: int = 0,
        simulation_dt: float = 0.02,
    ) -> None:
        self.module = module
        self.model = model
        self.workspace = workspace
        self.reach = WorstCaseReachability(model)
        self.rollouts = SampledControllerReachability(model, dt=simulation_dt)
        margin = module.safe_tracker.params.obstacle_margin
        self._safe_sampler = StateSampler(
            workspace=workspace,
            max_speed=module.safe_tracker.params.max_speed * 1.5,
            position_margin=margin,
            seed=seed,
        )
        self._safer_sampler = StateSampler(
            workspace=workspace,
            max_speed=module.safe_tracker.params.max_speed,
            position_margin=module.safer_clearance,
            seed=seed + 1,
        )

    # -- sampling -------------------------------------------------------- #
    def sample_safe_state(self) -> DroneState:
        return self._safe_sampler.sample_satisfying(self.module.spec.safe_spec.contains, 1)[0]

    def sample_safer_state(self) -> DroneState:
        return self._safer_sampler.sample_satisfying(self.module.spec.safer_spec.contains, 1)[0]

    def sample_safe_state_batch(self, count: int) -> List[DroneState]:
        """``count`` φ_safe states, drawn from the same stream as repeated
        :meth:`sample_safe_state` calls (the batched checker relies on
        sample-for-sample agreement with the scalar path)."""
        return self._safe_sampler.sample_satisfying(self.module.spec.safe_spec.contains, count)

    def sample_safer_state_batch(self, count: int) -> List[DroneState]:
        """``count`` φ_safer states; stream-identical to the scalar sampler."""
        return self._safer_sampler.sample_satisfying(self.module.spec.safer_spec.contains, count)

    # -- closed-loop rollouts -------------------------------------------- #
    def rollout_under_safe_controller(self, state: DroneState, duration: float) -> Sequence[DroneState]:
        target = state.position

        def controller(current: DroneState, now: float):
            return self.module.safe_tracker.command(current, target, now)

        return self.rollouts.rollout(state, controller, duration)

    def rollout_under_safe_controller_batch(
        self, states: Sequence[DroneState], duration: float
    ) -> List[List[DroneState]]:
        """All N SC rollouts at once through the vectorised query plane.

        Integrates one ``(N, 6)`` structure-of-arrays state matrix through
        :meth:`SafeWaypointTracker.command_batch` and the dynamics model's
        ``step_batch`` — both bit-identical to their scalar laws — so the
        returned per-sample trajectories equal the scalar
        :meth:`rollout_under_safe_controller` state for state.
        """
        tracker = self.module.safe_tracker
        targets = np.array([s.position.as_tuple() for s in states], dtype=float).reshape(-1, 3)

        def controller_batch(positions: np.ndarray, velocities: np.ndarray, now: float) -> np.ndarray:
            return tracker.command_batch(positions, velocities, targets, now)

        position_history, velocity_history = self.rollouts.rollout_batch(
            states, controller_batch, duration
        )
        # One C-level conversion to Python floats, then plain constructor
        # calls — materialising N×T states this way is ~3x cheaper than
        # indexing numpy scalars row by row.
        positions = position_history.transpose(1, 0, 2).tolist()  # (N, T+1, 3)
        velocities = velocity_history.transpose(1, 0, 2).tolist()
        return [
            [
                DroneState(position=Vec3(px, py, pz), velocity=Vec3(vx, vy, vz))
                for (px, py, pz), (vx, vy, vz) in zip(sample_positions, sample_velocities)
            ]
            for sample_positions, sample_velocities in zip(positions, velocities)
        ]

    def _rollout_positions_batch(
        self, states: Sequence[DroneState], duration: float
    ) -> np.ndarray:
        """Roll all N samples out and return the raw ``(T+1, N, 3)`` positions."""
        tracker = self.module.safe_tracker
        targets = np.array([s.position.as_tuple() for s in states], dtype=float).reshape(-1, 3)

        def controller_batch(positions: np.ndarray, velocities: np.ndarray, now: float) -> np.ndarray:
            return tracker.command_batch(positions, velocities, targets, now)

        position_history, _ = self.rollouts.rollout_batch(states, controller_batch, duration)
        return position_history

    def rollout_safe_flags_batch(self, count: int, duration: float):
        """Draw ``count`` φ_safe starts, roll them out, verdict φ_safe per state.

        The whole pass stays in structure-of-arrays form: one state matrix
        through the batched SC law and dynamics, then a single
        ``clearance_batch`` over every visited position.  The flags equal
        mapping ``spec.safe_spec.contains`` over the scalar rollouts —
        both reduce to the same ``clearance > collision_margin``
        comparison on the same (bit-identical) trajectories.
        """
        starts = self.sample_safe_state_batch(count)
        positions = self._rollout_positions_batch(starts, duration)
        steps, samples, _ = positions.shape
        clearances = self.workspace.clearance_batch(positions.reshape(-1, 3))
        flags = (clearances > self.module.config.collision_margin).reshape(steps, samples)
        return starts, flags.T  # (N, T+1)

    def rollout_safer_flags_batch(self, count: int, duration: float):
        """Like :meth:`rollout_safe_flags_batch` but with φ_safer verdicts
        (clearance above the module's φ_safer threshold) — the P2b plane."""
        starts = self.sample_safe_state_batch(count)
        positions = self._rollout_positions_batch(starts, duration)
        steps, samples, _ = positions.shape
        clearances = self.workspace.clearance_batch(positions.reshape(-1, 3))
        flags = (clearances > self.module.safer_clearance).reshape(steps, samples)
        return starts, flags.T

    def worst_case_stays_safe(self, state: DroneState, horizon: float) -> bool:
        return not self.reach.may_leave_safe(
            state, self.workspace, horizon, margin=self.module.config.collision_margin
        )

    def worst_case_stays_safe_batch(self, states: Sequence[DroneState], horizon: float):
        """Vectorised :meth:`worst_case_stays_safe` — one reachability query for N states."""
        positions, speeds = states_as_arrays(states)
        return ~self.reach.may_leave_safe_batch(
            positions, speeds, self.workspace, horizon, margin=self.module.config.collision_margin
        )


# --------------------------------------------------------------------------- #
# battery-safety module (Section V-B)
# --------------------------------------------------------------------------- #
@dataclass
class BatteryModuleConfig:
    """Tunables of the battery-safety RTA module.

    The topic fields default to the single-drone names; a multi-vehicle
    composition passes its vehicle namespace's names instead so every
    fleet member carries its own battery plane.
    """

    delta: float = 1.0
    node_period: float = 0.2
    safer_charge: float = 0.85
    motion_plan_topic: str = MOTION_PLAN_TOPIC
    active_plan_topic: str = ACTIVE_PLAN_TOPIC
    position_topic: str = POSITION_TOPIC
    battery_topic: str = BATTERY_TOPIC

    def __post_init__(self) -> None:
        if self.delta <= 0.0 or self.node_period <= 0.0:
            raise ValueError("periods must be positive")
        if self.node_period > self.delta + 1e-12:
            raise ValueError("the controller period must not exceed Δ (property P1a)")
        if not 0.0 < self.safer_charge < 1.0:
            raise ValueError("safer_charge must lie strictly between 0 and 1")


@dataclass
class BatteryModule:
    """The built battery module plus its component nodes."""

    spec: RTAModuleSpec
    forward_node: PlanForwardNode
    landing_node: SafeLandingPlannerNode
    battery_model: BatteryModel
    config: BatteryModuleConfig


def build_battery_safety(
    battery_model: Optional[BatteryModel] = None,
    config: Optional[BatteryModuleConfig] = None,
    name: str = "BatterySafety",
) -> BatteryModule:
    """Construct the battery-safety RTA module of Section V-B."""
    config = config or BatteryModuleConfig()
    battery_model = battery_model or BatteryModel()
    forward = PlanForwardNode(
        name=f"{name}.ac",
        period=config.node_period,
        input_topic=config.motion_plan_topic,
        output_topic=config.active_plan_topic,
    )
    landing = SafeLandingPlannerNode(
        name=f"{name}.sc",
        period=config.node_period,
        position_topic=config.position_topic,
        battery_topic=config.battery_topic,
        output_topic=config.active_plan_topic,
    )

    safe_spec: SafetySpec[BatteryStatus] = SafetySpec(
        name="phi_bat",
        predicate=lambda status: status.charge > 0.0 or status.altitude <= 0.2,
        description="the drone never runs out of charge while airborne",
    )
    safer_spec: SafetySpec[BatteryStatus] = SafetySpec(
        name="phi_bat_safer",
        predicate=lambda status: status.charge > config.safer_charge,
        description=f"the battery holds more than {config.safer_charge:.0%} charge",
    )
    two_delta = 2.0 * config.delta

    def ttf(status: BatteryStatus) -> bool:
        # T_max is the paper's conservative, offline bound: the charge needed
        # to land from the maximum altitude the mission allows (not from the
        # current altitude), so the check never under-estimates the reserve.
        return battery_model.time_to_failure_exceeded(
            BatteryState(charge=status.charge), two_delta, altitude=None
        )

    certificate = ModuleCertificate(
        p2a_justification=(
            "the safe-landing planner descends at a bounded rate; by construction of T_max the "
            "remaining charge when it engages suffices to reach the ground, so bt never hits 0 in the air"
        ),
        p2b_justification=(
            "φ_safer (bt > 85 %) is only re-entered if the mission starts with a charged battery; "
            "the module therefore stays in SC after a low-battery abort, which is the intended "
            "mission-abort behaviour of the paper"
        ),
        p3_justification=(
            "the worst-case discharge over 2Δ is cost*; ttf_2Δ switches while bt - cost* ≥ T_max, so "
            "from φ_safer (bt > 85 %) no controller can deplete the battery within 2Δ"
        ),
    )
    spec = RTAModuleSpec(
        name=name,
        advanced=forward,
        safe=landing,
        delta=config.delta,
        safe_spec=safe_spec,
        safer_spec=safer_spec,
        ttf=ttf,
        state_topics=(config.battery_topic,),
        certificate=certificate,
        description="RTA-protected battery safety (safe landing on low charge)",
    )
    return BatteryModule(
        spec=spec,
        forward_node=forward,
        landing_node=landing,
        battery_model=battery_model,
        config=config,
    )


# --------------------------------------------------------------------------- #
# safe motion planner module (Section V-C)
# --------------------------------------------------------------------------- #
@dataclass
class PlannerModuleConfig:
    """Tunables of the RTA-protected motion planner."""

    delta: float = 0.5
    node_period: float = 0.5
    plan_clearance: float = 0.8
    goal_topic: str = GOAL_TOPIC
    position_topic: str = POSITION_TOPIC
    plan_topic: str = MOTION_PLAN_TOPIC

    def __post_init__(self) -> None:
        if self.delta <= 0.0 or self.node_period <= 0.0:
            raise ValueError("periods must be positive")
        if self.node_period > self.delta + 1e-12:
            raise ValueError("the planner period must not exceed Δ (property P1a)")
        if self.plan_clearance < 0.0:
            raise ValueError("plan_clearance must be non-negative")


@dataclass
class PlannerModule:
    """The built planner module plus its component nodes."""

    spec: RTAModuleSpec
    advanced_node: PlannerNode
    safe_node: PlannerNode
    validator: PlanValidator
    config: PlannerModuleConfig


def build_safe_motion_planner(
    workspace: Workspace,
    advanced_planner: Planner,
    certified_planner: Planner,
    config: Optional[PlannerModuleConfig] = None,
    name: str = "SafeMotionPlanner",
) -> PlannerModule:
    """Construct the RTA-protected motion planner of Section V-C."""
    config = config or PlannerModuleConfig()
    validator = PlanValidator(workspace, clearance=config.plan_clearance)
    advanced_node = PlannerNode(
        name=f"{name}.ac",
        planner=advanced_planner,
        period=config.node_period,
        output_topic=config.plan_topic,
        goal_topic=config.goal_topic,
        position_topic=config.position_topic,
    )
    safe_node = PlannerNode(
        name=f"{name}.sc",
        planner=certified_planner,
        period=config.node_period,
        output_topic=config.plan_topic,
        goal_topic=config.goal_topic,
        position_topic=config.position_topic,
    )
    safe_spec = SafetySpec(
        name="phi_plan",
        predicate=validator.is_valid,
        description="the published motion plan keeps clearance from every obstacle",
    )
    safer_spec = SafetySpec(
        name="phi_plan_safer",
        predicate=validator.is_valid,
        description="a collision-free plan is available, so the advanced planner may be retried",
    )

    def ttf(plan) -> bool:
        return not validator.is_valid(plan)

    certificate = ModuleCertificate(
        p2a_justification=(
            "the certified grid planner only returns plans validated against the inflated occupancy "
            "grid, so while it is in control the published plan always satisfies φ_plan"
        ),
        p2b_justification=(
            "the certified planner produces a valid plan within one period whenever one exists, which "
            "re-establishes φ_safer immediately"
        ),
        p3_justification=(
            "plans are data, not dynamics: a valid plan stays valid in a static workspace for any 2Δ, "
            "and an invalid plan published by the advanced planner is replaced after at most Δ while the "
            "motion-primitive module independently protects the drone (compositional argument, Thm 4.1)"
        ),
    )
    spec = RTAModuleSpec(
        name=name,
        advanced=advanced_node,
        safe=safe_node,
        delta=config.delta,
        safe_spec=safe_spec,
        safer_spec=safer_spec,
        ttf=ttf,
        state_topics=(config.plan_topic,),
        certificate=certificate,
        description="RTA-protected motion planner (plan-level collision avoidance)",
    )
    return PlannerModule(
        spec=spec,
        advanced_node=advanced_node,
        safe_node=safe_node,
        validator=validator,
        config=config,
    )
