"""Topic names and declarations of the drone surveillance software stack.

The stack of Figure 3 / Figure 8 uses a small set of topics; declaring
them in one place keeps the node wiring consistent and gives the compiler
typed declarations to validate against.
"""

from __future__ import annotations

from typing import List

from ..core.topics import Topic
from ..dynamics import ControlCommand, DroneState
from ..geometry import Vec3
from ..planning import Plan
from ..simulation.drone import BatteryStatus

#: Estimated drone state published by the (trusted) state estimator.
POSITION_TOPIC = "localPosition"
#: Battery sensor reading (state of charge + altitude).
BATTERY_TOPIC = "batteryStatus"
#: Next surveillance goal chosen by the application layer.
GOAL_TOPIC = "surveillanceGoal"
#: Motion plan produced by the (RTA-protected) motion planner.
MOTION_PLAN_TOPIC = "motionPlan"
#: Plan actually handed to the motion primitives (battery module output).
ACTIVE_PLAN_TOPIC = "activePlan"
#: Low-level control command produced by the motion-primitive module.
COMMAND_TOPIC = "controlCommand"


def standard_topics() -> List[Topic]:
    """The typed topic declarations of the surveillance stack."""
    return [
        Topic(POSITION_TOPIC, DroneState, description="estimated drone state"),
        Topic(BATTERY_TOPIC, BatteryStatus, description="battery charge and altitude"),
        Topic(GOAL_TOPIC, Vec3, description="next surveillance goal"),
        Topic(MOTION_PLAN_TOPIC, Plan, description="motion plan toward the goal"),
        Topic(ACTIVE_PLAN_TOPIC, Plan, description="plan forwarded to the motion primitives"),
        Topic(COMMAND_TOPIC, ControlCommand, description="low-level control command"),
    ]
