"""Topic names and declarations of the drone surveillance software stack.

The stack of Figure 3 / Figure 8 uses a small set of topics; declaring
them in one place keeps the node wiring consistent and gives the compiler
typed declarations to validate against.

Multi-vehicle namespaces
------------------------
To compose several protected stacks in one shared airspace every vehicle
gets its own copy of the topic plane.  A :class:`TopicNamespace` maps the
base names below to per-vehicle names by prefixing a vehicle tag
(``drone0/localPosition``, ``drone1/localPosition``, …); node and module
names are prefixed the same way, which is what keeps the composed system's
node names unique and its module outputs disjoint (Section IV's
composability conditions).  The empty prefix is the identity: a
single-vehicle stack built through the default namespace is exactly the
original surveillance stack, name for name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.topics import Topic
from ..dynamics import ControlCommand, DroneState
from ..geometry import Vec3
from ..planning import Plan
from ..simulation.drone import BatteryStatus

#: Estimated drone state published by the (trusted) state estimator.
POSITION_TOPIC = "localPosition"
#: Battery sensor reading (state of charge + altitude).
BATTERY_TOPIC = "batteryStatus"
#: Next surveillance goal chosen by the application layer.
GOAL_TOPIC = "surveillanceGoal"
#: Motion plan produced by the (RTA-protected) motion planner.
MOTION_PLAN_TOPIC = "motionPlan"
#: Plan actually handed to the motion primitives (battery module output).
ACTIVE_PLAN_TOPIC = "activePlan"
#: Low-level control command produced by the motion-primitive module.
COMMAND_TOPIC = "controlCommand"


@dataclass(frozen=True)
class TopicNamespace:
    """A per-vehicle prefix over the stack's topic, node and monitor names."""

    prefix: str = ""

    # -- name mapping ---------------------------------------------------- #
    def scoped(self, base: str) -> str:
        """``base`` under this namespace (topic, node, or monitor name)."""
        return f"{self.prefix}{base}"

    # -- the six stack topics -------------------------------------------- #
    @property
    def position(self) -> str:
        return self.scoped(POSITION_TOPIC)

    @property
    def battery(self) -> str:
        return self.scoped(BATTERY_TOPIC)

    @property
    def goal(self) -> str:
        return self.scoped(GOAL_TOPIC)

    @property
    def motion_plan(self) -> str:
        return self.scoped(MOTION_PLAN_TOPIC)

    @property
    def active_plan(self) -> str:
        return self.scoped(ACTIVE_PLAN_TOPIC)

    @property
    def command(self) -> str:
        return self.scoped(COMMAND_TOPIC)

    def topics(self) -> List[Topic]:
        """The typed topic declarations of this vehicle's stack."""
        return [
            Topic(self.position, DroneState, description="estimated drone state"),
            Topic(self.battery, BatteryStatus, description="battery charge and altitude"),
            Topic(self.goal, Vec3, description="next surveillance goal"),
            Topic(self.motion_plan, Plan, description="motion plan toward the goal"),
            Topic(self.active_plan, Plan, description="plan forwarded to the motion primitives"),
            Topic(self.command, ControlCommand, description="low-level control command"),
        ]


#: The identity namespace of the original single-drone stack.
DEFAULT_NAMESPACE = TopicNamespace()


def vehicle_namespace(index: int, fleet_size: int = 2) -> TopicNamespace:
    """The namespace convention for vehicle ``index`` of an N-vehicle fleet.

    A fleet of one *is* the plain stack: it keeps the default (empty)
    namespace, so N=1 compositions are bit-identical to the original
    single-drone program.  Larger fleets tag every vehicle, including the
    first, as ``drone<i>/``.
    """
    if index < 0 or fleet_size < 1 or index >= fleet_size:
        raise ValueError(f"vehicle index {index} out of range for a fleet of {fleet_size}")
    if fleet_size == 1:
        return DEFAULT_NAMESPACE
    return TopicNamespace(prefix=f"drone{index}/")


def standard_topics() -> List[Topic]:
    """The typed topic declarations of the (single-drone) surveillance stack."""
    return DEFAULT_NAMESPACE.topics()
