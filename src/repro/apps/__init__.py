"""The drone surveillance case study built on the SOTER public API."""

from .metrics import CampaignMetrics, MissionMetrics, metrics_from_result
from .modules import (
    BatteryModule,
    BatteryModuleConfig,
    DroneClosedLoopModel,
    MotionPrimitiveModule,
    MotionPrimitiveModuleConfig,
    PlannerModule,
    PlannerModuleConfig,
    build_battery_safety,
    build_safe_motion_planner,
    build_safe_motion_primitive,
)
from .nodes import (
    PlanForwardNode,
    PlannerNode,
    SafeLandingPlannerNode,
    StraightLinePlanner,
    SurveillanceNode,
)
from .stack import (
    BuiltStack,
    DiscreteModel,
    StackConfig,
    build_discrete_model,
    build_stack,
    run_mission,
)
from .topics import (
    ACTIVE_PLAN_TOPIC,
    BATTERY_TOPIC,
    COMMAND_TOPIC,
    GOAL_TOPIC,
    MOTION_PLAN_TOPIC,
    POSITION_TOPIC,
    standard_topics,
)

__all__ = [
    "CampaignMetrics",
    "MissionMetrics",
    "metrics_from_result",
    "BatteryModule",
    "BatteryModuleConfig",
    "DroneClosedLoopModel",
    "MotionPrimitiveModule",
    "MotionPrimitiveModuleConfig",
    "PlannerModule",
    "PlannerModuleConfig",
    "build_battery_safety",
    "build_safe_motion_planner",
    "build_safe_motion_primitive",
    "PlanForwardNode",
    "PlannerNode",
    "SafeLandingPlannerNode",
    "StraightLinePlanner",
    "SurveillanceNode",
    "BuiltStack",
    "DiscreteModel",
    "StackConfig",
    "build_discrete_model",
    "build_stack",
    "run_mission",
    "ACTIVE_PLAN_TOPIC",
    "BATTERY_TOPIC",
    "COMMAND_TOPIC",
    "GOAL_TOPIC",
    "MOTION_PLAN_TOPIC",
    "POSITION_TOPIC",
    "standard_topics",
]
