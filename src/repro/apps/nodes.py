"""Application-level SOTER nodes of the drone surveillance case study.

These are the nodes of Figure 3 / Figure 8 in the paper that are *not*
low-level controllers: the surveillance application layer, the motion
planner nodes (advanced and certified), and the two battery-module nodes
(the plan-forwarding relay and the safe-landing planner).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence

from ..core.node import Node
from ..dynamics import DroneState
from ..geometry import Vec3, Workspace
from ..planning import Plan, landing_plan, straight_line_plan
from ..planning.faulty import Planner
from .topics import (
    ACTIVE_PLAN_TOPIC,
    BATTERY_TOPIC,
    GOAL_TOPIC,
    MOTION_PLAN_TOPIC,
    POSITION_TOPIC,
)


@dataclass
class StraightLinePlanner:
    """The trivial planner: fly straight at the goal (used for the g1..g4 missions)."""

    altitude: float = 2.0
    name: str = "straight-line"

    def plan(self, start: Vec3, goal: Vec3, created_at: float = 0.0) -> Optional[Plan]:
        return straight_line_plan(
            start.with_z(self.altitude), goal.with_z(self.altitude), planner=self.name, created_at=created_at
        )


class SurveillanceNode(Node):
    """The application layer: emits the next surveillance goal (Figure 3).

    The node walks through a goal sequence (optionally looping, optionally
    extending it with random goals), advancing whenever the drone reaches
    the current goal.  It implements the paper's application-level
    property informally: every surveillance point is eventually visited —
    and records how many visits happened so the mission metrics can report
    it.
    """

    def __init__(
        self,
        goals: Sequence[Vec3],
        workspace: Optional[Workspace] = None,
        name: str = "surveillance",
        period: float = 0.5,
        goal_tolerance: float = 1.2,
        loop: bool = True,
        random_goals: int = 0,
        altitude: float = 2.0,
        goal_margin: float = 3.0,
        seed: int = 0,
        position_topic: str = POSITION_TOPIC,
        goal_topic: str = GOAL_TOPIC,
    ) -> None:
        super().__init__(
            name=name,
            subscribes=(position_topic,),
            publishes=(goal_topic,),
            period=period,
        )
        self.position_topic = position_topic
        self.goal_topic = goal_topic
        if not goals and random_goals == 0:
            raise ValueError("the surveillance node needs goals (fixed or random)")
        if goal_tolerance <= 0.0:
            raise ValueError("goal_tolerance must be positive")
        self._initial_goals = list(goals)
        self.workspace = workspace
        self.goal_tolerance = goal_tolerance
        self.loop = loop
        self.random_goals = random_goals
        self.altitude = altitude
        self.goal_margin = goal_margin
        self.seed = seed
        self.reset()

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self.goals: List[Vec3] = list(self._initial_goals)
        for _ in range(self.random_goals):
            self.goals.append(self._random_goal())
        self.index = 0
        self.goals_visited = 0
        self.mission_complete = False

    def _random_goal(self) -> Vec3:
        if self.workspace is None:
            raise ValueError("random goals require a workspace")
        return self.workspace.random_free_point(
            self._rng, margin=self.goal_margin, altitude_range=(self.altitude, self.altitude)
        )

    # Delta-snapshot hooks (see repro.core.resettable): the RNG state and
    # goal tuples are immutable values, so references are already copies.
    def capture_delta_state(self) -> tuple:
        return (
            self._rng.getstate(),
            tuple(self.goals),
            self.index,
            self.goals_visited,
            self.mission_complete,
        )

    def restore_delta_state(self, state: tuple) -> None:
        rng_state, goals, index, visited, complete = state
        self._rng.setstate(rng_state)
        self.goals = list(goals)
        self.index = index
        self.goals_visited = visited
        self.mission_complete = complete

    @property
    def current_goal(self) -> Optional[Vec3]:
        if self.mission_complete:
            return None
        return self.goals[self.index]

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        state = inputs.get(self.position_topic)
        goal = self.current_goal
        if goal is None:
            return {}
        if isinstance(state, DroneState) and state.position.distance_to(goal) <= self.goal_tolerance:
            self.goals_visited += 1
            self.index += 1
            if self.index >= len(self.goals):
                if self.loop:
                    self.index = 0
                else:
                    self.mission_complete = True
                    return {}
            goal = self.goals[self.index]
        return {self.goal_topic: goal}


class PlannerNode(Node):
    """A motion-planner node wrapping any planner implementation.

    Used both for the untrusted advanced planner (RRT*, possibly
    fault-injected) and for the certified safe planner (grid A*): the two
    instances differ only in the wrapped planner object and their names,
    which keeps the RTA module's P1b property satisfied by construction.
    """

    def __init__(
        self,
        name: str,
        planner: Planner,
        period: float = 0.5,
        replan_distance: float = 0.5,
        replan_interval: float = 3.0,
        output_topic: str = MOTION_PLAN_TOPIC,
        goal_topic: str = GOAL_TOPIC,
        position_topic: str = POSITION_TOPIC,
    ) -> None:
        super().__init__(
            name=name,
            subscribes=(goal_topic, position_topic),
            publishes=(output_topic,),
            period=period,
        )
        self.goal_topic = goal_topic
        self.position_topic = position_topic
        if replan_interval <= 0.0:
            raise ValueError("replan_interval must be positive")
        self.planner = planner
        self.replan_distance = replan_distance
        # Receding-horizon refresh: even with an unchanged goal the planner
        # re-queries periodically from the drone's current position, as a
        # sampling-based planner deployed on a moving robot would.
        self.replan_interval = replan_interval
        self.output_topic = output_topic
        self.reset()

    def reset(self) -> None:
        self._current_goal: Optional[Vec3] = None
        self._current_plan: Optional[Plan] = None
        self.plans_produced = 0
        self.failed_queries = 0

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        goal = inputs.get(self.goal_topic)
        state = inputs.get(self.position_topic)
        if not isinstance(goal, Vec3) or not isinstance(state, DroneState):
            return {}
        if self._needs_replan(goal, now):
            plan = self.planner.plan(state.position, goal, created_at=now)
            if plan is None:
                self.failed_queries += 1
            else:
                self.plans_produced += 1
                self._current_plan = plan
                self._current_goal = goal
        if self._current_plan is None:
            return {}
        return {self.output_topic: self._current_plan}

    def _needs_replan(self, goal: Vec3, now: float) -> bool:
        if self._current_plan is None or self._current_goal is None:
            return True
        if self._current_goal.distance_to(goal) > self.replan_distance:
            return True
        return (now - self._current_plan.created_at) >= self.replan_interval

    # Delta-snapshot hooks: goals and plans are immutable values.
    def capture_delta_state(self) -> tuple:
        return (
            self._current_goal,
            self._current_plan,
            self.plans_produced,
            self.failed_queries,
        )

    def restore_delta_state(self, state: tuple) -> None:
        (
            self._current_goal,
            self._current_plan,
            self.plans_produced,
            self.failed_queries,
        ) = state


class PlanForwardNode(Node):
    """The battery module's advanced controller: forwards the motion plan unchanged.

    (Section V-B: "N_ac is a node that receives the current motion plan
    from the planner and simply forwards it to the motion primitives
    module.")
    """

    def __init__(
        self,
        name: str = "batteryForward",
        period: float = 0.2,
        input_topic: str = MOTION_PLAN_TOPIC,
        output_topic: str = ACTIVE_PLAN_TOPIC,
    ) -> None:
        super().__init__(
            name=name,
            subscribes=(input_topic,),
            publishes=(output_topic,),
            period=period,
        )
        self.input_topic = input_topic
        self.output_topic = output_topic

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        plan = inputs.get(self.input_topic)
        if not isinstance(plan, Plan):
            return {}
        return {self.output_topic: plan}


class SafeLandingPlannerNode(Node):
    """The battery module's safe controller: a certified planner that lands the drone.

    While disabled it keeps an up-to-date landing plan from the drone's
    current position; once the battery DM engages it, that plan becomes
    the active plan and the motion primitives descend and land.
    """

    def __init__(
        self,
        name: str = "batterySafeLanding",
        period: float = 0.2,
        refresh_distance: float = 1.5,
        position_topic: str = POSITION_TOPIC,
        battery_topic: str = BATTERY_TOPIC,
        output_topic: str = ACTIVE_PLAN_TOPIC,
    ) -> None:
        super().__init__(
            name=name,
            subscribes=(position_topic, battery_topic),
            publishes=(output_topic,),
            period=period,
        )
        self.refresh_distance = refresh_distance
        self.position_topic = position_topic
        self.output_topic = output_topic
        self.reset()

    def reset(self) -> None:
        self._plan: Optional[Plan] = None

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        state = inputs.get(self.position_topic)
        if not isinstance(state, DroneState):
            return {}
        if self._plan is None or self._stale(state):
            self._plan = landing_plan(state.position, created_at=now)
        return {self.output_topic: self._plan}

    def _stale(self, state: DroneState) -> bool:
        assert self._plan is not None
        start = self._plan.waypoints[0]
        return state.position.horizontal_distance_to(start) > self.refresh_distance

    # Delta-snapshot hooks: plans are immutable values.
    def capture_delta_state(self) -> Optional[Plan]:
        return self._plan

    def restore_delta_state(self, state: Optional[Plan]) -> None:
        self._plan = state
