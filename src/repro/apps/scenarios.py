"""Registered systematic-testing scenarios built on the drone case study.

Each builder constructs the *discrete* model of a stack configuration
(:func:`repro.apps.stack.build_discrete_model` — no plant, no sensors) and
wires an abstract nondeterministic environment over the topics the plant
would normally publish, exactly as the paper's testing backend replaces
untrusted components by abstractions (Section V).

All builders are deterministic and registered in the scenario registry
(:mod:`repro.testing.scenarios`), so benchmarks, examples, and both the
serial and the parallel tester construct these workloads by name:

* ``drone-surveillance``     — the protected surveillance stack; safe by
  default, ``include_unsafe_position=True`` lets the abstraction teleport
  the estimate into a building.
* ``battery-safety-abort``   — the battery RTA module under adversarial
  battery readings; ``include_critical=True`` adds a reading that
  violates φ_bat.
* ``faulty-planner``         — an abstracted planner that may emit a
  corner-cutting plan; the tester must find the φ_plan violation.
* ``multi-obstacle-geofence``— position estimates ranging over a pillar
  field; ``include_breach=True`` adds a point inside a pillar.
* ``multi-drone-surveillance`` — N protected stacks composed in one
  shared airspace with the pairwise :class:`SeparationMonitor`; a fleet
  of one is bit-identical to ``drone-surveillance``, and
  ``include_conflict=True`` adds a shared rendezvous point two drones can
  pick simultaneously (separation 0).
* ``multi-drone-crossing``    — two drones flying crossing street paths
  through one intersection; counterexamples (both at the crossing) are
  plentiful.
"""

from __future__ import annotations

from dataclasses import replace
from functools import lru_cache
from typing import List, Optional

from ..core.compiler import Program, SoterCompiler
from ..core.module import RTAModuleSpec
from ..core.monitor import DeadlineMonitor, MonitorSuite, TopicSafetyMonitor
from ..core.node import FunctionNode
from ..core.regions import Region, classify_region
from ..core.specs import SafetySpec
from ..core.topics import Topic
from ..dynamics import DroneState
from ..geometry import AABB, Vec3, empty_workspace
from ..geometry.workspace import Workspace
from ..planning import GridAStarPlanner, Plan
from ..planning.validation import PlanValidator
from ..runtime.faults import ChoiceFaultInjector, FaultPlan, FaultPlane, FaultSite
from ..simulation import MissionWorld, surveillance_city
from ..simulation.drone import BatteryStatus, DronePlant
from ..simulation.plantenv import PlantChannel, PlantEnvironment
from ..simulation.sensors import BatterySensor, StateEstimator
from ..testing.abstractions import AbstractEnvironment, NondeterministicNode, constant_environment
from ..testing.explorer import ModelInstance
from ..testing.scenarios import register_scenario
from .modules import PlannerModuleConfig, build_safe_motion_planner
from .nodes import PlanForwardNode, PlannerNode
from .stack import FleetConfig, StackConfig, build_discrete_model, build_fleet_discrete_model, fleet_configs
from .topics import (
    ACTIVE_PLAN_TOPIC,
    BATTERY_TOPIC,
    GOAL_TOPIC,
    MOTION_PLAN_TOPIC,
    POSITION_TOPIC,
    vehicle_namespace,
)


@lru_cache(maxsize=None)
def _shared_world():
    """One surveillance-city world per process, shared across executions.

    Scenario builders run once per explored execution; the world geometry
    (and with it the workspace's lazily warmed
    :class:`~repro.geometry.ClearanceField` memo) is immutable, so every
    execution in a worker process reuses the same instance.  This is what
    "build the safety-query oracle once per worker, not per execution"
    means in practice — builders must treat the shared world as read-only.

    The clearance field is densified up front: one batched sweep turns
    every in-workspace threshold query into an array lookup (with the
    lazy/exact fallback untouched), amortised across every execution the
    worker will ever run.
    """
    world = surveillance_city()
    world.workspace.clearance_field().densify()
    return world


@register_scenario(
    "drone-surveillance",
    description=(
        "Discrete model of the RTA-protected surveillance stack; the abstract "
        "environment nondeterministically places the state estimate at the "
        "mission's surveillance points.  Safe by default; with "
        "include_unsafe_position=True the estimate may land inside a building, "
        "which φ_obs flags."
    ),
    tags=("drone", "stack"),
)
def build_drone_surveillance(
    include_unsafe_position: bool = False,
    horizon: float = 1.0,
    environment_period: float = 0.25,
    seed: int = 0,
    use_query_cache: bool = True,
) -> ModelInstance:
    world = _shared_world() if use_query_cache else surveillance_city()
    config = StackConfig(
        world=world,
        planner="straight",
        protect_battery=False,
        protect_motion_primitive=True,
        use_query_cache=use_query_cache,
        seed=seed,
    )
    model = build_discrete_model(config)
    positions = [
        DroneState(position=world.surveillance_points[0]),
        DroneState(position=world.surveillance_points[3]),
        DroneState(position=world.surveillance_points[8]),
    ]
    if include_unsafe_position:
        # The centre of the first building: zero clearance, so φ_obs fails
        # on any execution in which the abstraction picks this estimate.
        inside = world.workspace.obstacles[0].center
        positions.append(DroneState(position=inside))
    environment = AbstractEnvironment(
        menus={POSITION_TOPIC: positions}, period=environment_period
    )
    return ModelInstance(
        system=model.system, monitors=model.monitors, environment=environment, horizon=horizon
    )


_BATTERY_FLOOR = 0.08
_GROUND_ALTITUDE = 0.15


def _phi_bat(status: BatteryStatus) -> bool:
    return status.charge > _BATTERY_FLOOR or status.altitude <= _GROUND_ALTITUDE


@register_scenario(
    "battery-safety-abort",
    description=(
        "The battery RTA module fed adversarial battery readings while the "
        "drone cruises.  φ_bat requires the charge to stay above the hard "
        "floor unless the drone is on the ground; include_critical=True adds "
        "an in-air reading below the floor, which the tester must find."
    ),
    tags=("drone", "battery"),
)
def build_battery_safety_abort(
    include_critical: bool = False,
    horizon: float = 1.0,
    environment_period: float = 0.25,
    seed: int = 0,
) -> ModelInstance:
    world = _shared_world()
    config = StackConfig(
        world=world,
        planner="straight",
        protect_battery=True,
        protect_motion_primitive=False,
        with_invariant_monitor=False,
        seed=seed,
    )
    model = build_discrete_model(config)
    model.monitors.add(
        TopicSafetyMonitor(
            name="phi_bat",
            topic=BATTERY_TOPIC,
            spec=SafetySpec("charge>floor|landed", _phi_bat),
        )
    )
    charges = [
        BatteryStatus(charge=1.0, altitude=2.0),
        BatteryStatus(charge=0.55, altitude=2.0),
        BatteryStatus(charge=0.2, altitude=2.0),
    ]
    if include_critical:
        charges.append(BatteryStatus(charge=0.02, altitude=2.0))
    cruise = DroneState(position=world.surveillance_points[0])
    environment = AbstractEnvironment(
        menus={POSITION_TOPIC: [cruise], BATTERY_TOPIC: charges},
        period=environment_period,
    )
    return ModelInstance(
        system=model.system, monitors=model.monitors, environment=environment, horizon=horizon
    )


@register_scenario(
    "faulty-planner",
    description=(
        "The untrusted motion planner replaced by its abstraction: every "
        "period it nondeterministically emits either a street-following plan "
        "or a corner-cutting straight line through a building.  φ_plan "
        "(plan validation) fails on the corner-cut, so counterexamples are "
        "plentiful — the scenario exercises early-stop and replay."
    ),
    tags=("drone", "planner", "unsafe"),
)
def build_faulty_planner(
    horizon: float = 1.0,
    planner_period: float = 0.25,
    clearance: float = 0.5,
) -> ModelInstance:
    world = _shared_world()
    workspace = world.workspace
    altitude = world.cruise_altitude
    home = Vec3(4.0, 4.0, altitude)
    goal = Vec3(46.0, 46.0, altitude)
    # The detour follows the streets; the corner-cut goes straight through
    # the middle of the block grid.
    detour = Plan(
        waypoints=(home, Vec3(4.0, 46.0, altitude), goal), goal=goal, planner="street-detour"
    )
    corner_cut = Plan(waypoints=(home, goal), goal=goal, planner="corner-cut")
    planner_abstraction = NondeterministicNode(
        "planner.abs",
        menus={MOTION_PLAN_TOPIC: [detour, corner_cut]},
        period=planner_period,
    )
    program = Program(
        name="faulty-planner-testing",
        topics=[
            Topic(MOTION_PLAN_TOPIC, Plan, description="abstracted planner output"),
            Topic(ACTIVE_PLAN_TOPIC, Plan, description="plan forwarded downstream"),
        ],
        nodes=[planner_abstraction, PlanForwardNode(period=planner_period)],
    )
    system = SoterCompiler(strict=False).compile(program).system
    validator = PlanValidator(workspace, clearance=clearance)
    monitors = MonitorSuite(
        [
            TopicSafetyMonitor(
                name="phi_plan",
                topic=ACTIVE_PLAN_TOPIC,
                spec=SafetySpec("plan keeps clearance", validator.is_valid),
            )
        ]
    )
    return ModelInstance(system=system, monitors=monitors, environment=None, horizon=horizon)


@lru_cache(maxsize=None)
def _geofence_workspace():
    # Cached per process for the same reason as _shared_world: the pillar
    # field is immutable and its ClearanceField warms across executions.
    workspace = empty_workspace(side=20.0, ceiling=10.0, name="geofence-field")
    workspace.add_obstacle(AABB.from_footprint(5.0, 5.0, 2.0, 2.0, 8.0))
    workspace.add_obstacle(AABB.from_footprint(11.0, 9.0, 2.0, 2.0, 8.0))
    workspace.add_obstacle(AABB.from_footprint(7.0, 13.0, 2.0, 2.0, 8.0))
    workspace.clearance_field().densify()  # dense grid, amortised per process
    return workspace


@register_scenario(
    "multi-obstacle-geofence",
    description=(
        "Position estimates over a three-pillar field checked against a "
        "geofence predicate (free with margin).  Safe by default; "
        "include_breach=True adds an estimate inside a pillar."
    ),
    tags=("geometry", "geofence"),
)
def build_multi_obstacle_geofence(
    include_breach: bool = False,
    horizon: float = 1.0,
    environment_period: float = 0.25,
    margin: float = 0.2,
) -> ModelInstance:
    workspace = _geofence_workspace()

    def watch(now: float, inputs) -> dict:
        position = inputs.get("position")
        if position is None:
            return {}
        return {"fenceClearance": workspace.clearance(position)}

    program = Program(
        name="geofence-testing",
        topics=[
            Topic("position", Vec3, description="injected position estimate"),
            Topic("fenceClearance", float, 0.0, description="clearance to the nearest pillar"),
        ],
        nodes=[
            FunctionNode(
                "geofenceWatch",
                watch,
                subscribes=("position",),
                publishes=("fenceClearance",),
                period=environment_period,
            )
        ],
    )
    system = SoterCompiler(strict=False).compile(program).system
    monitors = MonitorSuite(
        [
            TopicSafetyMonitor(
                name="phi_fence",
                topic="position",
                spec=SafetySpec(
                    "free with margin",
                    lambda point: workspace.is_free(point, margin=margin),
                    batch_predicate=lambda pts: workspace.is_free_batch(pts, margin=margin),
                ),
            )
        ]
    )
    points: List[Vec3] = [Vec3(2.0, 2.0, 2.0), Vec3(10.0, 4.0, 2.0), Vec3(17.0, 17.0, 2.0)]
    if include_breach:
        points.append(Vec3(6.0, 6.0, 2.0))  # inside the first pillar
    environment = AbstractEnvironment(menus={"position": points}, period=environment_period)
    return ModelInstance(
        system=system, monitors=monitors, environment=environment, horizon=horizon
    )


# --------------------------------------------------------------------- #
# coverage-hostile scenarios (the coverage plane's evaluation workloads)
# --------------------------------------------------------------------- #
#
# Both scenarios below are *coverage-hostile by construction*: most menu
# options keep the module deep inside φ_safer (region R5), so the rarely
# chosen options near an obstacle — and the mode transitions they cause —
# are what unlock new (vehicle, mode, region) pairs.  Reaching a pair
# like (SC, R4:nominal) needs a *sequence* (a switching-region estimate
# to force SC mode, then a nominal estimate while still in SC), which
# uniform random sampling over a deep menu rarely produces.  They exist
# to evaluate CoverageGuidedStrategy against RandomStrategy
# (benchmarks/bench_coverage_guided.py) and are registered like every
# other scenario so the testers build them by name.
#
# Both protect *two* modules — the motion primitive and the battery — so
# the coverage plane spans two vehicles' worth of (mode, region) pairs
# whose rare branches live in independent menus (position estimates and
# battery readings); covering the product takes joint exploration.

#: Adversarial battery readings spanning the battery module's regions:
#: six nominal mid-charges (R4) diluting one full-charge recovery reading
#: (R5, > 85 % — the only way the battery DM ever reaches AC mode) and one
#: reading just above empty (R3: ``ttf_2Δ`` fires, the DM must land).
#: None violates φ_bat (charge stays positive), so the default scenarios
#: remain counterexample-free.
_COVERAGE_BATTERY_MENU = (0.5, 0.6, 0.4, 0.3, 0.7, 0.2, 1.0, 0.02)


def _battery_menu_states() -> List[BatteryStatus]:
    return [BatteryStatus(charge=charge, altitude=2.0) for charge in _COVERAGE_BATTERY_MENU]


def _region_menu_points(
    spec: RTAModuleSpec, workspace: Workspace, altitude: float, step: float = 0.05
) -> dict:
    """Deterministic menu points per observable region, derived from the spec.

    Walks outward from the first obstacle's +x face and classifies each
    candidate with :func:`~repro.core.regions.classify_region`, so the
    returned points carry their region *by construction* — parameter
    drift in Δ, margins or the synthesized φ_safer threshold moves the
    points instead of silently re-labelling them.  ``SWITCHING`` is the
    outermost switching-shell point (maximal clearance while ``ttf_2Δ``
    still holds), which keeps the default scenarios φ_Inv-clean: the DM
    reacts one Δ later, and by then the worst-case Δ-reach ball still
    clears the obstacle.
    """
    box = workspace.obstacles[0]
    y = (box.lo.y + box.hi.y) / 2.0
    shell: Optional[Vec3] = None
    nominal: Optional[Vec3] = None
    safer: Optional[Vec3] = None
    radius = step
    while radius < 40.0 and (nominal is None or safer is None):
        point = Vec3(box.hi.x + radius, y, altitude)
        region = classify_region(spec, DroneState(position=point))
        if region is Region.SWITCHING:
            shell = point  # keep the outermost one seen
        elif region is Region.NOMINAL and nominal is None:
            nominal = point
        elif region is Region.SAFER and safer is None:
            safer = point
        radius += step
    if shell is None or nominal is None or safer is None:
        missing = [
            name
            for name, found in (("switching", shell), ("nominal", nominal), ("safer", safer))
            if found is None
        ]
        raise ValueError(f"no {'/'.join(missing)} point found along the probe ray")
    return {
        Region.UNSAFE: Vec3(box.center.x, box.center.y, altitude),
        Region.SWITCHING: shell,
        Region.NOMINAL: nominal,
        Region.SAFER: safer,
    }


def _region_grid_points(
    spec: RTAModuleSpec,
    workspace: Workspace,
    altitude: float,
    count: int,
    region: Region,
    spacing: float = 1.5,
) -> List[Vec3]:
    """The first ``count`` grid points classified into ``region``.

    A deterministic raster scan over the workspace floor plan; these are
    the "boring" menu options that dilute the interesting ones.
    """
    points: List[Vec3] = []
    lo, hi = workspace.bounds.lo, workspace.bounds.hi
    x = lo.x + 2.0
    while x < hi.x - 1.0 and len(points) < count:
        y = lo.y + 2.0
        while y < hi.y - 1.0 and len(points) < count:
            point = Vec3(x, y, altitude)
            if classify_region(spec, DroneState(position=point)) is region:
                points.append(point)
            y += spacing
        x += spacing
    if len(points) < count:
        raise ValueError(
            f"only found {len(points)} {region.value} grid points, wanted {count}"
        )
    return points


@lru_cache(maxsize=None)
def _pillar_world() -> MissionWorld:
    """The three-pillar field as a mission world (shared per process)."""
    workspace = _geofence_workspace()
    return MissionWorld(
        workspace=workspace,
        surveillance_points=[Vec3(10.0, 4.0, 2.0), Vec3(17.0, 17.0, 2.0), Vec3(3.0, 10.0, 2.0)],
        home=Vec3(10.0, 4.0, 2.0),
        cruise_altitude=2.0,
    )


@register_scenario(
    "rare-branch-geofence",
    description=(
        "The doubly-protected stack (motion primitive + battery) over the "
        "three-pillar field with a sequence-hostile estimate menu: "
        "boring_options nominal (R4) points dilute exactly one deep-safe "
        "(R5) recovery point and one switching-shell (R3) point.  Both "
        "decision modules boot in SC and only reach AC through the rare "
        "recovery estimate, so every (AC, region) coverage pair hides "
        "behind a rare *sequence* of choices (recovery first, then the "
        "region).  Safe by default; include_breach=True adds an estimate "
        "inside the pillar (φ_obs), making time-to-first-counterexample "
        "measurable."
    ),
    tags=("drone", "stack", "coverage"),
)
def build_rare_branch_geofence(
    include_breach: bool = False,
    boring_options: int = 12,
    horizon: float = 0.5,
    environment_period: float = 0.25,
    seed: int = 0,
    use_query_cache: bool = True,
) -> ModelInstance:
    world = _pillar_world()
    config = StackConfig(
        world=world,
        planner="straight",
        protect_battery=True,
        protect_motion_primitive=True,
        use_query_cache=use_query_cache,
        seed=seed,
    )
    model = build_discrete_model(config)
    spec = model.motion_primitive.spec
    targets = _region_menu_points(spec, world.workspace, world.cruise_altitude)
    positions = [
        DroneState(position=point)
        for point in _region_grid_points(
            spec, world.workspace, world.cruise_altitude, boring_options, Region.NOMINAL
        )
    ]
    positions.append(DroneState(position=targets[Region.SAFER]))
    positions.append(DroneState(position=targets[Region.SWITCHING]))
    if include_breach:
        positions.append(DroneState(position=targets[Region.UNSAFE]))
    environment = AbstractEnvironment(
        menus={POSITION_TOPIC: positions, BATTERY_TOPIC: _battery_menu_states()},
        period=environment_period,
    )
    return ModelInstance(
        system=model.system, monitors=model.monitors, environment=environment, horizon=horizon
    )


@register_scenario(
    "deep-menu-surveillance",
    description=(
        "The doubly-protected surveillance-city stack with a *deep* "
        "estimate menu: the nine surveillance points plus deep_options "
        "more deep-safe street points (all R5) dilute one switching-shell "
        "and one nominal point near the first building to a thirty-plus "
        "option menu.  Uniform random draws keep re-sampling known "
        "deep-safe estimates (the coupon-collector tail) while the "
        "interesting shell/nominal branches — and the battery module's "
        "rare recovery/abort readings — go unvisited.  Safe by default; "
        "include_unsafe_position=True adds a building-centre estimate "
        "(φ_obs)."
    ),
    tags=("drone", "stack", "coverage"),
)
def build_deep_menu_surveillance(
    include_unsafe_position: bool = False,
    deep_options: int = 24,
    horizon: float = 0.5,
    environment_period: float = 0.25,
    seed: int = 0,
    use_query_cache: bool = True,
) -> ModelInstance:
    world = _shared_world() if use_query_cache else surveillance_city()
    config = StackConfig(
        world=world,
        planner="straight",
        protect_battery=True,
        protect_motion_primitive=True,
        use_query_cache=use_query_cache,
        seed=seed,
    )
    model = build_discrete_model(config)
    spec = model.motion_primitive.spec
    targets = _region_menu_points(spec, world.workspace, world.cruise_altitude)
    positions = [DroneState(position=point) for point in world.surveillance_points]
    positions.extend(
        DroneState(position=point)
        for point in _region_grid_points(
            spec, world.workspace, world.cruise_altitude, deep_options, Region.SAFER, spacing=2.5
        )
    )
    positions.append(DroneState(position=targets[Region.SWITCHING]))
    positions.append(DroneState(position=targets[Region.NOMINAL]))
    if include_unsafe_position:
        positions.append(DroneState(position=targets[Region.UNSAFE]))
    environment = AbstractEnvironment(
        menus={POSITION_TOPIC: positions, BATTERY_TOPIC: _battery_menu_states()},
        period=environment_period,
    )
    return ModelInstance(
        system=model.system, monitors=model.monitors, environment=environment, horizon=horizon
    )


# --------------------------------------------------------------------- #
# multi-drone shared-airspace scenarios
# --------------------------------------------------------------------- #

#: Rendezvous point shared by every vehicle's menu under include_conflict:
#: a free street point all drones may pick in the same window (separation 0).
_RENDEZVOUS_INDEX = 8


def _fleet_base_config(world, seed: int, use_query_cache: bool) -> StackConfig:
    """The per-vehicle stack configuration all fleet scenarios share.

    Identical to ``drone-surveillance``'s configuration, which is what
    makes the one-vehicle fleet composition bit-identical to the
    single-drone scenario.
    """
    return StackConfig(
        world=world,
        planner="straight",
        protect_battery=False,
        protect_motion_primitive=True,
        use_query_cache=use_query_cache,
        seed=seed,
    )


@register_scenario(
    "multi-drone-surveillance",
    description=(
        "N RTA-protected surveillance stacks composed in one shared airspace "
        "(per-vehicle topic namespaces) with a pairwise SeparationMonitor; the "
        "abstract environment places every vehicle's estimate at its own "
        "surveillance points.  Safe by default for up to three drones; "
        "include_conflict=True adds a shared rendezvous point that two drones "
        "can pick simultaneously (separation 0 < the minimum), and "
        "include_unsafe_position=True teleports drone 0 into a building "
        "(φ_obs).  A fleet of one is bit-identical to 'drone-surveillance'."
    ),
    tags=("drone", "stack", "fleet"),
)
def build_multi_drone_surveillance(
    drones: int = 2,
    include_conflict: bool = False,
    include_unsafe_position: bool = False,
    horizon: float = 1.0,
    environment_period: float = 0.25,
    seed: int = 0,
    use_query_cache: bool = True,
    min_separation: float = 2.0,
    use_batch_separation: bool = True,
) -> ModelInstance:
    if drones < 1:
        raise ValueError("the fleet needs at least one drone")
    world = _shared_world() if use_query_cache else surveillance_city()
    base = _fleet_base_config(world, seed, use_query_cache)
    fleet = FleetConfig(
        vehicles=fleet_configs(drones, base),
        name="multi-drone-surveillance",
        min_separation=min_separation,
        use_batch_separation=use_batch_separation,
    )
    model = build_fleet_discrete_model(fleet)
    points = world.surveillance_points
    menus = {}
    for index, vehicle in enumerate(fleet.vehicles):
        if drones == 1:
            # The single-drone menu, exactly as 'drone-surveillance' builds it.
            indices = (0, 3, 8)
        else:
            # Disjoint menu triples per vehicle (up to three conflict-free
            # drones on the nine-point circuit; larger fleets share points
            # and separation counterexamples become findable by default).
            indices = tuple((offset + index) % len(points) for offset in (0, 3, 6))
        menu = [DroneState(position=points[i]) for i in indices]
        if include_conflict and drones >= 2 and _RENDEZVOUS_INDEX not in indices:
            # Vehicles whose base menu already covers the rendezvous point
            # (vehicle 2 of a 3-drone fleet) must not list it twice: a
            # duplicate choice skews random sweeps and makes exhaustive
            # enumeration explore identical branches twice.  With one drone
            # there is nothing to rendezvous with.
            menu.append(DroneState(position=points[_RENDEZVOUS_INDEX]))
        if include_unsafe_position and index == 0:
            menu.append(DroneState(position=world.workspace.obstacles[0].center))
        menus[vehicle.namespace.position] = menu
    environment = AbstractEnvironment(menus=menus, period=environment_period)
    return ModelInstance(
        system=model.system, monitors=model.monitors, environment=environment, horizon=horizon
    )


@register_scenario(
    "multi-drone-crossing",
    description=(
        "Two protected stacks flying crossing street paths through one "
        "intersection of the surveillance city; both menus contain the "
        "crossing point, so executions in which the drones occupy it in the "
        "same window violate the pairwise separation minimum — "
        "counterexamples are plentiful, exercising early-stop and replay on "
        "a composed fleet."
    ),
    tags=("drone", "fleet", "unsafe"),
)
def build_multi_drone_crossing(
    horizon: float = 1.0,
    environment_period: float = 0.25,
    seed: int = 0,
    min_separation: float = 2.0,
    use_batch_separation: bool = True,
) -> ModelInstance:
    world = _shared_world()
    altitude = world.cruise_altitude
    crossing = Vec3(18.5, 18.5, altitude)  # free street intersection
    east_west = [Vec3(4.0, 18.5, altitude), crossing, Vec3(31.5, 18.5, altitude)]
    north_south = [Vec3(18.5, 4.0, altitude), crossing, Vec3(18.5, 31.5, altitude)]
    base = _fleet_base_config(world, seed, use_query_cache=True)
    vehicles = [
        replace(
            base,
            namespace=vehicle_namespace(index, 2),
            seed=seed + 2 * index,  # two sensor streams per vehicle seed
            goals=path,
            start_position=path[0],
        )
        for index, path in enumerate((east_west, north_south))
    ]
    fleet = FleetConfig(
        vehicles=vehicles,
        name="multi-drone-crossing",
        min_separation=min_separation,
        use_batch_separation=use_batch_separation,
    )
    model = build_fleet_discrete_model(fleet)
    menus = {
        vehicle.namespace.position: [DroneState(position=point) for point in path]
        for vehicle, path in zip(fleet.vehicles, (east_west, north_south))
    }
    environment = AbstractEnvironment(menus=menus, period=environment_period)
    return ModelInstance(
        system=model.system, monitors=model.monitors, environment=environment, horizon=horizon
    )


@register_scenario(
    "plant-surveillance",
    description=(
        "The RTA-protected surveillance stack closed through a real plant: a "
        "PlantEnvironment integrates one DronePlant per vehicle under the "
        "commands the stack publishes and feeds estimator/battery readings "
        "back, with a per-period wind-gust menu as the only nondeterminism.  "
        "Strong gusts can push a drone off the street grid, which φ_obs "
        "flags; drones>1 composes namespaced stacks whose plants share one "
        "airspace.  The population tester steps all vehicles through the "
        "(K, …) matrix plant (bit-identical to the scalar path)."
    ),
    tags=("drone", "stack", "plant"),
)
def build_plant_surveillance(
    drones: int = 1,
    gust_strength: float = 30.0,
    unsafe_start: bool = False,
    horizon: float = 1.0,
    environment_period: float = 0.25,
    physics_dt: float = 0.05,
    seed: int = 0,
    use_query_cache: bool = True,
    min_separation: float = 2.0,
) -> ModelInstance:
    if drones < 1:
        raise ValueError("the fleet needs at least one drone")
    world = _shared_world() if use_query_cache else surveillance_city()
    base = _fleet_base_config(world, seed, use_query_cache)
    if unsafe_start:
        # Vehicle 0 hovers half a metre west of the first building: two
        # consecutive +x gust windows out-accelerate the clamped control
        # authority and blow the plant through the wall (φ_obs + a real
        # collision latch), so counterexamples are findable by default.
        building = world.workspace.obstacles[0]
        base = replace(
            base,
            start_position=Vec3(
                building.lo.x - 0.5,
                (building.lo.y + building.hi.y) / 2.0,
                world.cruise_altitude,
            ),
        )
    fleet = FleetConfig(
        vehicles=fleet_configs(drones, base),
        name="plant-surveillance",
        min_separation=min_separation,
    )
    model = build_fleet_discrete_model(fleet)
    # The row-group matrix path requires one shared dynamics/battery model
    # across all plant rows (both are stateless here); vehicle 0's
    # instances carry the fleet-wide parameters.
    shared_dynamics = model.vehicles[0].model
    shared_battery = model.vehicles[0].battery_model
    channels: List[PlantChannel] = []
    for index, vehicle in enumerate(model.vehicles):
        vehicle_config = vehicle.config
        ns = vehicle_config.namespace
        start = vehicle_config.start_position or vehicle_config.world.home
        plant = DronePlant(
            model=shared_dynamics,
            workspace=vehicle_config.world.workspace,
            battery_model=shared_battery,
            initial_state=DroneState(position=start),
            initial_charge=vehicle_config.initial_charge,
            collision_margin=0.0,
        )
        channels.append(
            PlantChannel(
                plant=plant,
                estimator=StateEstimator(
                    position_noise=vehicle_config.estimator_noise,
                    velocity_noise=vehicle_config.estimator_noise,
                    seed=vehicle_config.seed,
                ),
                battery_sensor=BatterySensor(seed=vehicle_config.seed + 1),
                command_topic=ns.command,
                position_topic=ns.position,
                battery_topic=ns.battery,
                label=ns.prefix.rstrip("/") if ns.prefix else f"drone{index}",
            )
        )
    environment = PlantEnvironment(
        channels=channels,
        gust_menu=[
            Vec3.zero(),
            Vec3(gust_strength, 0.0, 0.0),
            Vec3(0.0, -gust_strength, 0.0),
        ],
        period=environment_period,
        physics_dt=physics_dt,
    )
    return ModelInstance(
        system=model.system, monitors=model.monitors, environment=environment, horizon=horizon
    )


# --------------------------------------------------------------------------- #
# fault-exploration scenarios (strategy-driven FaultPlan choice points)
# --------------------------------------------------------------------------- #

#: Injector node names of the fault-injected planner pair.  The site name
#: doubles as the injector's node name, so trail labels, coverage keys and
#: the compiled system agree on one identifier per variant.
PROTECTED_PLANNER_FAULT_NODE = "SafeMotionPlanner.ac.faultable"
UNPROTECTED_PLANNER_FAULT_NODE = "motionPlanner.faultable"


@register_scenario(
    "fault-injected-planner",
    description=(
        "The motion planner behind a strategy-driven ChoiceFaultInjector: a "
        "FaultPlan declares two activation windows in which the planner may "
        "substitute a corner-cutting plan or crash-and-restart, and each "
        "window's (activation, kind) is a labeled choice in the trail.  "
        "phi_plan_deadline tolerates transients shorter than the RTA "
        "recovery bound: with protected=True the Delta-bounded safe planner "
        "always recovers in time (zero violations across the exhaustive "
        "fault sweep); with protected=False a sustained substitution "
        "violates.  This pair is the resilience harness's differential."
    ),
    tags=("drone", "planner", "faults"),
)
def build_fault_injected_planner(
    protected: bool = True,
    horizon: float = 2.5,
    planner_period: float = 0.25,
    delta: float = 0.5,
    clearance: float = 0.5,
    grace: float = 1.0,
    fault_windows=((0.25, 1.25), (1.25, 2.5)),
    fault_kinds=("substitute", "crash"),
    environment_period: float = 0.5,
    fault_plan=None,
) -> ModelInstance:
    world = _shared_world()
    workspace = world.workspace
    altitude = world.cruise_altitude
    home = Vec3(4.0, 4.0, altitude)
    goal = Vec3(46.0, 46.0, altitude)
    # The corner-cut goes straight through the block grid: invalid at any
    # positive clearance, and the SUBSTITUTE payload of the fault site.
    corner_cut = Plan(waypoints=(home, goal), goal=goal, planner="corner-cut")
    planner = GridAStarPlanner(workspace=workspace, altitude=altitude)
    node_name = PROTECTED_PLANNER_FAULT_NODE if protected else UNPROTECTED_PLANNER_FAULT_NODE
    if fault_plan is not None:
        # An explicit plan (object or its encoded wire form) overrides the
        # declarative knobs — this is how swarm shards carry fault plans.
        plan = FaultPlan.coerce(fault_plan)
        node_sites = plan.node_sites()
        if len(node_sites) != 1:
            raise ValueError("fault-injected-planner needs exactly one node fault site")
        site = node_sites[0]
    else:
        site = FaultSite(
            kinds=tuple(fault_kinds), windows=tuple(fault_windows), node=node_name
        )
        plan = FaultPlan(sites=(site,))
    substitutes = {MOTION_PLAN_TOPIC: corner_cut}
    topics = [
        Topic(GOAL_TOPIC, Vec3, description="mission goal (constant)"),
        Topic(POSITION_TOPIC, DroneState, description="state estimate (constant)"),
        Topic(MOTION_PLAN_TOPIC, Plan, description="published motion plan"),
    ]
    if protected:
        module = build_safe_motion_planner(
            workspace,
            advanced_planner=planner,
            certified_planner=planner,
            config=PlannerModuleConfig(
                delta=delta, node_period=planner_period, plan_clearance=clearance
            ),
        )
        injector = ChoiceFaultInjector(
            module.advanced_node, site, rename=site.node, substitutes=substitutes
        )
        module.spec.advanced = injector
        module.advanced_node = injector  # type: ignore[assignment]
        program = Program(name="fault-injected-planner", topics=topics)
        program.add_module(module.spec)
        validator = module.validator
    else:
        inner = PlannerNode(name="motionPlanner", planner=planner, period=planner_period)
        injector = ChoiceFaultInjector(inner, site, rename=site.node, substitutes=substitutes)
        program = Program(name="fault-injected-planner-unprotected", topics=topics, nodes=[injector])
        validator = PlanValidator(workspace, clearance=clearance)
    system = SoterCompiler(strict=False).compile(program).system
    monitors = MonitorSuite(
        [
            DeadlineMonitor(
                name="phi_plan_deadline",
                topic=MOTION_PLAN_TOPIC,
                spec=SafetySpec("plan keeps clearance", validator.is_valid),
                grace=grace,
            )
        ]
    )
    environment = constant_environment(
        {GOAL_TOPIC: goal, POSITION_TOPIC: DroneState(position=home)},
        period=environment_period,
    )
    plane = FaultPlane(plan, environment=environment).adopt(system)
    return ModelInstance(system=system, monitors=monitors, environment=plane, horizon=horizon)


#: Injector node name of the fault-injected surveillance stack.
SURVEILLANCE_TRACKER_FAULT_NODE = "SafeMotionPrimitive.ac.faultable"


@register_scenario(
    "fault-injected-surveillance",
    description=(
        "The RTA-protected surveillance stack with a widened fault surface: "
        "the advanced tracker behind a ChoiceFaultInjector (invert / stuck / "
        "crash per window) and, at the TopicBoard, position-estimate message "
        "loss, freezes and delivery delay.  Safe by construction (the "
        "environment menu only offers safe estimates and the RTA plane "
        "absorbs command faults), so it exercises the fault axis of the "
        "coverage plane and the no-fault-overhead benchmark rather than "
        "hunting counterexamples."
    ),
    tags=("drone", "stack", "faults"),
)
def build_fault_injected_surveillance(
    horizon: float = 1.0,
    environment_period: float = 0.25,
    seed: int = 0,
    use_query_cache: bool = True,
    tracker_windows=((0.0, 0.5), (0.5, 1.0)),
    tracker_kinds=("invert", "stuck", "crash"),
    include_position_faults: bool = True,
    position_windows=((0.25, 0.75),),
    position_kinds=("drop", "stuck", "delay"),
) -> ModelInstance:
    world = _shared_world() if use_query_cache else surveillance_city()
    tracker_site = FaultSite(
        kinds=tuple(tracker_kinds),
        windows=tuple(tracker_windows),
        node=SURVEILLANCE_TRACKER_FAULT_NODE,
    )
    config = StackConfig(
        world=world,
        planner="straight",
        protect_battery=False,
        protect_motion_primitive=True,
        use_query_cache=use_query_cache,
        seed=seed,
        tracker_fault_site=tracker_site,
    )
    model = build_discrete_model(config)
    sites = [tracker_site]
    if include_position_faults:
        sites.append(
            FaultSite(
                kinds=tuple(position_kinds),
                windows=tuple(position_windows),
                topic=POSITION_TOPIC,
                delay=environment_period,
            )
        )
    positions = [
        DroneState(position=world.surveillance_points[0]),
        DroneState(position=world.surveillance_points[3]),
        DroneState(position=world.surveillance_points[8]),
    ]
    environment = AbstractEnvironment(
        menus={POSITION_TOPIC: positions}, period=environment_period
    )
    plane = FaultPlane(FaultPlan(sites=tuple(sites)), environment=environment).adopt(model.system)
    return ModelInstance(
        system=model.system, monitors=model.monitors, environment=plane, horizon=horizon
    )
