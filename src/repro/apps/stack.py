"""Builders for the full drone-surveillance software stack (Figure 8).

``build_stack`` assembles, from one :class:`StackConfig`, the complete
SOTER program — surveillance application, motion planner, battery module,
motion primitives — in any of the configurations the evaluation needs:

* the fully RTA-protected stack of Figure 8,
* the unprotected stack (advanced controllers only) used as the Figure 5
  baseline,
* the SC-only stack (conservative controllers only) used in the Figure 12a
  comparison,
* fault-injected variants of the planner and the advanced tracker.

The result bundles the compiled system with a ready-to-run co-simulation
and the mission-metric extraction used by every benchmark.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..control import (
    AggressiveTracker,
    LearnedTracker,
    MotionPrimitiveNode,
    SafeWaypointTracker,
    WaypointTracker,
)
from ..core.compiler import Program, SoterCompiler
from ..core.monitor import InvariantMonitor, MonitorSuite, SeparationMonitor, TopicSafetyMonitor
from ..core.semantics import SchedulingPolicy
from ..core.specs import SafetySpec
from ..core.system import RTASystem
from ..dynamics import (
    BatteryModel,
    BatteryParams,
    BoundedDoubleIntegrator,
    DoubleIntegratorParams,
    DroneState,
)
from ..geometry import Vec3
from ..planning import FaultyPlanner, GridAStarPlanner, PlannerBug, RRTStarPlanner
from ..reachability import WorstCaseReachability, states_as_arrays, synthesize_safe_tracker
from ..runtime.faults import ChoiceFaultInjector, FaultInjector, FaultSite, FaultSpec
from ..simulation import (
    BatterySensor,
    FaultyBatterySensor,
    FaultyStateEstimator,
    DronePlant,
    DroneSimulation,
    FleetResult,
    FleetSimulation,
    FleetSimulationConfig,
    MissionWorld,
    SimulationConfig,
    SimulationResult,
    StateEstimator,
    VehicleChannels,
    surveillance_city,
)
from .metrics import MissionMetrics, metrics_from_result
from .modules import (
    BatteryModule,
    BatteryModuleConfig,
    MotionPrimitiveModule,
    MotionPrimitiveModuleConfig,
    PlannerModule,
    PlannerModuleConfig,
    build_battery_safety,
    build_safe_motion_planner,
    build_safe_motion_primitive,
)
from .nodes import PlanForwardNode, PlannerNode, StraightLinePlanner, SurveillanceNode
from .topics import DEFAULT_NAMESPACE, TopicNamespace, vehicle_namespace


@dataclass
class StackConfig:
    """One configuration of the drone software stack."""

    # world & mission ---------------------------------------------------- #
    world: MissionWorld = field(default_factory=surveillance_city)
    goals: Optional[Sequence[Vec3]] = None
    random_goals: int = 0
    loop_goals: bool = False
    goal_tolerance: float = 1.2
    start_position: Optional[Vec3] = None

    # which parts of the stack are RTA-protected ------------------------- #
    protect_motion_primitive: bool = True
    protect_battery: bool = True
    protect_planner: bool = False
    sc_only: bool = False  # unprotected variant that uses the certified tracker directly

    # controllers --------------------------------------------------------- #
    tracker: str = "aggressive"  # "aggressive" | "learned"
    cruise_speed: float = 3.5
    max_speed: float = 4.0
    max_acceleration: float = 6.0
    tracker_fault: Optional[FaultSpec] = None
    # Strategy-driven twin of tracker_fault: a node-targeting FaultSite (or
    # its encoded tuple form) wrapping the tracker in a ChoiceFaultInjector,
    # so fault timing/kind become labeled choice points in the trail.  The
    # injector takes the site's node name, keeping trail labels and system
    # node names consistent.
    tracker_fault_site: Optional[FaultSite] = None

    # planner -------------------------------------------------------------- #
    planner: str = "straight"  # "straight" | "rrt" | "astar"
    planner_clearance: float = 2.9
    planner_bug: Optional[PlannerBug] = None
    planner_bug_probability: float = 0.3

    # timing ---------------------------------------------------------------- #
    mp_delta: float = 0.1
    mp_period: float = 0.05
    planner_delta: float = 0.5
    planner_period: float = 0.5
    battery_delta: float = 1.0
    battery_period: float = 0.2
    surveillance_period: float = 0.5

    # battery ----------------------------------------------------------------- #
    initial_charge: float = 1.0
    battery_params: Optional[BatteryParams] = None

    # runtime / sensing --------------------------------------------------------- #
    scheduler: Optional[SchedulingPolicy] = None
    estimator_noise: float = 0.02
    with_invariant_monitor: bool = True
    safer_extra_margin: float = 0.5
    safe_speed_fraction: float = 0.35
    collision_margin: float = 0.05
    # Route clearance checks through the cached/batched safety-query plane
    # (bit-identical decisions; off only for equivalence tests/benchmarks).
    use_query_cache: bool = True
    seed: int = 0
    # Sensor fault windows, sample-count based: ("stuck"|"stale"|"dropout",
    # first faulty sample, one-past-last faulty sample).  None = healthy.
    estimator_fault: Optional[Tuple[str, int, int]] = None
    battery_fault: Optional[Tuple[str, int, int]] = None

    # Per-vehicle namespace over every topic, node, module and monitor name.
    # The default (empty-prefix) namespace reproduces the original
    # single-drone stack name for name; fleets give each vehicle its own
    # prefix so N protected stacks compose in one RTASystem.
    namespace: TopicNamespace = DEFAULT_NAMESPACE

    def mission_goals(self) -> Sequence[Vec3]:
        """The fixed goal sequence (the world's surveillance points by default)."""
        if self.goals is not None:
            return list(self.goals)
        return list(self.world.surveillance_points)


@dataclass
class BuiltStack:
    """A compiled stack plus its co-simulation and bookkeeping handles."""

    config: StackConfig
    program: Program
    system: RTASystem
    simulation: DroneSimulation
    plant: DronePlant
    surveillance: SurveillanceNode
    monitors: MonitorSuite
    motion_primitive: Optional[MotionPrimitiveModule] = None
    battery: Optional[BatteryModule] = None
    planner: Optional[PlannerModule] = None

    def run(
        self,
        duration: float,
        stop_on_complete: bool = True,
        stop_on_crash: bool = True,
    ) -> Tuple[MissionMetrics, SimulationResult]:
        """Run the mission and return its metrics plus the raw simulation result."""

        def stop(sim: DroneSimulation) -> bool:
            if stop_on_complete and self.surveillance.mission_complete and not self.config.loop_goals:
                return True
            if self.battery is not None and self._battery_abort_finished():
                return True
            return False

        result = self.simulation.run(duration, stop_when=stop, stop_on_crash=stop_on_crash)
        metrics = metrics_from_result(result, self.system, surveillance=self.surveillance)
        return metrics, result

    def _battery_abort_finished(self) -> bool:
        """True once a battery-triggered abort has ended with the drone on the ground."""
        assert self.battery is not None
        dm = self.system.module_named(self.battery.spec.name).decision
        from ..core.decision import Mode

        aborted = any(switch.is_disengagement for switch in dm.switches)
        return aborted and self.plant.landed


def _make_tracker(config: StackConfig) -> WaypointTracker:
    if config.tracker == "aggressive":
        return AggressiveTracker(
            cruise_speed=config.cruise_speed, max_acceleration=config.max_acceleration
        )
    if config.tracker == "learned":
        return LearnedTracker(
            cruise_speed=min(config.cruise_speed, 3.5),
            max_acceleration=config.max_acceleration,
            seed=config.seed,
        )
    raise ValueError(f"unknown tracker {config.tracker!r} (expected 'aggressive' or 'learned')")


def _make_planner(config: StackConfig):
    workspace = config.world.workspace
    altitude = config.world.cruise_altitude
    if config.planner == "straight":
        planner = StraightLinePlanner(altitude=altitude)
    elif config.planner == "rrt":
        planner = RRTStarPlanner(
            workspace=workspace,
            clearance=config.planner_clearance,
            altitude=altitude,
            seed=config.seed,
        )
    elif config.planner == "astar":
        planner = GridAStarPlanner(
            workspace=workspace, clearance=config.planner_clearance, altitude=altitude
        )
    else:
        raise ValueError(f"unknown planner {config.planner!r}")
    if config.planner_bug is not None:
        planner = FaultyPlanner(
            inner=planner,
            bug=config.planner_bug,
            probability=config.planner_bug_probability,
            seed=config.seed,
        )
    return planner


@dataclass
class AssembledProgram:
    """The uncompiled drone program plus handles to its moving parts."""

    program: Program
    surveillance: SurveillanceNode
    model: BoundedDoubleIntegrator
    battery_model: BatteryModel
    planner_module: Optional[PlannerModule]
    battery_module: Optional[BatteryModule]
    mp_module: Optional[MotionPrimitiveModule]


def _assemble_program(config: StackConfig) -> AssembledProgram:
    """Assemble the (uncompiled) drone program described by ``config``.

    Every topic, node, module and monitor name is drawn from
    ``config.namespace``; the default namespace's empty prefix makes this
    exactly the original single-drone program, while per-vehicle prefixes
    let :func:`build_fleet_discrete_model` merge N assemblies into one
    composable system.
    """
    world = config.world
    workspace = world.workspace
    ns = config.namespace
    model = BoundedDoubleIntegrator(
        DoubleIntegratorParams(max_speed=config.max_speed, max_acceleration=config.max_acceleration)
    )
    battery_model = BatteryModel(config.battery_params or BatteryParams())

    program = Program(name=ns.scoped("drone-surveillance"), topics=ns.topics())

    # ----------------------------------------------------------------- #
    # application layer
    # ----------------------------------------------------------------- #
    surveillance = SurveillanceNode(
        goals=config.mission_goals(),
        workspace=workspace,
        name=ns.scoped("surveillance"),
        period=config.surveillance_period,
        goal_tolerance=config.goal_tolerance,
        loop=config.loop_goals,
        random_goals=config.random_goals,
        altitude=world.cruise_altitude,
        seed=config.seed,
        position_topic=ns.position,
        goal_topic=ns.goal,
    )
    program.add_node(surveillance)

    # ----------------------------------------------------------------- #
    # motion planner (plain or RTA-protected)
    # ----------------------------------------------------------------- #
    planner_module: Optional[PlannerModule] = None
    advanced_planner = _make_planner(config)
    if config.protect_planner:
        certified_planner = GridAStarPlanner(
            workspace=workspace,
            clearance=config.planner_clearance,
            altitude=world.cruise_altitude,
        )
        planner_module = build_safe_motion_planner(
            workspace=workspace,
            advanced_planner=advanced_planner,
            certified_planner=certified_planner,
            config=PlannerModuleConfig(
                delta=config.planner_delta,
                node_period=config.planner_period,
                plan_clearance=max(0.5, config.planner_clearance - 0.6),
                goal_topic=ns.goal,
                position_topic=ns.position,
                plan_topic=ns.motion_plan,
            ),
            name=ns.scoped("SafeMotionPlanner"),
        )
        program.add_module(planner_module.spec)
    else:
        program.add_node(
            PlannerNode(
                name=ns.scoped("motionPlanner"),
                planner=advanced_planner,
                period=config.planner_period,
                output_topic=ns.motion_plan,
                goal_topic=ns.goal,
                position_topic=ns.position,
            )
        )

    # ----------------------------------------------------------------- #
    # battery module (plain relay or RTA-protected)
    # ----------------------------------------------------------------- #
    battery_module: Optional[BatteryModule] = None
    if config.protect_battery:
        battery_module = build_battery_safety(
            battery_model=battery_model,
            config=BatteryModuleConfig(
                delta=config.battery_delta,
                node_period=config.battery_period,
                motion_plan_topic=ns.motion_plan,
                active_plan_topic=ns.active_plan,
                position_topic=ns.position,
                battery_topic=ns.battery,
            ),
            name=ns.scoped("BatterySafety"),
        )
        program.add_module(battery_module.spec)
    else:
        program.add_node(
            PlanForwardNode(
                name=ns.scoped("planRelay"),
                period=config.battery_period,
                input_topic=ns.motion_plan,
                output_topic=ns.active_plan,
            )
        )

    # ----------------------------------------------------------------- #
    # motion primitives (plain or RTA-protected)
    # ----------------------------------------------------------------- #
    mp_module: Optional[MotionPrimitiveModule] = None
    advanced_tracker: WaypointTracker = _make_tracker(config)
    if config.protect_motion_primitive:
        mp_module = build_safe_motion_primitive(
            workspace=workspace,
            model=model,
            advanced_tracker=advanced_tracker,
            config=MotionPrimitiveModuleConfig(
                delta=config.mp_delta,
                node_period=config.mp_period,
                collision_margin=config.collision_margin,
                safer_extra_margin=config.safer_extra_margin,
                safe_speed_fraction=config.safe_speed_fraction,
                use_query_cache=config.use_query_cache,
                plan_topic=ns.active_plan,
                position_topic=ns.position,
                command_topic=ns.command,
            ),
            name=ns.scoped("SafeMotionPrimitive"),
        )
        if config.tracker_fault is not None:
            faulty_ac = FaultInjector(
                mp_module.advanced_node, config.tracker_fault, rename=f"{mp_module.spec.name}.ac.faulty"
            )
            mp_module.spec.advanced = faulty_ac
            mp_module.advanced_node = faulty_ac  # type: ignore[assignment]
        if config.tracker_fault_site is not None:
            site = FaultSite.decode(config.tracker_fault_site) if not isinstance(
                config.tracker_fault_site, FaultSite
            ) else config.tracker_fault_site
            faultable_ac = ChoiceFaultInjector(mp_module.advanced_node, site, rename=site.node)
            mp_module.spec.advanced = faultable_ac
            mp_module.advanced_node = faultable_ac  # type: ignore[assignment]
        program.add_module(mp_module.spec)
    else:
        if config.sc_only:
            params, _certificate = synthesize_safe_tracker(
                model, workspace, safe_speed_fraction=config.safe_speed_fraction
            )
            tracker: WaypointTracker = SafeWaypointTracker(params=params, workspace=workspace)
        else:
            tracker = advanced_tracker
        primitive = MotionPrimitiveNode(
            name=ns.scoped("motionPrimitive"),
            tracker=tracker,
            plan_topic=ns.active_plan,
            position_topic=ns.position,
            command_topic=ns.command,
            period=config.mp_period,
        )
        if config.tracker_fault is not None:
            primitive = FaultInjector(
                primitive, config.tracker_fault, rename=ns.scoped("motionPrimitive.faulty")
            )
        if config.tracker_fault_site is not None:
            site = FaultSite.decode(config.tracker_fault_site) if not isinstance(
                config.tracker_fault_site, FaultSite
            ) else config.tracker_fault_site
            primitive = ChoiceFaultInjector(primitive, site, rename=site.node)
        program.add_node(primitive)

    return AssembledProgram(
        program=program,
        surveillance=surveillance,
        model=model,
        battery_model=battery_model,
        planner_module=planner_module,
        battery_module=battery_module,
        mp_module=mp_module,
    )


def _vehicle_monitors(
    config: StackConfig,
    system: RTASystem,
    model: BoundedDoubleIntegrator,
    mp_module: Optional[MotionPrimitiveModule],
) -> list:
    """One vehicle's monitors: the φ_obs topic monitor plus (optionally) φ_Inv.

    Both monitors are wired to the batched safety-query plane: their scalar
    checks hit the workspace's cached :class:`ClearanceField` and their
    batch hooks evaluate whole monitor windows with one vectorised
    clearance/reachability query.  Names and topics come from the
    vehicle's namespace, so fleet compositions get one independent monitor
    set per vehicle.
    """
    workspace = config.world.workspace
    ns = config.namespace
    field = workspace.clearance_field() if config.use_query_cache else None
    monitors = []

    def _phi_obs(state) -> bool:
        if field is not None:
            return field.exceeds(state.position, 0.0)
        return workspace.clearance(state.position) > 0.0

    def _phi_obs_batch(states):
        positions = [s.position.as_tuple() for s in states]
        return workspace.clearance_batch(positions) > 0.0

    monitors.append(
        TopicSafetyMonitor(
            name=ns.scoped("phi_obs(estimated)"),
            topic=ns.position,
            spec=SafetySpec(
                name="phi_obs",
                predicate=_phi_obs,
                batch_predicate=_phi_obs_batch,
            ),
        )
    )
    if config.with_invariant_monitor and mp_module is not None:
        reach = WorstCaseReachability(model)

        def _may_leave(state, horizon: float) -> bool:
            return reach.may_leave_safe(
                state, workspace, horizon, margin=config.collision_margin, field=field
            )

        def _may_leave_batch(states, horizon: float):
            positions, speeds = states_as_arrays(states)
            return reach.may_leave_safe_batch(
                positions, speeds, workspace, horizon, margin=config.collision_margin
            )

        monitors.append(
            InvariantMonitor(
                module=system.module_named(mp_module.spec.name),
                may_leave_within=_may_leave,
                may_leave_within_batch=_may_leave_batch,
            )
        )
    return monitors


def _safety_monitors(
    config: StackConfig,
    system: RTASystem,
    model: BoundedDoubleIntegrator,
    mp_module: Optional[MotionPrimitiveModule],
) -> MonitorSuite:
    """The single-vehicle monitor suite (see :func:`_vehicle_monitors`)."""
    return MonitorSuite(_vehicle_monitors(config, system, model, mp_module))


@dataclass
class DiscreteModel:
    """The compiled discrete model of the stack, without the plant co-simulation.

    This is what the systematic tester explores: the untrusted plant and
    sensors are *not* wired in — an abstract (nondeterministic)
    environment injects their topics instead, as Section V of the paper
    prescribes for the testing backend.
    """

    config: StackConfig
    program: Program
    system: RTASystem
    monitors: MonitorSuite
    surveillance: SurveillanceNode
    motion_primitive: Optional[MotionPrimitiveModule] = None
    battery: Optional[BatteryModule] = None
    planner: Optional[PlannerModule] = None


def build_discrete_model(config: Optional[StackConfig] = None) -> DiscreteModel:
    """Assemble and compile the stack's discrete model for systematic testing."""
    config = config or StackConfig()
    assembled = _assemble_program(config)
    system = SoterCompiler(strict=True).compile(assembled.program).system
    monitors = _safety_monitors(config, system, assembled.model, assembled.mp_module)
    return DiscreteModel(
        config=config,
        program=assembled.program,
        system=system,
        monitors=monitors,
        surveillance=assembled.surveillance,
        motion_primitive=assembled.mp_module,
        battery=assembled.battery_module,
        planner=assembled.planner_module,
    )


def build_stack(config: Optional[StackConfig] = None) -> BuiltStack:
    """Assemble, compile, and wire the drone software stack described by ``config``."""
    config = config or StackConfig()
    world = config.world
    workspace = world.workspace
    assembled = _assemble_program(config)
    program = assembled.program
    surveillance = assembled.surveillance
    model = assembled.model
    battery_model = assembled.battery_model
    planner_module = assembled.planner_module
    battery_module = assembled.battery_module
    mp_module = assembled.mp_module

    # ----------------------------------------------------------------- #
    # compile and wire the co-simulation
    # ----------------------------------------------------------------- #
    compiled = SoterCompiler(strict=True).compile(program)
    system = compiled.system

    start = config.start_position or world.home
    plant = DronePlant(
        model=model,
        workspace=workspace,
        battery_model=battery_model,
        initial_state=DroneState(position=start),
        initial_charge=config.initial_charge,
        collision_margin=0.0,
    )
    monitors = _safety_monitors(config, system, model, mp_module)
    estimator: Any = StateEstimator(
        position_noise=config.estimator_noise,
        velocity_noise=config.estimator_noise,
        seed=config.seed,
    )
    if config.estimator_fault is not None:
        mode, start, stop = config.estimator_fault
        estimator = FaultyStateEstimator(
            inner=estimator, mode=mode, fault_from=start, fault_until=stop
        )
    battery_sensor: Any = BatterySensor(seed=config.seed + 1)
    if config.battery_fault is not None:
        mode, start, stop = config.battery_fault
        battery_sensor = FaultyBatterySensor(
            inner=battery_sensor, mode=mode, fault_from=start, fault_until=stop
        )
    simulation = DroneSimulation(
        system=system,
        plant=plant,
        estimator=estimator,
        battery_sensor=battery_sensor,
        scheduler=config.scheduler,
        monitors=monitors,
        # Sensor/command wiring must follow the vehicle's namespace: with a
        # prefixed namespace the default topic names would publish where no
        # node listens (a dead, vacuously-safe mission).
        config=SimulationConfig(
            position_topic=config.namespace.position,
            battery_topic=config.namespace.battery,
            command_topic=config.namespace.command,
        ),
    )
    return BuiltStack(
        config=config,
        program=program,
        system=system,
        simulation=simulation,
        plant=plant,
        surveillance=surveillance,
        monitors=monitors,
        motion_primitive=mp_module,
        battery=battery_module,
        planner=planner_module,
    )


def run_mission(
    config: Optional[StackConfig] = None,
    duration: float = 120.0,
    stop_on_complete: bool = True,
) -> Tuple[MissionMetrics, SimulationResult]:
    """Convenience wrapper: build the stack and run one mission."""
    stack = build_stack(config)
    return stack.run(duration, stop_on_complete=stop_on_complete)


# --------------------------------------------------------------------------- #
# multi-vehicle fleets: N protected stacks in one shared airspace
# --------------------------------------------------------------------------- #
@dataclass
class FleetConfig:
    """N per-vehicle stack configurations sharing one airspace.

    Every vehicle must carry a distinct :class:`TopicNamespace` (the
    composability precondition: disjoint node names and output topics) and
    the same workspace instance (the shared coordinate frame the
    separation monitor reasons about).  Use :func:`fleet_configs` to build
    a conforming list from a single base configuration.
    """

    vehicles: Sequence[StackConfig]
    name: str = "drone-fleet"
    min_separation: float = 2.0
    with_separation_monitor: bool = True
    use_batch_separation: bool = True

    def __post_init__(self) -> None:
        if not self.vehicles:
            raise ValueError("a fleet needs at least one vehicle")
        prefixes = [config.namespace.prefix for config in self.vehicles]
        if len(set(prefixes)) != len(prefixes):
            raise ValueError(f"vehicle namespaces must be distinct, got {prefixes}")
        workspace = self.vehicles[0].world.workspace
        for config in self.vehicles[1:]:
            if config.world.workspace is not workspace:
                raise ValueError(
                    "all fleet vehicles must share one workspace instance "
                    "(the separation monitor needs a common coordinate frame)"
                )
        if self.min_separation <= 0.0:
            raise ValueError("min_separation must be positive")


def fleet_configs(count: int, base: Optional[StackConfig] = None) -> List[StackConfig]:
    """``count`` per-vehicle configurations derived from one base config.

    Vehicle ``i`` gets the :func:`~repro.apps.topics.vehicle_namespace`
    convention, seed ``base.seed + 2*i`` (spaced by two because each
    vehicle derives *two* sensor streams from its seed — estimator at
    ``seed``, battery sensor at ``seed + 1`` — and adjacent seeds would
    alias one vehicle's battery stream with the next one's estimator),
    and (for ``i > 0``) the mission's goal cycle rotated by three points
    with a matching start position, so fleet members fly interleaved
    tours of the same surveillance circuit.  Vehicle 0 keeps the base
    configuration untouched — a fleet of one is exactly the single-drone
    stack.
    """
    if count < 1:
        raise ValueError("a fleet needs at least one vehicle")
    base = base or StackConfig()
    configs: List[StackConfig] = []
    goals = list(base.mission_goals())
    for index in range(count):
        namespace = vehicle_namespace(index, count)
        if index == 0:
            configs.append(replace(base, namespace=namespace))
            continue
        shift = (3 * index) % len(goals) if goals else 0
        rotated = goals[shift:] + goals[:shift]
        configs.append(
            replace(
                base,
                namespace=namespace,
                seed=base.seed + 2 * index,
                goals=rotated,
                start_position=rotated[0] if rotated else base.start_position,
            )
        )
    return configs


@dataclass
class FleetVehicle:
    """One vehicle's handles inside a composed fleet."""

    config: StackConfig
    surveillance: SurveillanceNode
    model: BoundedDoubleIntegrator
    battery_model: BatteryModel
    motion_primitive: Optional[MotionPrimitiveModule] = None
    battery: Optional[BatteryModule] = None
    planner: Optional[PlannerModule] = None


@dataclass
class FleetModel:
    """The compiled discrete model of an N-vehicle fleet (no plants)."""

    config: FleetConfig
    program: Program
    system: RTASystem
    monitors: MonitorSuite
    vehicles: List[FleetVehicle]
    separation: Optional[SeparationMonitor] = None


def _merge_fleet_program(config: FleetConfig, assemblies: Sequence[AssembledProgram]) -> Program:
    """One program holding every vehicle's topics, nodes and modules."""
    program = Program(name=config.name)
    for assembled in assemblies:
        program.topics.extend(assembled.program.topics)
        program.nodes.extend(assembled.program.nodes)
        program.modules.extend(assembled.program.modules)
    return program


def _fleet_vehicles(
    config: FleetConfig, assemblies: Sequence[AssembledProgram]
) -> List[FleetVehicle]:
    return [
        FleetVehicle(
            config=vehicle_config,
            surveillance=assembled.surveillance,
            model=assembled.model,
            battery_model=assembled.battery_model,
            motion_primitive=assembled.mp_module,
            battery=assembled.battery_module,
            planner=assembled.planner_module,
        )
        for vehicle_config, assembled in zip(config.vehicles, assemblies)
    ]


def _fleet_monitors(
    config: FleetConfig, system: RTASystem, assemblies: Sequence[AssembledProgram]
) -> Tuple[MonitorSuite, Optional[SeparationMonitor]]:
    """Per-vehicle monitor sets plus the shared-airspace separation monitor.

    The separation monitor is only added for actual fleets (two or more
    vehicles): with a single vehicle there are no pairs to separate, and
    omitting it keeps the N=1 composition bit-identical to the
    single-drone stack.
    """
    monitors = MonitorSuite()
    for vehicle_config, assembled in zip(config.vehicles, assemblies):
        for monitor in _vehicle_monitors(
            vehicle_config, system, assembled.model, assembled.mp_module
        ):
            monitors.add(monitor)
    separation: Optional[SeparationMonitor] = None
    if config.with_separation_monitor and len(config.vehicles) >= 2:
        separation = SeparationMonitor(
            topics=[vehicle.namespace.position for vehicle in config.vehicles],
            min_separation=config.min_separation,
            use_batch=config.use_batch_separation,
        )
        monitors.add(separation)
    return monitors, separation


def build_fleet_discrete_model(config: FleetConfig) -> FleetModel:
    """Assemble and compile the fleet's discrete model for systematic testing.

    The per-vehicle programs are merged into one :class:`Program`
    (disjoint namespaces make the composition valid by construction,
    re-checked by the compiler) and every vehicle keeps its own φ_obs and
    φ_Inv monitors; fleets of two or more additionally get the pairwise
    :class:`~repro.core.monitor.SeparationMonitor` over all position
    topics.
    """
    assemblies = [_assemble_program(vehicle) for vehicle in config.vehicles]
    program = _merge_fleet_program(config, assemblies)
    system = SoterCompiler(strict=True).compile(program).system
    monitors, separation = _fleet_monitors(config, system, assemblies)
    return FleetModel(
        config=config,
        program=program,
        system=system,
        monitors=monitors,
        vehicles=_fleet_vehicles(config, assemblies),
        separation=separation,
    )


@dataclass
class FleetStack:
    """A compiled fleet plus its co-simulation and bookkeeping handles."""

    config: FleetConfig
    program: Program
    system: RTASystem
    simulation: FleetSimulation
    monitors: MonitorSuite
    vehicles: List[FleetVehicle]
    channels: List[VehicleChannels]
    separation: Optional[SeparationMonitor] = None

    @property
    def mission_complete(self) -> bool:
        return all(vehicle.surveillance.mission_complete for vehicle in self.vehicles)

    def run(self, duration: float, stop_on_complete: bool = True) -> FleetResult:
        """Run the fleet mission (stopping when every tour is complete)."""

        def stop(sim: FleetSimulation) -> bool:
            return stop_on_complete and self.mission_complete

        return self.simulation.run(duration, stop_when=stop)


def build_fleet_stack(
    config: FleetConfig, sim_config: Optional[FleetSimulationConfig] = None
) -> FleetStack:
    """Assemble, compile, and wire the N-vehicle fleet with per-vehicle plants.

    Every vehicle gets its own :class:`DronePlant`, state estimator and
    battery sensor, publishing on its namespace's sensor topics; one
    semantics engine drives the composed program while all plants
    integrate in lock-step (see
    :class:`~repro.simulation.FleetSimulation`).  The compiled system and
    monitors come from :func:`build_fleet_discrete_model`, so the
    simulated fleet and the discrete model the testers explore are the
    same composition by construction.
    """
    model = build_fleet_discrete_model(config)
    channels: List[VehicleChannels] = []
    for index, vehicle in enumerate(model.vehicles):
        vehicle_config = vehicle.config
        world = vehicle_config.world
        ns = vehicle_config.namespace
        start = vehicle_config.start_position or world.home
        plant = DronePlant(
            model=vehicle.model,
            workspace=world.workspace,
            battery_model=vehicle.battery_model,
            initial_state=DroneState(position=start),
            initial_charge=vehicle_config.initial_charge,
            collision_margin=0.0,
        )
        channels.append(
            VehicleChannels(
                name=ns.prefix.rstrip("/") if ns.prefix else f"drone{index}",
                plant=plant,
                estimator=StateEstimator(
                    position_noise=vehicle_config.estimator_noise,
                    velocity_noise=vehicle_config.estimator_noise,
                    seed=vehicle_config.seed,
                ),
                battery_sensor=BatterySensor(seed=vehicle_config.seed + 1),
                position_topic=ns.position,
                battery_topic=ns.battery,
                command_topic=ns.command,
            )
        )
    simulation = FleetSimulation(
        system=model.system,
        vehicles=channels,
        scheduler=config.vehicles[0].scheduler,
        monitors=model.monitors,
        config=sim_config or FleetSimulationConfig(),
    )
    return FleetStack(
        config=config,
        program=model.program,
        system=model.system,
        simulation=simulation,
        monitors=model.monitors,
        vehicles=model.vehicles,
        channels=channels,
        separation=model.separation,
    )
