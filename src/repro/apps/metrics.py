"""Mission metrics: the quantities the paper's evaluation reports.

Section V of the paper reports, per mission or per campaign: whether the
safety invariants held, how many *disengagements* occurred (an SC node
taking control from an AC node), what fraction of the time the advanced
controllers were in control (> 96 % in the endurance campaign), mission
times for the AC-only / RTA / SC-only variants, distance flown, and the
number of crashes.  :class:`MissionMetrics` collects all of these from a
finished simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.decision import Mode
from ..core.system import RTASystem
from ..simulation.sim import SimulationResult
from .nodes import SurveillanceNode


@dataclass
class MissionMetrics:
    """Aggregated outcome of one simulated mission."""

    mission_time: float
    distance_flown: float
    completed: bool
    collided: bool
    crashed: bool
    landed_safely: bool
    battery_depleted_in_air: bool
    goals_visited: int
    min_clearance: float
    final_charge: float
    disengagements: Dict[str, int] = field(default_factory=dict)
    reengagements: Dict[str, int] = field(default_factory=dict)
    ac_time_fraction: Dict[str, float] = field(default_factory=dict)
    monitor_violations: int = 0
    stop_reason: str = ""

    @property
    def total_disengagements(self) -> int:
        return sum(self.disengagements.values())

    @property
    def total_reengagements(self) -> int:
        return sum(self.reengagements.values())

    @property
    def safe(self) -> bool:
        """The paper's safety verdict: no collision and no airborne battery depletion."""
        return not self.collided and not self.battery_depleted_in_air

    def overall_ac_fraction(self) -> float:
        """Mean fraction of mission time the advanced controllers were in control."""
        if not self.ac_time_fraction:
            return 1.0
        return sum(self.ac_time_fraction.values()) / len(self.ac_time_fraction)

    def summary(self) -> str:
        lines = [
            f"mission time          : {self.mission_time:.1f} s ({self.stop_reason})",
            f"distance flown        : {self.distance_flown:.1f} m",
            f"completed             : {self.completed}",
            f"safe                  : {self.safe} (collided={self.collided}, "
            f"battery-depleted-in-air={self.battery_depleted_in_air})",
            f"landed safely         : {self.landed_safely}",
            f"goals visited         : {self.goals_visited}",
            f"min clearance         : {self.min_clearance:.2f} m",
            f"final charge          : {self.final_charge:.1%}",
            f"disengagements        : {self.total_disengagements} {dict(self.disengagements)}",
            f"AC-in-control fraction: {self.overall_ac_fraction():.1%}",
            f"monitor violations    : {self.monitor_violations}",
        ]
        return "\n".join(lines)


def metrics_from_result(
    result: SimulationResult,
    system: RTASystem,
    surveillance: Optional[SurveillanceNode] = None,
    goals_target: Optional[int] = None,
) -> MissionMetrics:
    """Build :class:`MissionMetrics` from a finished simulation."""
    plant = result.plant
    disengagements: Dict[str, int] = {}
    reengagements: Dict[str, int] = {}
    ac_fraction: Dict[str, float] = {}
    for module in system.modules:
        dm = module.decision
        disengagements[module.name] = len(dm.disengagements)
        reengagements[module.name] = len(dm.reengagements)
        ac_fraction[module.name] = dm.time_fraction_in_mode(Mode.AC, 0.0, result.end_time)
    goals_visited = surveillance.goals_visited if surveillance is not None else 0
    if surveillance is not None and goals_target is None:
        completed = surveillance.mission_complete
    elif goals_target is not None:
        completed = goals_visited >= goals_target
    else:
        completed = not plant.crashed
    battery_depleted_in_air = plant.battery_failed
    return MissionMetrics(
        mission_time=result.end_time,
        distance_flown=plant.distance_flown,
        completed=completed,
        collided=plant.collided,
        crashed=plant.crashed,
        landed_safely=plant.landed and not plant.collided,
        battery_depleted_in_air=battery_depleted_in_air,
        goals_visited=goals_visited,
        min_clearance=plant.min_clearance,
        final_charge=plant.battery.charge,
        disengagements=disengagements,
        reengagements=reengagements,
        ac_time_fraction=ac_fraction,
        monitor_violations=len(result.monitors.violations),
        stop_reason=result.stop_reason,
    )


@dataclass
class CampaignMetrics:
    """Aggregate of many missions (the Section V-D endurance campaign)."""

    missions: List[MissionMetrics] = field(default_factory=list)

    def add(self, metrics: MissionMetrics) -> None:
        self.missions.append(metrics)

    @property
    def mission_count(self) -> int:
        return len(self.missions)

    @property
    def total_flight_time(self) -> float:
        return sum(m.mission_time for m in self.missions)

    @property
    def total_distance(self) -> float:
        return sum(m.distance_flown for m in self.missions)

    @property
    def total_disengagements(self) -> int:
        return sum(m.total_disengagements for m in self.missions)

    @property
    def crashes(self) -> int:
        return sum(1 for m in self.missions if m.crashed)

    @property
    def collisions(self) -> int:
        return sum(1 for m in self.missions if m.collided)

    def mean_ac_fraction(self) -> float:
        if not self.missions:
            return 1.0
        return sum(m.overall_ac_fraction() for m in self.missions) / len(self.missions)

    def summary(self) -> str:
        lines = [
            f"missions        : {self.mission_count}",
            f"flight time     : {self.total_flight_time:.0f} s",
            f"distance flown  : {self.total_distance / 1000.0:.2f} km",
            f"disengagements  : {self.total_disengagements}",
            f"crashes         : {self.crashes}",
            f"AC-in-control   : {self.mean_ac_fraction():.1%}",
        ]
        return "\n".join(lines)
