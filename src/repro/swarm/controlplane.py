"""The swarm control plane: sessions, shard leases, self-healing ingestion.

One control plane coordinates a fleet of drones
(:mod:`repro.swarm.drone`).  It is deliberately dumb about the workload —
it never builds a scenario or runs an execution; it only moves *shard
descriptions* (the same value objects the in-host
:class:`~repro.testing.parallel.ParallelTester` ships to its process
pool) through a lease queue and folds the streamed results back together:

* **sessions** group the shards of one exploration sweep and accumulate
  its execution records and coverage;
* **leases** hand one shard to one drone, with proof-of-life heartbeats
  and a deadline;
* **ingestion is idempotent**: every record is keyed by its execution
  identity (:func:`~repro.swarm.protocol.execution_key` — global index
  for random sweeps, full choice trail for exhaustive ones), so a
  re-leased shard racing its zombie original cannot double-count records
  *or* coverage (coverage rides each accepted record, not the shard);
* **self-healing** follows an escalation ladder per lease: a missed
  heartbeat first *warns* (the drone shows as lagging in ``/status``),
  then *expires the lease* and requeues the shard for another drone,
  then *marks the drone dead* after repeated expiries; the session only
  fails when work remains and no live drone is left to do it;
* **adaptive re-partitioning**: when a drone goes idle while an
  exhaustive lease lags the fleet, the lagging shard's not-yet-started
  trail prefixes are split off into a fresh shard and leased out — the
  original drone learns its shrunken prefix budget on the next
  heartbeat, and the trail-keyed ingestion makes the handover safe even
  if both drones race over the boundary subtree.

The pure state machine (:class:`ControlPlane`) is separate from the HTTP
layer (:class:`ControlPlaneServer`, a stdlib ``ThreadingHTTPServer``) so
the healing logic is unit-testable with a fake clock.
"""

from __future__ import annotations

import itertools
import sys
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, List, Optional, Tuple

from . import protocol

#: How long an HTTP lease request may block waiting for work (seconds).
LEASE_POLL_TIMEOUT = 2.0


# --------------------------------------------------------------------- #
# state
# --------------------------------------------------------------------- #


@dataclass
class DroneState:
    """What the control plane knows about one drone."""

    drone_id: str
    first_seen: float
    last_seen: float
    strikes: int = 0
    dead: bool = False
    lagging: bool = False
    leases_granted: int = 0
    leases_completed: int = 0


@dataclass
class Lease:
    """One shard handed to one drone, with a proof-of-life deadline."""

    lease_id: int
    session_id: str
    shard_id: int
    drone_id: str
    granted_at: float
    last_heartbeat: float
    warned: bool = False
    executions_done: int = 0
    prefixes_done: int = 0


@dataclass
class ShardState:
    """One shard's position in the queued -> leased -> done lifecycle."""

    shard_id: int
    data: Dict[str, Any]  # wire form (protocol.encode_shard)
    status: str = "queued"  # queued | leased | done | cancelled
    attempts: int = 0
    lease_id: Optional[int] = None

    @property
    def kind(self) -> str:
        return self.data["kind"]


@dataclass
class Session:
    """One exploration sweep: its shards, records, coverage, and fate."""

    session_id: str
    shards: List[ShardState]
    stop_at_first_violation: bool
    created_at: float
    label: str = ""
    records: List[Dict[str, Any]] = field(default_factory=list)
    record_keys: set = field(default_factory=set)
    coverage_rows: Dict[Tuple[str, str, str], int] = field(default_factory=dict)
    #: Summed per-lease PopulationTester counter deltas (empty when no
    #: shard ran the population plane).  Counts work *performed* by the
    #: fleet: a zombie/re-lease race that redundantly re-runs a shard
    #: shows up here even though its records dedupe away.
    population_stats: Dict[str, int] = field(default_factory=dict)
    duplicates: int = 0
    stopping: bool = False
    failed: Optional[str] = None
    events: List[str] = field(default_factory=list)
    finish_notified: bool = False

    @property
    def finished(self) -> bool:
        if self.failed is not None:
            return True
        return all(shard.status in ("done", "cancelled") for shard in self.shards)

    @property
    def outstanding(self) -> List[ShardState]:
        return [shard for shard in self.shards if shard.status in ("queued", "leased")]


class ControlPlane:
    """The swarm's session/lease/result state machine.

    All public methods are thread-safe (one lock; the HTTP layer calls
    them from concurrent handler threads).  ``clock`` is injectable so
    the escalation ladder is testable without real waiting.
    """

    def __init__(
        self,
        *,
        heartbeat_timeout: float = 5.0,
        warn_after: Optional[float] = None,
        max_drone_strikes: int = 2,
        max_shard_attempts: int = 5,
        split_lagging_after: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.heartbeat_timeout = heartbeat_timeout
        self.warn_after = heartbeat_timeout / 2.0 if warn_after is None else warn_after
        self.max_drone_strikes = max_drone_strikes
        self.max_shard_attempts = max_shard_attempts
        self.split_lagging_after = split_lagging_after
        self._clock = clock
        self._lock = threading.RLock()
        #: Notified whenever a shard enters the queue (session creation,
        #: expiry requeue, adaptive split) so idle lease long-polls wake
        #: immediately instead of busy-waiting.
        self._work = threading.Condition(self._lock)
        self._sessions: Dict[str, Session] = {}
        self._drones: Dict[str, DroneState] = {}
        self._leases: Dict[int, Lease] = {}  # active leases only
        self._session_ids = itertools.count(1)
        self._lease_ids = itertools.count(1)
        self._shard_ids = itertools.count(1)
        self._listeners: List[Any] = []

    # ------------------------------------------------------------------ #
    # listeners (the mission service's streaming hook)
    # ------------------------------------------------------------------ #
    def add_listener(self, listener: Any) -> None:
        """Register an observer of session progress.

        Listeners may implement ``record_accepted(session_id, record,
        coverage)`` (called once per *accepted* record — duplicates never
        reach listeners) and ``session_finished(session_id)`` (called
        exactly once when a session reaches its final state).  Callbacks
        run under the plane lock: they must be quick and must never call
        back into the plane's public methods from another thread they
        block on (one-way lock ordering: plane -> listener).
        """
        with self._lock:
            self._listeners.append(listener)

    def _notify_record(
        self, session_id: str, record: Dict[str, Any], coverage: Any
    ) -> None:
        for listener in self._listeners:
            hook = getattr(listener, "record_accepted", None)
            if hook is not None:
                hook(session_id, record, coverage)

    def _notify_finish_transitions(self) -> None:
        # Call with the lock held.  A session "finishes" on whichever
        # request tips its last shard (ingest, expiry, failure) — detect
        # the transition here so every path reports it exactly once.
        for session in self._sessions.values():
            if session.finish_notified or not session.finished:
                continue
            session.finish_notified = True
            for listener in self._listeners:
                hook = getattr(listener, "session_finished", None)
                if hook is not None:
                    hook(session.session_id)

    # ------------------------------------------------------------------ #
    # sessions
    # ------------------------------------------------------------------ #
    def create_session(
        self,
        shards: List[Dict[str, Any]],
        *,
        stop_at_first_violation: bool = False,
        label: str = "",
    ) -> str:
        """Queue a new session's shards; returns the session id."""
        if not shards:
            raise protocol.ProtocolError("a session needs at least one shard")
        for shard in shards:
            if shard.get("kind") not in ("random", "exhaustive"):
                raise protocol.ProtocolError(f"unknown shard kind: {shard.get('kind')!r}")
        with self._lock:
            session_id = f"s{next(self._session_ids)}"
            self._sessions[session_id] = Session(
                session_id=session_id,
                shards=[
                    ShardState(shard_id=next(self._shard_ids), data=dict(shard))
                    for shard in shards
                ],
                stop_at_first_violation=stop_at_first_violation,
                created_at=self._clock(),
                label=label,
            )
            self._work.notify_all()
            return session_id

    def _session(self, session_id: str) -> Session:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise protocol.ProtocolError(f"unknown session {session_id!r}") from None

    # ------------------------------------------------------------------ #
    # the escalation ladder
    # ------------------------------------------------------------------ #
    def sweep(self) -> None:
        """Advance the self-healing ladder: warn, expire, bury, fail.

        Called before every lease grant and by the HTTP layer on every
        request, so healing needs no dedicated timer thread (one can still
        call it periodically for very quiet fleets).
        """
        with self._lock:
            now = self._clock()
            for lease in list(self._leases.values()):
                age = now - lease.last_heartbeat
                drone = self._drones.get(lease.drone_id)
                if age > self.heartbeat_timeout:
                    self._expire_lease(lease, now)
                elif age > self.warn_after and not lease.warned:
                    lease.warned = True
                    if drone is not None:
                        drone.lagging = True
                    self._event(
                        lease.session_id,
                        f"warn: drone {lease.drone_id} silent {age:.2f}s on shard "
                        f"{lease.shard_id} (lease {lease.lease_id})",
                    )
            self._fail_orphaned_sessions()
            self._notify_finish_transitions()

    def _expire_lease(self, lease: Lease, now: float) -> None:
        session = self._sessions.get(lease.session_id)
        shard = self._shard(lease)
        del self._leases[lease.lease_id]
        drone = self._drones.get(lease.drone_id)
        if drone is not None:
            drone.strikes += 1
            drone.lagging = False
            if drone.strikes >= self.max_drone_strikes and not drone.dead:
                drone.dead = True
                self._event(
                    lease.session_id,
                    f"drone-dead: {lease.drone_id} after {drone.strikes} expired lease(s)",
                )
        if session is None or shard is None or shard.status != "leased":
            return
        shard.lease_id = None
        shard.attempts += 1
        if session.stopping:
            shard.status = "cancelled"
            return
        if shard.attempts >= self.max_shard_attempts:
            self._fail(session, f"shard {shard.shard_id} failed after "
                                f"{shard.attempts} lease attempt(s)")
            return
        shard.status = "queued"
        self._work.notify_all()
        self._event(
            lease.session_id,
            f"re-lease: shard {shard.shard_id} requeued (attempt {shard.attempts + 1}) "
            f"after drone {lease.drone_id} missed its proof-of-life deadline",
        )

    def _fail_orphaned_sessions(self) -> None:
        # The last rung: only when *no* drone remains to do outstanding
        # work does a session fail outright.
        if not self._drones or any(not drone.dead for drone in self._drones.values()):
            return
        for session in self._sessions.values():
            if session.failed is None and not session.finished and not any(
                shard.status == "leased" for shard in session.shards
            ):
                self._fail(session, "no live drone remains for outstanding shards")

    def _fail(self, session: Session, reason: str) -> None:
        session.failed = reason
        self._event(session.session_id, f"session-failed: {reason}")

    def _shard(self, lease: Lease) -> Optional[ShardState]:
        session = self._sessions.get(lease.session_id)
        if session is None:
            return None
        for shard in session.shards:
            if shard.shard_id == lease.shard_id:
                return shard
        return None

    def _event(self, session_id: str, message: str) -> None:
        session = self._sessions.get(session_id)
        if session is not None:
            session.events.append(message)

    # ------------------------------------------------------------------ #
    # leases
    # ------------------------------------------------------------------ #
    def request_lease(self, drone_id: str) -> Optional[Dict[str, Any]]:
        """Grant the next queued shard to ``drone_id`` (None when idle).

        An idle request is also the trigger for adaptive re-partitioning:
        if nothing is queued but an exhaustive lease is lagging with
        untouched prefixes, those prefixes are split off into a fresh
        shard and granted immediately.
        """
        self.sweep()
        with self._lock:
            now = self._clock()
            drone = self._drones.get(drone_id)
            if drone is None:
                drone = DroneState(drone_id=drone_id, first_seen=now, last_seen=now)
                self._drones[drone_id] = drone
            drone.last_seen = now
            if drone.dead:
                return {"dead": True}
            grant = self._grant(drone, now) or (
                self._grant(drone, now) if self._split_lagging(now) else None
            )
            return grant

    def wait_for_work(self, timeout: float) -> bool:
        """Block until new work may be queued (or ``timeout`` elapses).

        The HTTP long-poll's replacement for its old 20 ms busy-wait: the
        underlying condition is notified whenever a shard enters the
        queue, so an idle drone's poll wakes the instant a session is
        created (or a shard is requeued/split) instead of on the next
        spin.  Returns True on a wake-up, False on timeout.  Callers
        should keep ``timeout`` bounded (the long-poll uses short slices)
        so quiet fleets still sweep the healing ladder periodically.
        """
        if timeout <= 0:
            return False
        with self._work:
            return self._work.wait(timeout)

    def _grant(self, drone: DroneState, now: float) -> Optional[Dict[str, Any]]:
        for session in self._sessions.values():
            if session.failed is not None or session.stopping:
                continue
            for shard in session.shards:
                if shard.status != "queued":
                    continue
                lease = Lease(
                    lease_id=next(self._lease_ids),
                    session_id=session.session_id,
                    shard_id=shard.shard_id,
                    drone_id=drone.drone_id,
                    granted_at=now,
                    last_heartbeat=now,
                )
                self._leases[lease.lease_id] = lease
                shard.status = "leased"
                shard.lease_id = lease.lease_id
                drone.leases_granted += 1
                return {
                    "lease": lease.lease_id,
                    "session": session.session_id,
                    "shard_id": shard.shard_id,
                    "shard": shard.data,
                    "heartbeat_timeout": self.heartbeat_timeout,
                }
        return None

    def _split_lagging(self, now: float) -> bool:
        """Split a lagging exhaustive lease's untouched prefixes off.

        Returns True when a new queued shard was produced.  The prefix
        currently being enumerated (and everything before it) stays with
        the original lease; the drone learns the shrunken budget through
        ``keep_prefixes`` on its next heartbeat or result post.  Races
        over the boundary prefix are harmless: exhaustive records dedupe
        by trail, and coverage rides accepted records only.
        """
        for lease in self._leases.values():
            session = self._sessions.get(lease.session_id)
            shard = self._shard(lease)
            if session is None or shard is None or session.stopping:
                continue
            if shard.kind != "exhaustive" or shard.status != "leased":
                continue
            if now - lease.granted_at < self.split_lagging_after:
                continue
            prefixes = shard.data["prefixes"]
            keep = max(1, lease.prefixes_done + 1)
            if len(prefixes) - keep < 1:
                continue
            stolen, kept = prefixes[keep:], prefixes[:keep]
            shard.data = {**shard.data, "prefixes": kept}
            new_shard = ShardState(
                shard_id=next(self._shard_ids),
                data={**shard.data, "prefixes": stolen},
            )
            session.shards.append(new_shard)
            self._work.notify_all()
            self._event(
                session.session_id,
                f"split: shard {shard.shard_id} lagging on drone {lease.drone_id}; "
                f"{len(stolen)} untouched prefix(es) re-partitioned into shard "
                f"{new_shard.shard_id}",
            )
            return True
        return False

    def heartbeat(
        self,
        session_id: str,
        lease_id: int,
        *,
        executions_done: int = 0,
        prefixes_done: int = 0,
    ) -> Dict[str, Any]:
        """Record proof of life; returns stop/keep-prefixes directives."""
        self.sweep()
        with self._lock:
            now = self._clock()
            session = self._session(session_id)
            lease = self._leases.get(lease_id)
            if lease is not None:
                lease.last_heartbeat = now
                lease.warned = False
                lease.executions_done = executions_done
                lease.prefixes_done = prefixes_done
                drone = self._drones.get(lease.drone_id)
                if drone is not None:
                    drone.last_seen = now
                    drone.lagging = False
            return self._directives(session, lease)

    def _directives(self, session: Session, lease: Optional[Lease]) -> Dict[str, Any]:
        response: Dict[str, Any] = {
            "stop": session.stopping or session.failed is not None,
            "lease_valid": lease is not None,
        }
        if lease is not None:
            shard = self._shard(lease)
            if shard is not None and shard.kind == "exhaustive":
                response["keep_prefixes"] = len(shard.data["prefixes"])
        return response

    # ------------------------------------------------------------------ #
    # result ingestion (idempotent)
    # ------------------------------------------------------------------ #
    def ingest(
        self,
        session_id: str,
        lease_id: int,
        *,
        results: Optional[List[Dict[str, Any]]] = None,
        done: bool = False,
        released: bool = False,
        error: Optional[str] = None,
        population_stats: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Fold a drone's streamed results into the session.

        ``results`` items are ``{"record": <wire record>, "coverage":
        <wire coverage or None>}``.  Duplicates (same execution identity)
        are dropped along with their coverage, so zombie/replacement
        races settle to exactly-once.  ``done`` marks the lease's shard
        fully enumerated; ``released`` returns it unfinished (stop
        drain); ``error`` fails the session with the drone's traceback —
        executions are deterministic, so the error would reproduce on any
        drone.  ``population_stats`` is the lease's PopulationTester
        counter delta, summed into the session's running totals.
        """
        self.sweep()
        with self._lock:
            session = self._session(session_id)
            lease = self._leases.get(lease_id)
            shard = self._shard(lease) if lease is not None else None
            if shard is None and lease_id is not None:
                shard = self._find_shard_of_lease(session, lease_id)
            if lease is not None:
                lease.last_heartbeat = self._clock()
                lease.warned = False
            for item in results or []:
                record = item["record"]
                # A zombie whose shard was re-leased resolves no shard; a
                # session's shards are homogeneous, so its kind still gives
                # the right execution identity (trail vs global index).
                kind = (shard.kind if shard is not None
                        else session.shards[0].kind if session.shards else "random")
                key = protocol.execution_key(kind, record)
                if key in session.record_keys:
                    session.duplicates += 1
                    continue
                session.record_keys.add(key)
                session.records.append(record)
                coverage = item.get("coverage")
                if coverage:
                    for vehicle, mode, region, count in coverage:
                        triple = (vehicle, mode, region)
                        session.coverage_rows[triple] = (
                            session.coverage_rows.get(triple, 0) + int(count)
                        )
                self._notify_record(session_id, record, coverage)
                if record.get("violations") and session.stop_at_first_violation:
                    self._begin_stop(session)
            if population_stats:
                for key, value in protocol.decode_population_stats(
                    population_stats
                ).items():
                    session.population_stats[key] = (
                        session.population_stats.get(key, 0) + value
                    )
            if error is not None:
                self._fail(session, error)
                self._release(lease, shard, completed=False)
            elif done or released:
                if shard is not None and shard.status == "leased":
                    shard.status = "done" if done else "cancelled"
                    shard.lease_id = None
                self._release(lease, shard, completed=done)
            self._notify_finish_transitions()
            return self._directives(session, lease)

    def _find_shard_of_lease(self, session: Session, lease_id: int) -> Optional[ShardState]:
        # A zombie whose lease already expired: its shard may have been
        # requeued or re-leased.  Records still ingest (dedup protects);
        # shard state transitions are owned by the *current* lease.
        for shard in session.shards:
            if shard.lease_id == lease_id:
                return shard
        return None

    def _begin_stop(self, session: Session) -> None:
        if session.stopping:
            return
        session.stopping = True
        self._event(session.session_id, "stop: first violation ingested; draining leases")
        for shard in session.shards:
            if shard.status == "queued":
                shard.status = "cancelled"

    def _release(self, lease: Optional[Lease], shard: Optional[ShardState], *, completed: bool) -> None:
        if lease is None:
            return
        self._leases.pop(lease.lease_id, None)
        drone = self._drones.get(lease.drone_id)
        if drone is not None:
            drone.lagging = False
            if completed:
                drone.leases_completed += 1

    # ------------------------------------------------------------------ #
    # reading results and status
    # ------------------------------------------------------------------ #
    def session_status(self, session_id: str) -> Dict[str, Any]:
        """A lightweight liveness poll: counters only, no record bodies.

        The facade polls this while a session runs (and fetches the full
        :meth:`session_report` exactly once at the end), so waiting on a
        large sweep no longer re-serializes every accumulated record on
        each poll tick.
        """
        self.sweep()
        with self._lock:
            session = self._session(session_id)
            return {
                "session": session.session_id,
                "finished": session.finished,
                "failed": session.failed,
                "stopping": session.stopping,
                "records": len(session.records),
                "duplicates": session.duplicates,
                "shards": {
                    status: sum(1 for s in session.shards if s.status == status)
                    for status in ("queued", "leased", "done", "cancelled")
                },
            }

    def drop_session(self, session_id: str) -> None:
        """Forget a finished session (frees its records for a long-lived service)."""
        with self._lock:
            session = self._sessions.pop(session_id, None)
            if session is None:
                return
            for lease_id in [
                lease.lease_id
                for lease in self._leases.values()
                if lease.session_id == session_id
            ]:
                del self._leases[lease_id]

    def session_report(self, session_id: str) -> Dict[str, Any]:
        """Everything the facade needs to build a report (wire form)."""
        self.sweep()
        with self._lock:
            session = self._session(session_id)
            return {
                "session": session.session_id,
                "finished": session.finished,
                "failed": session.failed,
                "stopping": session.stopping,
                "records": list(session.records),
                "coverage": [
                    [vehicle, mode, region, count]
                    for (vehicle, mode, region), count in sorted(session.coverage_rows.items())
                ],
                "duplicates": session.duplicates,
                "population_stats": dict(session.population_stats),
                "events": list(session.events),
                "shards": [
                    {"shard_id": shard.shard_id, "status": shard.status,
                     "attempts": shard.attempts, "kind": shard.kind}
                    for shard in session.shards
                ],
            }

    def status(self) -> Dict[str, Any]:
        """The live ``/status`` view: sessions, drones, active leases."""
        self.sweep()
        with self._lock:
            now = self._clock()
            return {
                "protocol": protocol.PROTOCOL_VERSION,
                "sessions": {
                    session.session_id: {
                        "label": session.label,
                        "shards": {
                            status: sum(1 for s in session.shards if s.status == status)
                            for status in ("queued", "leased", "done", "cancelled")
                        },
                        "records": len(session.records),
                        "duplicates": session.duplicates,
                        "stopping": session.stopping,
                        "failed": session.failed,
                        "finished": session.finished,
                        "events": list(session.events),
                    }
                    for session in self._sessions.values()
                },
                "drones": {
                    drone.drone_id: {
                        "dead": drone.dead,
                        "lagging": drone.lagging,
                        "strikes": drone.strikes,
                        "last_seen_age": round(now - drone.last_seen, 3),
                        "leases_granted": drone.leases_granted,
                        "leases_completed": drone.leases_completed,
                    }
                    for drone in self._drones.values()
                },
                "active_leases": [
                    {
                        "lease": lease.lease_id,
                        "session": lease.session_id,
                        "shard_id": lease.shard_id,
                        "drone": lease.drone_id,
                        "heartbeat_age": round(now - lease.last_heartbeat, 3),
                        "executions_done": lease.executions_done,
                    }
                    for lease in self._leases.values()
                ],
            }


# --------------------------------------------------------------------- #
# the HTTP layer (pure stdlib)
# --------------------------------------------------------------------- #


class _Handler(BaseHTTPRequestHandler):
    """Routes the JSON API onto the control plane state machine."""

    # Set by ControlPlaneServer on the handler class.
    plane: ControlPlane = None  # type: ignore[assignment]
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # pragma: no cover
        pass  # keep test output quiet; /status is the observability surface

    # -- plumbing -------------------------------------------------------- #
    def _payload(self) -> Any:
        length = int(self.headers.get("Content-Length", 0))
        return protocol.loads(self.rfile.read(length))

    def _reply(self, payload: Any, status: int = 200) -> None:
        body = protocol.dumps("response", payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, message: str, status: int = 400) -> None:
        self._reply({"error": message}, status=status)

    # -- routes ---------------------------------------------------------- #
    def do_GET(self) -> None:  # noqa: N802 (stdlib handler API)
        try:
            if self.path == "/api/v1/status":
                self._reply(self.plane.status())
            elif self.path.startswith("/api/v1/session/") and self.path.endswith("/report"):
                session_id = self.path[len("/api/v1/session/") : -len("/report")]
                self._reply(self.plane.session_report(session_id))
            elif self.path.startswith("/api/v1/session/") and self.path.endswith("/status"):
                session_id = self.path[len("/api/v1/session/") : -len("/status")]
                self._reply(self.plane.session_status(session_id))
            else:
                self._error(f"unknown endpoint {self.path!r}", status=404)
        except protocol.ProtocolError as error:
            self._error(str(error))

    def do_POST(self) -> None:  # noqa: N802 (stdlib handler API)
        try:
            payload = self._payload()
            if self.path == "/api/v1/session":
                session_id = self.plane.create_session(
                    payload["shards"],
                    stop_at_first_violation=payload.get("stop_at_first_violation", False),
                    label=payload.get("label", ""),
                )
                self._reply({"session": session_id})
            elif self.path == "/api/v1/lease":
                self._reply(self._long_poll_lease(payload))
            elif self.path == "/api/v1/heartbeat":
                self._reply(
                    self.plane.heartbeat(
                        payload["session"],
                        payload["lease"],
                        executions_done=payload.get("executions_done", 0),
                        prefixes_done=payload.get("prefixes_done", 0),
                    )
                )
            elif self.path == "/api/v1/result":
                self._reply(
                    self.plane.ingest(
                        payload["session"],
                        payload["lease"],
                        results=payload.get("results"),
                        done=payload.get("done", False),
                        released=payload.get("released", False),
                        error=payload.get("error"),
                        population_stats=payload.get("population_stats"),
                    )
                )
            else:
                self._error(f"unknown endpoint {self.path!r}", status=404)
        except protocol.ProtocolError as error:
            self._error(str(error))
        except (KeyError, TypeError) as error:
            self._error(f"malformed request: {error!r}")

    def _long_poll_lease(self, payload: Any) -> Dict[str, Any]:
        deadline = time.monotonic() + min(
            float(payload.get("poll", LEASE_POLL_TIMEOUT)), LEASE_POLL_TIMEOUT
        )
        while True:
            grant = self.plane.request_lease(payload["drone"])
            if grant is not None or time.monotonic() >= deadline:
                return {"lease": grant}
            # Condition-based wait, not a busy spin: woken the instant a
            # shard is queued.  Bounded slices keep the healing sweep
            # (run by request_lease above) ticking on quiet fleets.
            self.plane.wait_for_work(min(0.25, deadline - time.monotonic()))


class _QuietThreadingHTTPServer(ThreadingHTTPServer):
    """Swallows client-disconnect noise: a drone may die (or be killed —
    that is the point of the fault-injection tests) with a request in
    flight, which must not spray tracebacks from the handler thread."""

    def handle_error(self, request: Any, client_address: Any) -> None:
        exc_type = sys.exc_info()[0]
        if exc_type is not None and issubclass(exc_type, (ConnectionError, TimeoutError)):
            return
        super().handle_error(request, client_address)


class ControlPlaneServer:
    """A threaded stdlib HTTP server wrapping one :class:`ControlPlane`.

    ``port=0`` (the default) binds an ephemeral port; read the resolved
    address from :attr:`url`.  Use as a context manager or call
    :meth:`start`/:meth:`stop`.

    Subclasses (``repro.service.MissionServer``) extend the HTTP surface
    by overriding :attr:`handler_base` (a ``_Handler`` subclass with the
    extra routes) and :meth:`_handler_attributes` (the class attributes
    bound onto the per-server handler type).
    """

    handler_base = _Handler

    def __init__(
        self,
        plane: Optional[ControlPlane] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        **plane_options: Any,
    ) -> None:
        if plane is not None and plane_options:
            raise ValueError("pass either a ControlPlane or its options, not both")
        self.plane = plane if plane is not None else ControlPlane(**plane_options)
        handler = type("BoundHandler", (self.handler_base,), self._handler_attributes())
        self._server = _QuietThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    def _handler_attributes(self) -> Dict[str, Any]:
        return {"plane": self.plane}

    @property
    def url(self) -> str:
        host, port = self._server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ControlPlaneServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ControlPlaneServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
