"""The swarm wire protocol: versioned JSON for shards, records, coverage.

The control plane (:mod:`repro.swarm.controlplane`) and the drones
(:mod:`repro.swarm.drone`) speak plain JSON over HTTP, so a fleet needs
nothing but the Python standard library on every host.  This module is
the single place that knows how the testing layer's value objects cross
the wire:

* **shards** — the :class:`~repro.testing.parallel._RandomShard` /
  :class:`~repro.testing.parallel._ExhaustiveShard` work descriptions are
  already picklable value objects; here they are serialised field-by-field
  instead, with the harness factory restricted to the *registry* form
  (:class:`~repro.testing.scenarios.ScenarioFactory`) so any host that has
  the package can rebuild the workload from its name;
* **execution records** — index, steps, trail, worker and the violation
  list; violation identity (time, monitor, message) crosses the wire
  exactly, while rich ``state`` payloads degrade to their ``repr``
  (the parity and replay machinery only ever compares identity);
* **coverage maps** — the ``(vehicle, mode, region) -> count`` counter,
  which merges order-independently on the other side.

Every message travels inside a versioned envelope; a peer speaking a
different :data:`PROTOCOL_VERSION` is rejected with a
:class:`ProtocolError` instead of mis-decoding silently.

>>> shard = _RandomShard(factory=scenario_factory("toy-closed-loop"),
...     seed=7, max_executions=4, indices=(0, 1), max_permuted=6,
...     stop_at_first_violation=False)
>>> decode_shard(encode_shard(shard)) == shard
True
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..core.monitor import Violation
from ..testing.coverage import CoverageMap
from ..testing.explorer import ExecutionRecord
from ..testing.parallel import _ExhaustiveShard, _RandomShard
from ..testing.scenarios import ScenarioFactory, scenario_factory
from ..testing.strategies import ExhaustiveStrategy, RandomStrategy

#: Version of the wire format.  Bumped on any incompatible change; both
#: ends reject mismatched envelopes eagerly.
PROTOCOL_VERSION = 1

_JSON_SCALARS = (type(None), bool, int, float, str)


class ProtocolError(ValueError):
    """A message could not be encoded or decoded under this protocol."""


# --------------------------------------------------------------------- #
# the envelope
# --------------------------------------------------------------------- #


def envelope(msg_type: str, payload: Any) -> Dict[str, Any]:
    """Wrap a payload in the versioned message envelope."""
    return {"v": PROTOCOL_VERSION, "type": msg_type, "payload": payload}


def open_envelope(message: Any, expect: Optional[str] = None) -> Any:
    """Check version (and optionally type), return the payload.

    >>> open_envelope(envelope("status", {"ok": True}), expect="status")
    {'ok': True}
    >>> open_envelope({"v": 99, "type": "status", "payload": {}})
    Traceback (most recent call last):
        ...
    repro.swarm.protocol.ProtocolError: protocol version mismatch: got 99, speak 1
    """
    if not isinstance(message, dict) or "v" not in message:
        raise ProtocolError(f"not a protocol envelope: {message!r}")
    if message["v"] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {message['v']}, speak {PROTOCOL_VERSION}"
        )
    if expect is not None and message.get("type") != expect:
        raise ProtocolError(f"expected a {expect!r} message, got {message.get('type')!r}")
    return message.get("payload")


def dumps(msg_type: str, payload: Any) -> bytes:
    """Serialise an enveloped message to UTF-8 JSON bytes."""
    return json.dumps(envelope(msg_type, payload)).encode("utf-8")


def loads(raw: bytes, expect: Optional[str] = None) -> Any:
    """Parse UTF-8 JSON bytes and open the envelope."""
    try:
        message = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message: {error}") from None
    return open_envelope(message, expect=expect)


# --------------------------------------------------------------------- #
# factories (registry names only: the portable workload description)
# --------------------------------------------------------------------- #


def _check_json_safe(value: Any, what: str) -> Any:
    if isinstance(value, _JSON_SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        return [_check_json_safe(item, what) for item in value]
    if isinstance(value, dict):
        return {
            _require_str(key, what): _check_json_safe(item, what)
            for key, item in value.items()
        }
    raise ProtocolError(f"{what} must be JSON-safe, got {type(value).__name__}: {value!r}")


def _require_str(value: Any, what: str) -> str:
    if not isinstance(value, str):
        raise ProtocolError(f"{what} keys must be strings, got {value!r}")
    return value


def encode_factory(factory: Any) -> Dict[str, Any]:
    """Serialise a harness factory; only registry scenarios travel.

    Arbitrary callables cannot cross host boundaries — the swarm requires
    the portable form, a scenario *name* plus JSON-safe overrides, which
    every drone rebuilds from its own registry.
    """
    if not isinstance(factory, ScenarioFactory):
        raise ProtocolError(
            "the swarm ships workloads by scenario name; pass scenario=<name> "
            f"(got a {type(factory).__name__} harness factory)"
        )
    overrides = {key: _check_json_safe(value, f"scenario override {key!r}")
                 for key, value in factory.overrides}
    return {"scenario": factory.name, "overrides": overrides}


def decode_factory(data: Dict[str, Any]) -> ScenarioFactory:
    """Rebuild the factory from the local scenario registry."""
    overrides = {
        key: _tuplify(value) for key, value in data.get("overrides", {}).items()
    }
    return scenario_factory(data["scenario"], **overrides)


def _tuplify(value: Any) -> Any:
    # JSON has no tuples; scenario overrides that were tuples come back as
    # lists.  Builders accept sequences either way, but the factory's
    # identity (and thus warm-tester caching) is stabler with tuples.
    if isinstance(value, list):
        return tuple(_tuplify(item) for item in value)
    return value


# --------------------------------------------------------------------- #
# shards
# --------------------------------------------------------------------- #


def encode_shard(shard: Any) -> Dict[str, Any]:
    """Serialise a random or exhaustive shard description."""
    common = {
        "factory": encode_factory(shard.factory),
        "max_executions": shard.max_executions,
        "max_permuted": shard.max_permuted,
        "stop_at_first_violation": shard.stop_at_first_violation,
        "monitor_window": shard.monitor_window,
        "reuse_instances": shard.reuse_instances,
        "track_coverage": shard.track_coverage,
        "population_size": shard.population_size,
    }
    if isinstance(shard, _RandomShard):
        return {"kind": "random", "seed": shard.seed,
                "indices": list(shard.indices), **common}
    if isinstance(shard, _ExhaustiveShard):
        return {"kind": "exhaustive", "max_depth": shard.max_depth,
                "prefixes": [list(prefix) for prefix in shard.prefixes], **common}
    raise ProtocolError(f"unknown shard type: {type(shard).__name__}")


def decode_shard(data: Dict[str, Any]) -> Any:
    """Rebuild a shard value object from its wire form."""
    try:
        kind = data["kind"]
        common = dict(
            factory=decode_factory(data["factory"]),
            max_executions=int(data["max_executions"]),
            max_permuted=int(data["max_permuted"]),
            stop_at_first_violation=bool(data["stop_at_first_violation"]),
            monitor_window=int(data["monitor_window"]),
            reuse_instances=bool(data["reuse_instances"]),
            track_coverage=bool(data["track_coverage"]),
            # Read with .get: messages from peers predating the population
            # plane simply run the serial tester.
            population_size=(
                None
                if data.get("population_size") is None
                else int(data["population_size"])
            ),
        )
        if kind == "random":
            return _RandomShard(
                seed=int(data["seed"]),
                indices=tuple(int(index) for index in data["indices"]),
                **common,
            )
        if kind == "exhaustive":
            return _ExhaustiveShard(
                max_depth=int(data["max_depth"]),
                prefixes=tuple(tuple(int(c) for c in prefix) for prefix in data["prefixes"]),
                **common,
            )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed shard: {error}") from None
    raise ProtocolError(f"unknown shard kind: {kind!r}")


def shard_prefixes(shard: Any) -> Tuple[Tuple[int, ...], ...]:
    """The exhaustive shard's prefixes (empty for random shards)."""
    return getattr(shard, "prefixes", ())


# --------------------------------------------------------------------- #
# strategies (the mission service's client-facing budget description)
# --------------------------------------------------------------------- #


def encode_strategy(strategy: Any) -> Dict[str, Any]:
    """Serialise a shardable choice strategy (random or exhaustive)."""
    if isinstance(strategy, RandomStrategy):
        return {
            "kind": "random",
            "seed": strategy.seed,
            "max_executions": strategy.max_executions,
        }
    if isinstance(strategy, ExhaustiveStrategy):
        return {
            "kind": "exhaustive",
            "max_depth": strategy.max_depth,
            "max_executions": strategy.max_executions,
        }
    raise ProtocolError(f"unshardable strategy type: {type(strategy).__name__}")


def decode_strategy(data: Dict[str, Any]) -> Any:
    """Rebuild a strategy from its wire form."""
    try:
        kind = data["kind"]
        if kind == "random":
            return RandomStrategy(
                seed=int(data.get("seed", 0)),
                max_executions=int(data["max_executions"]),
            )
        if kind == "exhaustive":
            return ExhaustiveStrategy(
                max_depth=int(data.get("max_depth", 32)),
                max_executions=int(data["max_executions"]),
            )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed strategy: {error}") from None
    raise ProtocolError(f"unknown strategy kind: {kind!r}")


# --------------------------------------------------------------------- #
# violations / records / coverage
# --------------------------------------------------------------------- #


def encode_violation(violation: Violation) -> Dict[str, Any]:
    """Serialise a violation; non-JSON states degrade to their ``repr``."""
    state: Any = violation.state
    if not isinstance(state, _JSON_SCALARS):
        state = repr(state)
    return {
        "time": violation.time,
        "monitor": violation.monitor,
        "message": violation.message,
        "state": state,
    }


def decode_violation(data: Dict[str, Any]) -> Violation:
    return Violation(
        time=float(data["time"]),
        monitor=data["monitor"],
        message=data["message"],
        state=data.get("state"),
    )


def encode_record(record: ExecutionRecord) -> Dict[str, Any]:
    """Serialise one execution record (trail included: replay identity)."""
    return {
        "index": record.index,
        "steps": record.steps,
        "violations": [encode_violation(violation) for violation in record.violations],
        "trail": list(record.trail) if record.trail is not None else None,
        "worker": record.worker,
    }


def decode_record(data: Dict[str, Any]) -> ExecutionRecord:
    try:
        return ExecutionRecord(
            index=int(data["index"]),
            steps=int(data["steps"]),
            violations=[decode_violation(violation) for violation in data["violations"]],
            trail=None if data.get("trail") is None else [int(c) for c in data["trail"]],
            worker=data.get("worker"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed execution record: {error}") from None


def encode_coverage(coverage: Optional[CoverageMap]) -> Optional[List[List[Any]]]:
    """Serialise a coverage map as ``[vehicle, mode, region, count]`` rows."""
    if coverage is None:
        return None
    return [
        [vehicle, mode, region, count]
        for (vehicle, mode, region), count in sorted(coverage.counts.items())
    ]


def decode_coverage(data: Optional[List[List[Any]]]) -> Optional[CoverageMap]:
    if data is None:
        return None
    coverage = CoverageMap()
    try:
        for vehicle, mode, region, count in data:
            coverage.record(str(vehicle), str(mode), str(region), count=int(count))
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"malformed coverage map: {error}") from None
    return coverage


# --------------------------------------------------------------------- #
# population statistics (the vectorized plane's bookkeeping)
# --------------------------------------------------------------------- #


def snapshot_population_stats(tester: Any) -> Optional[Dict[str, int]]:
    """The current counter values of a tester's ``PopulationStats``.

    Returns ``None`` for testers without a ``stats`` attribute (the plain
    serial :class:`~repro.testing.explorer.SystematicTester`), so callers
    can treat "no population plane" and "nothing to report" uniformly.
    """
    stats = getattr(tester, "stats", None)
    if stats is None:
        return None
    return {
        key: value
        for key, value in vars(stats).items()
        if isinstance(value, int) and not isinstance(value, bool)
    }


def population_stats_delta(
    tester: Any, before: Optional[Dict[str, int]]
) -> Optional[Dict[str, int]]:
    """Counter movement on ``tester`` since a :func:`snapshot_population_stats`.

    Drones report per-lease *deltas*, not absolute counters: a warm drone
    reuses one tester across consecutive leases of the same workload, so
    absolute values would double-count every counter from the second
    lease on.  Deltas sum correctly on the control plane no matter how
    leases land.  Returns ``None`` when there is no population plane or
    nothing moved.
    """
    if before is None:
        return None
    after = snapshot_population_stats(tester)
    if after is None:
        return None
    delta = {key: value - before.get(key, 0) for key, value in after.items()}
    return delta if any(delta.values()) else None


def decode_population_stats(data: Any) -> Dict[str, int]:
    """Validate a wire-form population-stats delta (string -> int)."""
    if not isinstance(data, dict):
        raise ProtocolError(f"population stats must be an object, got {data!r}")
    try:
        return {_require_str(key, "population stats"): int(value)
                for key, value in data.items()}
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"malformed population stats: {error}") from None


# --------------------------------------------------------------------- #
# execution identity (what makes result ingestion idempotent)
# --------------------------------------------------------------------- #


def execution_key(shard_kind: str, record_data: Dict[str, Any]) -> Tuple[Any, ...]:
    """The deduplication identity of one wire-form execution record.

    Random sweeps derive execution *i* entirely from ``(seed, i)``, so the
    global index *is* the execution's identity.  Exhaustive executions are
    identified by their full choice trail (trails are unique within an
    enumeration and stable across shard re-partitioning).  A re-leased
    shard that races its zombie original therefore produces byte-identical
    keys for the same executions — the control plane keeps the first copy
    of each and drops the rest, which is what makes re-leasing (and
    adaptive subtree splits) unable to double-count.
    """
    if shard_kind == "random":
        return ("i", int(record_data["index"]))
    trail = record_data.get("trail") or []
    return ("t", tuple(int(choice) for choice in trail))
