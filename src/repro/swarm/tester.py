"""The swarm facade: ``ParallelTester`` semantics over a drone fleet.

:class:`SwarmTester` mirrors :class:`~repro.testing.parallel.ParallelTester`
exactly — same sharding (execution-index slices for random sweeps,
trail-prefix partitions for exhaustive ones), same deterministic
aggregation (:meth:`~repro.testing.parallel.ParallelTester._finalise`),
same early-stop and serial replay confirmation — but the shards travel
over the :mod:`wire protocol <repro.swarm.protocol>` to a control plane
and a fleet of drones instead of an in-host process pool.  Because every
execution is a pure function of the shard description, the resulting
:class:`SwarmReport` carries the identical violations and coverage a
``ParallelTester`` run (or the serial tester) would produce — including
after a drone dies mid-session, since expired leases are re-issued and
ingestion dedupes by execution identity.

Two deployment shapes:

* **localhost (default)** — the tester hosts its own
  :class:`~repro.swarm.controlplane.ControlPlaneServer` and spawns
  ``drones`` worker threads (or processes with
  ``drone_processes=True``), which makes a swarm run CI-runnable in one
  Python invocation;
* **remote** — pass ``control_plane_url=`` to submit the session to an
  already-running control plane whose standing fleet does the work.

>>> from repro.testing import RandomStrategy
>>> report = SwarmTester("toy-closed-loop",
...     scenario_overrides={"broken_ttf": True},
...     strategy=RandomStrategy(seed=0, max_executions=6),
...     drones=2).explore()
>>> report.ok, report.all_confirmed
(False, True)
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..testing.parallel import ParallelReport, ParallelTester
from ..testing.strategies import ChoiceStrategy
from . import protocol
from .controlplane import ControlPlaneServer
from .drone import Drone, SwarmUnavailable, get_json, post_json, run_drone


@dataclass
class SwarmReport(ParallelReport):
    """A :class:`ParallelReport` plus swarm-run bookkeeping."""

    #: Duplicate executions the control plane's idempotent ingestion
    #: dropped (zombie/re-lease/split races; 0 on a healthy run).
    duplicates: int = 0
    #: The session's self-healing event log (warnings, re-leases, splits,
    #: drone deaths) — the report-side view of the escalation ladder.
    events: List[str] = field(default_factory=list)
    #: Fleet-wide :class:`~repro.testing.population.PopulationStats`
    #: counters, summed from every lease's per-drone delta (empty when
    #: no shard ran the population plane).
    population_stats: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        base = super().summary()
        healed = f", {len(self.events)} control-plane event(s)" if self.events else ""
        return f"{base.replace('worker(s)', 'drone(s)')}{healed}"


class SwarmTester(ParallelTester):
    """Shards a systematic-testing run across a drone swarm.

    Accepts every :class:`~repro.testing.parallel.ParallelTester` option
    except ``harness_factory`` (workloads must be registry scenarios —
    the portable description drones rebuild by name) plus:

    ``drones``
        fleet size for the self-hosted localhost mode (ignored with
        ``control_plane_url``, where the standing fleet decides).
    ``drone_processes``
        run localhost drones as OS processes instead of threads (used by
        the fault-injection tests, which need something to SIGKILL).
    ``control_plane_url``
        submit to an existing control plane instead of self-hosting.
    ``heartbeat_timeout`` / ``split_lagging_after``
        self-healing knobs of the self-hosted control plane.
    ``deadline``
        overall wall-clock bound on one :meth:`explore` session.
    """

    def __init__(
        self,
        scenario: str,
        *,
        strategy: Optional[ChoiceStrategy] = None,
        drones: int = 2,
        drone_processes: bool = False,
        control_plane_url: Optional[str] = None,
        heartbeat_timeout: float = 5.0,
        split_lagging_after: float = 1.0,
        deadline: float = 120.0,
        scenario_overrides: Optional[dict] = None,
        max_permuted: int = 6,
        monitor_window: int = 1,
        reuse_instances: bool = True,
        track_coverage: bool = False,
        population_size: Optional[int] = None,
    ) -> None:
        if drones < 1:
            raise ValueError("a swarm needs at least one drone")
        super().__init__(
            scenario,
            strategy=strategy,
            workers=drones,
            max_permuted=max_permuted,
            scenario_overrides=scenario_overrides,
            monitor_window=monitor_window,
            reuse_instances=reuse_instances,
            track_coverage=track_coverage,
            population_size=population_size,
        )
        self.drones = drones
        self.drone_processes = drone_processes
        self.control_plane_url = control_plane_url
        self.heartbeat_timeout = heartbeat_timeout
        self.split_lagging_after = split_lagging_after
        self.deadline = deadline
        #: The last session's id and control-plane URL (for postmortems).
        self.last_session: Optional[str] = None
        self.last_url: Optional[str] = None

    # ------------------------------------------------------------------ #
    # the ParallelTester execution hook
    # ------------------------------------------------------------------ #
    def explore(self, *args: Any, **kwargs: Any) -> SwarmReport:
        report = super().explore(*args, **kwargs)
        assert isinstance(report, SwarmReport)
        return report

    def _new_report(self, workers: int, partitions: List) -> SwarmReport:
        return SwarmReport(workers=workers, partitions=partitions)

    def _execute(self, shards: Sequence[Any], report: ParallelReport) -> None:
        encoded = [protocol.encode_shard(shard) for shard in shards]
        stop_at_first_violation = bool(shards[0].stop_at_first_violation)
        if self.control_plane_url is not None:
            self._run_session(self.control_plane_url, encoded, stop_at_first_violation, report)
            return
        server = ControlPlaneServer(
            heartbeat_timeout=self.heartbeat_timeout,
            split_lagging_after=self.split_lagging_after,
        ).start()
        fleet = _LocalFleet(server.url, self.drones, processes=self.drone_processes)
        try:
            # Session first, fleet second: drones find work on their very
            # first poll instead of burning their idle budget.
            self._run_session(server.url, encoded, stop_at_first_violation, report,
                              fleet=fleet)
        finally:
            fleet.stop()
            server.stop()

    def _run_session(
        self,
        url: str,
        encoded_shards: List[Dict[str, Any]],
        stop_at_first_violation: bool,
        report: ParallelReport,
        fleet: Optional["_LocalFleet"] = None,
    ) -> None:
        created = post_json(url, "/api/v1/session", {
            "shards": encoded_shards,
            "stop_at_first_violation": stop_at_first_violation,
            "label": getattr(self.harness_factory, "name", ""),
        })
        session_id = created["session"]
        self.last_session, self.last_url = session_id, url
        if fleet is not None:
            fleet.start()
        deadline = time.monotonic() + self.deadline
        # Poll the lightweight status endpoint (counters only) while the
        # session runs, with capped exponential backoff, and fetch the
        # full record stream exactly once at the end — the old loop
        # re-serialized every accumulated record on each 50 ms tick,
        # making the wait quadratic in session size.
        poll = 0.01
        use_status = True
        while True:
            if use_status:
                try:
                    summary = get_json(url, f"/api/v1/session/{session_id}/status")
                except protocol.ProtocolError:
                    # A legacy control plane without the status route:
                    # degrade to polling the full report as before.
                    use_status = False
                    continue
            else:
                summary = get_json(url, f"/api/v1/session/{session_id}/report")
            if summary["finished"]:
                break
            if time.monotonic() >= deadline:
                raise RuntimeError(
                    f"swarm session {session_id} missed its {self.deadline:.0f}s "
                    f"deadline; last status: {summary['shards']}"
                )
            time.sleep(poll)
            poll = min(poll * 2.0, 0.25)
        full = get_json(url, f"/api/v1/session/{session_id}/report")
        self._ingest_report(full, report)
        if full["failed"] is not None:
            raise RuntimeError(
                f"parallel exploration failed in a worker:\n{full['failed']}"
            )

    def _ingest_report(self, summary: Dict[str, Any], report: ParallelReport) -> None:
        for record_data in summary["records"]:
            report.executions.append(protocol.decode_record(record_data))
        coverage = protocol.decode_coverage(summary["coverage"])
        if coverage is not None:
            report.coverage.merge(coverage)
        report.completed_workers = sum(
            1 for shard in summary["shards"] if shard["status"] == "done"
        )
        if isinstance(report, SwarmReport):
            report.duplicates = summary["duplicates"]
            report.events = list(summary["events"])
            # .get: a legacy control plane's report has no stats section.
            report.population_stats = dict(summary.get("population_stats") or {})
        report.invalidate_caches()


class _LocalFleet:
    """The self-hosted drone fleet: N threads or N OS processes."""

    def __init__(self, url: str, drones: int, *, processes: bool) -> None:
        self.url = url
        self.count = drones
        self.processes = processes
        self._threads: List[threading.Thread] = []
        self._drones: List[Drone] = []
        self._procs: List[Any] = []

    def start(self) -> None:
        if self.processes:
            context = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
            for index in range(self.count):
                process = context.Process(
                    target=run_drone,
                    args=(self.url,),
                    kwargs={
                        "drone_id": f"proc-drone-{index}",
                        "worker_index": index,
                        "exit_when_idle": True,
                        "idle_timeout": 2.0,
                        "heartbeat_interval": 0.25,
                    },
                    daemon=True,
                )
                process.start()
                self._procs.append(process)
            return
        for index in range(self.count):
            drone = Drone(
                self.url,
                drone_id=f"thread-drone-{index}",
                worker_index=index,
                exit_when_idle=True,
                idle_timeout=2.0,
                heartbeat_interval=0.25,
            )
            thread = threading.Thread(target=drone.run, daemon=True)
            thread.start()
            self._drones.append(drone)
            self._threads.append(thread)

    def stop(self) -> None:
        for drone in self._drones:
            drone.stop()
        for thread in self._threads:
            thread.join(timeout=10.0)
        for process in self._procs:
            process.join(timeout=10.0)
        for process in self._procs:
            if process.is_alive():  # pragma: no cover - stuck-drone safety net
                process.terminate()
                process.join(timeout=5.0)

    @property
    def handles(self) -> List[Any]:
        """Raw process handles (fault-injection tests SIGKILL these)."""
        return list(self._procs)
