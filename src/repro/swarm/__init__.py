"""Multi-host exploration swarm: a self-healing control plane + drones.

The in-host :class:`~repro.testing.parallel.ParallelTester` tops out at
one machine's process pool.  This package lifts the very same shard
descriptions onto a network work queue so a sweep spans many hosts:

* :mod:`~repro.swarm.protocol` — the versioned JSON wire format for
  shards, execution records, violations and coverage maps;
* :mod:`~repro.swarm.controlplane` — sessions, the shard lease queue,
  idempotent result ingestion, the ``/status`` endpoint, and the
  self-healing escalation ladder (warn → re-lease → drone dead →
  session fails only with no drone left);
* :mod:`~repro.swarm.drone` — the worker: long-poll a lease, run it on
  the warm reset-and-reuse tester, stream records + coverage home,
  heartbeat while running;
* :mod:`~repro.swarm.tester` — :class:`SwarmTester`, the facade with
  ``ParallelTester.explore()`` semantics (and a localhost self-hosted
  mode that makes swarm runs CI-runnable in one process).

Everything is pure standard library (plus the repo itself) — a fleet
host needs no extra dependencies.  See ``docs/swarm.md``.
"""

from .controlplane import ControlPlane, ControlPlaneServer
from .drone import Drone, run_drone
from .protocol import PROTOCOL_VERSION, ProtocolError
from .tester import SwarmReport, SwarmTester

__all__ = [
    "PROTOCOL_VERSION",
    "ControlPlane",
    "ControlPlaneServer",
    "Drone",
    "ProtocolError",
    "SwarmReport",
    "SwarmTester",
    "run_drone",
]
