"""The swarm drone: lease a shard, run it warm, stream results home.

A drone is one exploration worker on one host.  It long-polls the
control plane (:mod:`repro.swarm.controlplane`) for a shard lease,
rebuilds the workload from the scenario registry, runs it through the
same warm reset-and-reuse :class:`~repro.testing.SystematicTester` path
the in-host process pool uses, and streams each
:class:`~repro.testing.explorer.ExecutionRecord` (plus the execution's
own coverage delta) back as it finishes.  While a shard runs, a
background thread posts proof-of-life heartbeats; the responses carry
the control plane's directives — ``stop`` (a violation ended the
session: drain and release the lease) and ``keep_prefixes`` (an
adaptive split shrank this lease's exhaustive prefix budget).

Determinism makes all of this safe: execution *i* of a random sweep and
trail *t* of an exhaustive enumeration produce identical records on any
drone, so the control plane's idempotent ingestion can reconcile
zombies, re-leases and split races without coordination.
"""

from __future__ import annotations

import itertools
import json
import random
import socket
import threading
import time
import traceback
import urllib.error
import urllib.request
from collections import Counter
from typing import Any, Dict, Optional

from ..testing.coverage import CoverageMap
from ..testing.explorer import SystematicTester
from ..testing.parallel import _RandomShard, shard_tester
from ..testing.strategies import ExhaustiveStrategy, RandomStrategy, start_execution
from . import protocol

_DRONE_IDS = itertools.count(1)


# --------------------------------------------------------------------- #
# the JSON-over-HTTP client (shared with the facade)
# --------------------------------------------------------------------- #


class SwarmUnavailable(ConnectionError):
    """The control plane could not be reached (or replied with an error)."""


def post_json(base_url: str, path: str, payload: Any, *, timeout: float = 10.0) -> Any:
    """POST an enveloped JSON payload; return the enveloped response payload."""
    request = urllib.request.Request(
        base_url + path,
        data=protocol.dumps("request", payload),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    return _round_trip(request, timeout)


def get_json(base_url: str, path: str, *, timeout: float = 10.0) -> Any:
    """GET an endpoint; return the enveloped response payload."""
    return _round_trip(urllib.request.Request(base_url + path, method="GET"), timeout)


def _round_trip(request: urllib.request.Request, timeout: float) -> Any:
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return protocol.loads(response.read())
    except urllib.error.HTTPError as error:
        body = error.read()
        try:
            detail = protocol.loads(body).get("error", body.decode("utf-8", "replace"))
        except protocol.ProtocolError:
            detail = body.decode("utf-8", "replace")
        raise protocol.ProtocolError(f"control plane rejected the request: {detail}") from None
    except (urllib.error.URLError, socket.timeout, ConnectionError, OSError) as error:
        raise SwarmUnavailable(str(error)) from None


# --------------------------------------------------------------------- #
# the drone
# --------------------------------------------------------------------- #


class Drone:
    """One worker of the exploration swarm.

    ``worker_index`` (optional) stamps streamed records' ``worker`` field
    so swarm reports read like pool reports.  ``exit_when_idle`` makes
    :meth:`run` return once no lease has been granted for
    ``idle_timeout`` seconds — the mode the localhost facade uses; a
    standing fleet drone runs with ``exit_when_idle=False`` and polls
    forever (until the control plane calls it dead or :meth:`stop` is
    called).
    """

    def __init__(
        self,
        base_url: str,
        drone_id: Optional[str] = None,
        *,
        worker_index: Optional[int] = None,
        heartbeat_interval: float = 0.5,
        poll_interval: float = 0.1,
        exit_when_idle: bool = True,
        idle_timeout: float = 5.0,
        http_timeout: float = 10.0,
        connection_retries: int = 3,
        result_retries: int = 4,
        max_backoff: float = 2.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.drone_id = drone_id or f"drone-{socket.gethostname()}-{next(_DRONE_IDS)}"
        self.worker_index = worker_index
        self.heartbeat_interval = heartbeat_interval
        self.poll_interval = poll_interval
        self.exit_when_idle = exit_when_idle
        self.idle_timeout = idle_timeout
        self.http_timeout = http_timeout
        self.connection_retries = connection_retries
        self.result_retries = result_retries
        self.max_backoff = max_backoff
        self.leases_run = 0
        self._stop = threading.Event()
        # Jitter source for backoff sleeps, seeded per drone id: a fleet
        # restarting against a recovering control plane must not retry in
        # lockstep, and a deterministic per-drone stream keeps tests exact.
        self._backoff_rng = random.Random(self.drone_id)
        # One warm tester per workload identity: consecutive leases of the
        # same scenario reuse the built model instance across shards (the
        # zero-rebuild hot path, exactly as the process pool's workers).
        self._testers: Dict[Any, SystematicTester] = {}

    def stop(self) -> None:
        """Ask the drone to exit after the current execution."""
        self._stop.set()

    # ------------------------------------------------------------------ #
    # the poll loop
    # ------------------------------------------------------------------ #
    def run(self) -> int:
        """Poll for leases until told to stop; returns leases completed."""
        idle_since: Optional[float] = None
        failures = 0
        while not self._stop.is_set():
            try:
                grant = self._post("/api/v1/lease", {"drone": self.drone_id, "poll": 1.0})
                failures = 0
            except SwarmUnavailable:
                failures += 1
                if failures > self.connection_retries:
                    break  # the control plane is gone; nothing left to serve
                # Capped exponential backoff with jitter: a restarting
                # control plane must not be hammered in lockstep by every
                # drone of the fleet on the fixed poll cadence.
                self._stop.wait(self.backoff_delay(failures - 1))
                continue
            lease = grant.get("lease")
            if isinstance(lease, dict) and lease.get("dead"):
                break  # the control plane buried us; a zombie must not work
            if not lease:
                now = time.monotonic()
                idle_since = idle_since if idle_since is not None else now
                if self.exit_when_idle and now - idle_since >= self.idle_timeout:
                    break
                # Interruptible idle wait: stop() during an idle stretch
                # must return promptly, not after a full poll interval.
                self._stop.wait(self.poll_interval)
                continue
            idle_since = None
            self._run_lease(lease)
            self.leases_run += 1
        return self.leases_run

    def _post(self, path: str, payload: Any) -> Any:
        return post_json(self.base_url, path, payload, timeout=self.http_timeout)

    # ------------------------------------------------------------------ #
    # one lease
    # ------------------------------------------------------------------ #
    def _run_lease(self, grant: Dict[str, Any]) -> None:
        session_id, lease_id = grant["session"], grant["lease"]
        try:
            shard = protocol.decode_shard(grant["shard"])
        except protocol.ProtocolError:
            self._finish(session_id, lease_id, error=traceback.format_exc())
            return
        state = _LeaseState(initial_prefixes=len(protocol.shard_prefixes(shard)))
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, args=(session_id, lease_id, state), daemon=True
        )
        heartbeat.start()
        try:
            # Warm (or build) the shard's tester up front so the lease's
            # population-stats delta brackets exactly this lease's work —
            # the tester is cached, so _run_* below get the same instance.
            tester = self._tester(shard)
            stats_before = protocol.snapshot_population_stats(tester)
            if isinstance(shard, _RandomShard):
                completed = self._run_random(session_id, lease_id, shard, state)
            else:
                completed = self._run_exhaustive(session_id, lease_id, shard, state)
            flags: Dict[str, Any] = {"done": completed, "released": not completed}
            stats_delta = protocol.population_stats_delta(tester, stats_before)
            if stats_delta is not None:
                flags["population_stats"] = stats_delta
            self._finish(session_id, lease_id, **flags)
        except SwarmUnavailable:
            pass  # lease will expire and be re-leased; results so far are ingested
        except Exception:
            self._finish(session_id, lease_id, error=traceback.format_exc())
        finally:
            state.finished.set()
            heartbeat.join(timeout=2.0 * self.heartbeat_interval + 1.0)

    def backoff_delay(self, attempt: int) -> float:
        """Jittered, capped exponential backoff delay for retry ``attempt``.

        The uncapped curve is ``poll_interval * 2**attempt``, clamped to
        ``max_backoff``; the jitter draws uniformly from the upper half of
        that delay (50–100%), so retries spread out without ever
        collapsing to zero sleep.
        """
        capped = min(self.max_backoff, self.poll_interval * (2.0 ** max(0, attempt)))
        return capped * (0.5 + 0.5 * self._backoff_rng.random())

    def _finish(self, session_id: str, lease_id: int, **flags: Any) -> None:
        """Post the lease's final "done"/result flags, retrying transient blips.

        This post is what turns a *finished* shard into a *completed*
        lease — silently dropping it on one ``SwarmUnavailable`` would
        forfeit all the work to the re-lease ladder (the lease expires and
        another drone re-runs the whole shard).  So transient failures are
        retried ``result_retries`` times with capped exponential backoff
        plus jitter; only after the budget is exhausted does the drone
        give up and let the escalation ladder take over.
        """
        payload = {"session": session_id, "lease": lease_id, **flags}
        for attempt in range(self.result_retries + 1):
            try:
                self._post("/api/v1/result", payload)
                return
            except SwarmUnavailable:
                if attempt >= self.result_retries or self._stop.is_set():
                    return  # the lease expires; the re-lease ladder recovers
                self._stop.wait(self.backoff_delay(attempt))

    def _heartbeat_loop(self, session_id: str, lease_id: int, state: "_LeaseState") -> None:
        while not state.finished.wait(self.heartbeat_interval):
            try:
                directives = self._post(
                    "/api/v1/heartbeat",
                    {
                        "session": session_id,
                        "lease": lease_id,
                        "executions_done": state.executions_done,
                        "prefixes_done": state.prefixes_done,
                    },
                )
            except (SwarmUnavailable, protocol.ProtocolError):
                continue  # a missed heartbeat is the control plane's problem to judge
            state.apply(directives)

    # ------------------------------------------------------------------ #
    # running shards (the same warm path the process pool uses)
    # ------------------------------------------------------------------ #
    def _tester(self, shard: Any) -> SystematicTester:
        key = (
            shard.factory,
            shard.max_permuted,
            shard.monitor_window,
            shard.reuse_instances,
            shard.track_coverage,
            shard.population_size,
        )
        tester = self._testers.get(key)
        if tester is None:
            tester = shard_tester(shard)
            self._testers[key] = tester
        return tester

    def _stream(
        self,
        session_id: str,
        lease_id: int,
        tester: SystematicTester,
        record: Any,
        coverage_before: Optional[Counter],
        state: "_LeaseState",
    ) -> bool:
        """Post one record (+ its coverage delta); True means keep going."""
        coverage = None
        if coverage_before is not None:
            delta = CoverageMap(counts=Counter(tester.coverage.counts))
            delta.counts.subtract(coverage_before)
            delta.counts = +delta.counts  # drop zero entries
            coverage = protocol.encode_coverage(delta)
        directives = self._post(
            "/api/v1/result",
            {
                "session": session_id,
                "lease": lease_id,
                "results": [{"record": protocol.encode_record(record), "coverage": coverage}],
            },
        )
        state.apply(directives)
        return not state.stop_requested and not self._stop.is_set()

    def _snapshot(self, tester: SystematicTester, shard: Any) -> Optional[Counter]:
        if not shard.track_coverage:
            return None
        return Counter(tester.coverage.counts)

    def _run_random(
        self, session_id: str, lease_id: int, shard: _RandomShard, state: "_LeaseState"
    ) -> bool:
        strategy = RandomStrategy(seed=shard.seed, max_executions=shard.max_executions)
        tester = self._tester(shard)
        tester.strategy = strategy
        for index in shard.indices:
            if state.stop_requested or self._stop.is_set():
                return False
            before = self._snapshot(tester, shard)
            strategy.seek(index)
            strategy.begin_execution()
            record = tester.run_single(index)
            record.worker = self.worker_index
            state.executions_done += 1
            if not self._stream(session_id, lease_id, tester, record, before, state):
                # A violation may legitimately end the session; the shard
                # is complete iff this was its last index anyway.
                return index == shard.indices[-1]
        return True

    def _run_exhaustive(
        self, session_id: str, lease_id: int, shard: Any, state: "_LeaseState"
    ) -> bool:
        tester = self._tester(shard)
        local_index = 0
        position = 0
        while position < min(len(shard.prefixes), state.keep_prefixes):
            if state.stop_requested or self._stop.is_set():
                return False
            prefix = shard.prefixes[position]
            strategy = ExhaustiveStrategy(
                max_depth=shard.max_depth,
                max_executions=shard.max_executions,
                prefix=prefix,
            )
            tester.strategy = strategy
            while strategy.has_more_executions():
                if state.stop_requested or self._stop.is_set():
                    return False
                if not start_execution(strategy):
                    break
                before = self._snapshot(tester, shard)
                record = tester.run_single(local_index)
                record.worker = self.worker_index
                local_index += 1
                state.executions_done += 1
                if not self._stream(session_id, lease_id, tester, record, before, state):
                    return False
            position += 1
            state.prefixes_done = position
        # Either every prefix ran, or an adaptive split shrank the budget
        # to exactly the prefixes this drone already covered — both mean
        # the (possibly re-partitioned) shard is fully enumerated.
        return True


class _LeaseState:
    """Mutable per-lease state shared between run loop and heartbeats."""

    def __init__(self, initial_prefixes: int) -> None:
        self.finished = threading.Event()
        self.stop_requested = False
        self.executions_done = 0
        self.prefixes_done = 0
        self.keep_prefixes = initial_prefixes if initial_prefixes else 1

    def apply(self, directives: Dict[str, Any]) -> None:
        if directives.get("stop"):
            self.stop_requested = True
        keep = directives.get("keep_prefixes")
        if isinstance(keep, int):
            self.keep_prefixes = keep


def run_drone(base_url: str, drone_id: Optional[str] = None, **options: Any) -> int:
    """Module-level entry point (picklable for ``multiprocessing``)."""
    return Drone(base_url, drone_id, **options).run()


def main(argv: Optional[list] = None) -> int:  # pragma: no cover - CLI convenience
    """``python -m repro.swarm.drone <control-plane-url> [drone-id]``."""
    import sys

    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.swarm.drone <control-plane-url> [drone-id]")
        return 2
    url = args[0]
    drone_id = args[1] if len(args) > 1 else None
    leases = Drone(url, drone_id, exit_when_idle=False).run()
    print(json.dumps({"drone": drone_id, "leases": leases}))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
