"""Nodes: the periodic processes of a SOTER program.

A node (Section III-A of the paper) is a tuple ``(N, I, O, T, C)``: a name,
subscribed topics, published topics, a transition relation, and a periodic
time-table.  Here the transition relation is the node's ``step`` method
(local state lives on the Python object), and the time-table is derived
from ``period`` and ``offset``.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Mapping, Sequence, Tuple

from .errors import NodeError


class Node(abc.ABC):
    """Base class for all SOTER nodes (periodic input/output state machines)."""

    def __init__(
        self,
        name: str,
        subscribes: Sequence[str] = (),
        publishes: Sequence[str] = (),
        period: float = 0.1,
        offset: float = 0.0,
    ) -> None:
        if not name:
            raise NodeError("node names must be non-empty")
        if period <= 0.0:
            raise NodeError(f"node {name!r}: the period must be positive, got {period}")
        if offset < 0.0:
            raise NodeError(f"node {name!r}: the offset must be non-negative")
        subscribes_t = tuple(dict.fromkeys(subscribes))
        publishes_t = tuple(dict.fromkeys(publishes))
        overlap = set(subscribes_t) & set(publishes_t)
        if overlap:
            # The programming model requires I ∩ O = ∅ (Section III-A, item 3).
            raise NodeError(
                f"node {name!r}: topics {sorted(overlap)} are both subscribed and published"
            )
        self.name = name
        self.subscribes: Tuple[str, ...] = subscribes_t
        self.publishes: Tuple[str, ...] = publishes_t
        # Frozen lookup set for the per-firing output validation: building
        # a set per step would dominate the semantics engine's hot loop.
        self.publishes_set: frozenset = frozenset(publishes_t)
        self.period = float(period)
        self.offset = float(offset)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Reset local state before a run; subclasses override as needed."""

    @abc.abstractmethod
    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        """One transition: read input valuation, update local state, return outputs.

        The returned mapping must only contain topics the node publishes;
        the semantics engine enforces this.
        """

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def time_table(self, horizon: float) -> Tuple[float, ...]:
        """The calendar entries of this node up to ``horizon`` (for inspection)."""
        times = []
        t = self.offset
        while t <= horizon + 1e-12:
            times.append(round(t, 9))
            t += self.period
        return tuple(times)

    def describe(self) -> str:
        """One-line human-readable description of the node."""
        return (
            f"{self.name} (period {self.period * 1000.0:.0f} ms, "
            f"in={list(self.subscribes)}, out={list(self.publishes)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class FunctionNode(Node):
    """A node whose transition relation is a plain function.

    The function receives ``(now, inputs)`` and returns the output mapping;
    this is the lightest way to express application-level nodes (such as
    the surveillance protocol) and abstractions used by the systematic
    testing engine.
    """

    def __init__(
        self,
        name: str,
        func: Callable[[float, Mapping[str, Any]], Mapping[str, Any]],
        subscribes: Sequence[str] = (),
        publishes: Sequence[str] = (),
        period: float = 0.1,
        offset: float = 0.0,
    ) -> None:
        super().__init__(name, subscribes, publishes, period, offset)
        self._func = func

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        outputs = self._func(now, inputs)
        return {} if outputs is None else outputs


class RelayNode(Node):
    """A node that copies values from input topics to output topics every period.

    The battery-safety module's advanced controller in the paper is exactly
    such a relay (it forwards the motion plan unchanged); it is also handy
    in tests.
    """

    def __init__(
        self,
        name: str,
        routes: Mapping[str, str],
        period: float = 0.1,
        offset: float = 0.0,
    ) -> None:
        if not routes:
            raise NodeError(f"relay node {name!r} needs at least one route")
        super().__init__(
            name,
            subscribes=tuple(routes.keys()),
            publishes=tuple(routes.values()),
            period=period,
            offset=offset,
        )
        self._routes = dict(routes)

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        outputs = {}
        for source, destination in self._routes.items():
            value = inputs.get(source)
            if value is not None:
                outputs[destination] = value
        return outputs


class ConstantNode(Node):
    """A node that publishes fixed values; useful for tests and abstractions."""

    def __init__(
        self,
        name: str,
        outputs: Mapping[str, Any],
        period: float = 0.1,
        offset: float = 0.0,
    ) -> None:
        super().__init__(name, (), tuple(outputs.keys()), period, offset)
        self._outputs = dict(outputs)

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        return dict(self._outputs)


def validate_outputs(node: Node, outputs: Mapping[str, Any]) -> Mapping[str, Any]:
    """Check that a node only published topics it declared (Section III-A)."""
    declared = node.publishes_set
    for topic in outputs:
        if topic not in declared:
            extra = set(outputs.keys()) - declared
            raise NodeError(
                f"node {node.name!r} published undeclared topics: {sorted(extra)}"
            )
    return outputs
