"""Operational semantics of an RTA system (Figure 11 of the paper).

The engine executes the timeout-based discrete-event semantics over
configurations ``(L, OE, ct, FN, Topics)``:

* **ENVIRONMENT-INPUT** — :meth:`SemanticsEngine.set_input` updates an
  environment topic at any time;
* **DISCRETE-TIME-PROGRESS-STEP** — when no node is pending, time advances
  to the earliest calendar entry and the due nodes become pending;
* **DM-STEP** — a pending decision module reads the monitored state, runs
  the switching logic, and the engine updates the output-enable map ``OE``
  for its AC and SC;
* **AC-OR-SC-STEP** — a pending ordinary node steps; its outputs are
  published only if its output is enabled in ``OE`` (non-controlled nodes
  are always enabled).

Local node state ``L`` lives on the node objects themselves; the engine
holds everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from .calendar import Calendar
from .decision import DecisionModule, Mode
from .errors import SimulationError
from .node import Node, validate_outputs
from .system import RTASystem
from .topics import TopicBoard


class SchedulingPolicy(Protocol):
    """How node firings are released relative to their nominal calendar times.

    The perfect policy releases every firing exactly on time; the jittery
    OS-timer policy of :mod:`repro.runtime.scheduler` adds release delay
    and occasionally drops a firing, which is how the reproduction models
    the paper's observation that crashes occurred when the SC "was not
    scheduled in time".
    """

    def release_jitter(self, node: Node, nominal_time: float) -> float:
        """Extra delay (seconds ≥ 0) before the node's next firing is released."""

    def drops_execution(self, node: Node, nominal_time: float) -> bool:
        """True if this firing is skipped entirely (overrun / missed activation)."""


class _PerfectPolicy:
    """Default policy: no jitter, no drops."""

    def release_jitter(self, node: Node, nominal_time: float) -> float:
        return 0.0

    def drops_execution(self, node: Node, nominal_time: float) -> bool:
        return False


class EngineListener(Protocol):
    """Observer hooks for tracing and metrics collection."""

    def on_node_fired(self, time: float, node: Node, outputs: Mapping[str, Any], enabled: bool) -> None:
        ...

    def on_mode_switch(self, time: float, module_name: str, previous: Mode, new: Mode, reason: str) -> None:
        ...

    def on_environment_input(self, time: float, topic: str, value: Any) -> None:
        ...


@dataclass
class EngineStatistics:
    """Counters the benchmarks and tests read after a run."""

    node_firings: int = 0
    dropped_firings: int = 0
    suppressed_publishes: int = 0
    environment_inputs: int = 0
    mode_switches: int = 0
    time_progress_steps: int = 0


class SemanticsEngine:
    """Executes an :class:`~repro.core.system.RTASystem` per Figure 11."""

    def __init__(
        self,
        system: RTASystem,
        scheduler: Optional[SchedulingPolicy] = None,
        listeners: Sequence[EngineListener] = (),
        start_time: float = 0.0,
    ) -> None:
        self.system = system
        self.scheduler: SchedulingPolicy = scheduler or _PerfectPolicy()
        self.listeners: List[EngineListener] = list(listeners)
        self._start_time = start_time
        self.board = TopicBoard(registry=system.topics)
        self.calendar: Calendar = system.build_calendar()
        self._nodes: Dict[str, Node] = {node.name: node for node in system.all_nodes()}
        self._dm_for: Dict[str, DecisionModule] = {
            module.decision.name: module.decision for module in system.modules
        }
        self.output_enabled: Dict[str, bool] = {}
        # Per-node state versions for incremental snapshots (see
        # repro.core.resettable): node local state L only changes when the
        # node fires (or resets), so bumping an id per firing gives the
        # snapshotter a sound "unchanged since" test.  The clock never
        # rewinds — ids stay unique across snapshot restores.
        self._delta_clock: int = 0
        self.node_versions: Dict[str, int] = {}
        self.reset()

    def reset(self) -> None:
        """Restore the engine to its construction-time configuration.

        Part of the :class:`~repro.core.resettable.Resettable` protocol and
        the heart of the reset-and-reuse exploration hot path: instead of
        rebuilding system + board + calendar + engine per execution, a
        reused engine rewinds them in place.  After a reset the engine is
        observably identical to a freshly constructed one over the same
        system — time at ``start_time``, topics at their defaults, the
        calendar at every node's offset, statistics zeroed, the
        output-enable map ``OE`` back to boot state (every module in SC
        mode), and every node's local state ``L`` re-initialised.
        Listeners and the scheduling policy are kept (they are engine
        configuration, not execution state).
        """
        self.current_time = self._start_time
        self.board.reset()
        self.calendar.reset()
        self.stats = EngineStatistics()
        # Output-enable map OE: SC nodes start enabled, AC nodes disabled
        # (every module boots in SC mode), everything else always enabled.
        self.output_enabled.clear()
        for module in self.system.modules:
            self.output_enabled[module.spec.advanced.name] = False
            self.output_enabled[module.spec.safe.name] = True
        clock = self._delta_clock
        node_versions = self.node_versions
        for node in self.system.all_nodes():
            node.reset()
            clock += 1
            node_versions[node.name] = clock
        self._delta_clock = clock

    # ------------------------------------------------------------------ #
    # ENVIRONMENT-INPUT
    # ------------------------------------------------------------------ #
    def set_input(self, topic: str, value: Any) -> None:
        """Environment transition: update an input topic at the current time."""
        self.board.publish(topic, value)
        self.stats.environment_inputs += 1
        for listener in self.listeners:
            listener.on_environment_input(self.current_time, topic, value)

    def read_topic(self, topic: str) -> Any:
        """Read the current global value of a topic."""
        return self.board.read(topic)

    # ------------------------------------------------------------------ #
    # time progress and node firing
    # ------------------------------------------------------------------ #
    def peek_next_time(self) -> Optional[float]:
        """Time of the next scheduled discrete step (None if nothing is scheduled)."""
        return self.calendar.next_time()

    def step(self) -> Tuple[float, List[str]]:
        """Advance time to the next calendar entry and fire every due node.

        Returns the new current time and the names of the nodes that fired.
        Firing order within a time instant is deterministic (calendar
        insertion order restricted to the due set) unless a systematic
        testing scheduler permutes it via :meth:`fire_due_nodes`.
        """
        next_time = self.calendar.next_time()
        if next_time is None:
            raise SimulationError("the system has no scheduled nodes")
        if next_time < self.current_time - 1e-9:
            raise SimulationError(
                f"calendar time {next_time} went backwards from {self.current_time}"
            )
        self.current_time = max(self.current_time, next_time)
        self.stats.time_progress_steps += 1
        due = self.calendar.due_nodes(next_time)
        fired = self.fire_due_nodes(due)
        return self.current_time, fired

    def fire_due_nodes(self, due: Sequence[str], order: Optional[Sequence[str]] = None) -> List[str]:
        """Fire the due nodes (DM-STEP / AC-OR-SC-STEP) in the given order."""
        ordering = list(order) if order is not None else list(due)
        if ordering != list(due) and set(ordering) != set(due):
            raise SimulationError("firing order must be a permutation of the due nodes")
        return self._fire_ordered(ordering)

    def _fire_ordered(self, ordering: Sequence[str]) -> List[str]:
        """Fire nodes in a pre-validated order (the engine-internal hot loop).

        Callers must guarantee ``ordering`` is a permutation of the due
        set — the systematic tester's scheduler produces one by
        construction, which lets the per-step permutation check be skipped.
        Behaviour is identical to :meth:`fire_due_nodes`; the body hoists
        the per-firing attribute lookups because this loop executes once
        per node firing across millions of explored executions.
        """
        nodes = self._nodes
        board = self.board
        calendar = self.calendar
        scheduler = self.scheduler
        perfect = type(scheduler) is _PerfectPolicy
        stats = self.stats
        listeners = self.listeners
        output_enabled = self.output_enabled
        now = self.current_time
        board_values = board.values
        node_versions = self.node_versions
        clock = self._delta_clock
        fired: List[str] = []
        for name in ordering:
            node = nodes[name]
            if not perfect:
                nominal = calendar.nominal_time_of(name)
                if scheduler.drops_execution(node, nominal):
                    stats.dropped_firings += 1
                    self._reschedule(node)
                    continue
            # -- the read → step → publish body of _fire, inlined -------- #
            clock += 1
            node_versions[name] = clock
            inputs = {topic: board_values.get(topic) for topic in node.subscribes}
            outputs = node.step(now, inputs)
            if outputs:
                validate_outputs(node, outputs)
            else:
                outputs = {}
            stats.node_firings += 1
            if isinstance(node, DecisionModule):
                self._apply_decision(node)
                enabled = True
            else:
                enabled = output_enabled.get(name, True)
                if enabled:
                    if outputs:
                        board.publish_many(outputs)
                elif outputs:
                    stats.suppressed_publishes += 1
            if listeners:
                for listener in listeners:
                    listener.on_node_fired(now, node, outputs, enabled)
            fired.append(name)
            if perfect:
                calendar.reschedule(name, jitter=0.0, not_before=now)
            else:
                self._reschedule(node)
        self._delta_clock = clock
        return fired

    def _reschedule(self, node: Node) -> None:
        jitter = max(0.0, self.scheduler.release_jitter(node, self.calendar.nominal_time_of(node.name)))
        self.calendar.reschedule(node.name, jitter=jitter, not_before=self.current_time)

    def _fire(self, node: Node) -> None:
        inputs = self.board.read_many(node.subscribes)
        self._delta_clock += 1
        self.node_versions[node.name] = self._delta_clock
        outputs = validate_outputs(node, node.step(self.current_time, inputs) or {})
        self.stats.node_firings += 1
        if isinstance(node, DecisionModule):
            self._apply_decision(node)
            enabled = True
        else:
            enabled = self.output_enabled.get(node.name, True)
            if enabled:
                self.board.publish_many(outputs)
            elif outputs:
                self.stats.suppressed_publishes += 1
        for listener in self.listeners:
            listener.on_node_fired(self.current_time, node, outputs, enabled)

    def _apply_decision(self, dm: DecisionModule) -> None:
        """DM-STEP: propagate the DM's mode into the output-enable map."""
        module_spec = dm.spec
        ac_enabled = dm.mode is Mode.AC
        self.output_enabled[module_spec.advanced.name] = ac_enabled
        self.output_enabled[module_spec.safe.name] = not ac_enabled
        if dm.switches and abs(dm.switches[-1].time - self.current_time) <= 1e-9:
            switch = dm.switches[-1]
            self.stats.mode_switches += 1
            for listener in self.listeners:
                listener.on_mode_switch(
                    self.current_time, switch.module, switch.previous, switch.new, switch.reason
                )

    # ------------------------------------------------------------------ #
    # delta-snapshot hooks (see repro.core.resettable)
    # ------------------------------------------------------------------ #
    def capture_delta_state(self) -> Tuple[float, Dict[str, int], Dict[str, bool]]:
        """The engine's own scalars: time, statistics, the OE map.

        Board, calendar and node local state are separate snapshot
        components with their own hooks/versions; this covers what the
        engine object itself mutates during execution.
        """
        return (
            self.current_time,
            dict(self.stats.__dict__),
            dict(self.output_enabled),
        )

    def restore_delta_state(self, state: Tuple[float, Dict[str, int], Dict[str, bool]]) -> None:
        """Rewind the engine scalars in place (``stats``/``OE`` identities kept)."""
        current_time, stats, output_enabled = state
        self.current_time = current_time
        self.stats.__dict__.update(stats)
        self.output_enabled.clear()
        self.output_enabled.update(output_enabled)

    # ------------------------------------------------------------------ #
    # convenience drivers
    # ------------------------------------------------------------------ #
    def run_until(
        self,
        end_time: float,
        environment: Optional[Callable[["SemanticsEngine", float], None]] = None,
        stop_when: Optional[Callable[["SemanticsEngine"], bool]] = None,
    ) -> None:
        """Run the system until ``end_time`` (exclusive of later events).

        ``environment`` is called before each discrete step with the engine
        and the upcoming step time; it models the ENVIRONMENT-INPUT
        transitions (the plant co-simulation uses it to publish sensor
        values).  ``stop_when`` allows early termination (mission complete,
        collision, ...).
        """
        while True:
            next_time = self.peek_next_time()
            if next_time is None or next_time > end_time + 1e-12:
                break
            if environment is not None:
                environment(self, next_time)
            self.step()
            if stop_when is not None and stop_when(self):
                break

    def mode_of(self, module_name: str) -> Mode:
        """Current mode of a module."""
        return self.system.module_named(module_name).decision.mode

    def dm_of(self, module_name: str) -> DecisionModule:
        """The decision module of a module."""
        return self.system.module_named(module_name).decision
