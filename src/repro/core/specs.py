"""Safety specifications: the φ_safe / φ_safer predicates of an RTA module.

The paper assumes the desired safety property is a subset ``φ_safe ⊆ S``
of the system state space, with a stronger subset ``φ_safer ⊆ φ_safe``
governing when the decision module may hand control back to the advanced
controller.  Here both are represented as named predicates over the
*monitored state* carried by the module's state topic(s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generic, List, Optional, Sequence, TypeVar

StateT = TypeVar("StateT")


@dataclass(frozen=True)
class SafetySpec(Generic[StateT]):
    """A named predicate over monitored states.

    ``batch_predicate``, when provided, evaluates the predicate over a
    *sequence* of (non-``None``) states in one call, returning a boolean
    per state.  It must agree with ``predicate`` on every state — the
    batched monitor path relies on that to reproduce the scalar monitors'
    verdicts bit-for-bit.  Specs without a batch predicate still work
    everywhere; batched callers fall back to mapping ``predicate``.
    """

    name: str
    predicate: Callable[[StateT], bool]
    description: str = ""
    batch_predicate: Optional[Callable[[Sequence[StateT]], Sequence[bool]]] = None

    def contains(self, state: StateT) -> bool:
        """True if ``state`` satisfies the specification."""
        if state is None:
            return False
        return bool(self.predicate(state))

    def contains_batch(self, states: Sequence[StateT]) -> List[bool]:
        """Vectorised :meth:`contains`: one boolean per state, ``None`` ⇒ ``False``."""
        if self.batch_predicate is None:
            return [self.contains(state) for state in states]
        present = [state for state in states if state is not None]
        if not present:
            return [False] * len(states)
        verdicts = iter(self.batch_predicate(present))
        return [bool(next(verdicts)) if state is not None else False for state in states]

    def __call__(self, state: StateT) -> bool:
        return self.contains(state)

    def intersect(self, other: "SafetySpec[StateT]") -> "SafetySpec[StateT]":
        """Conjunction of two specifications (used for system-level invariants)."""
        return SafetySpec(
            name=f"{self.name} ∧ {other.name}",
            predicate=lambda state: self.contains(state) and other.contains(state),
            description=f"conjunction of {self.name} and {other.name}",
        )

    def negate(self) -> "SafetySpec[StateT]":
        """Complement of the specification (the unsafe region)."""
        return SafetySpec(
            name=f"¬{self.name}",
            predicate=lambda state: not self.contains(state),
            description=f"complement of {self.name}",
        )


def always_safe() -> SafetySpec[Any]:
    """A specification satisfied by every (non-None) state; useful in tests."""
    return SafetySpec(name="true", predicate=lambda state: True, description="trivially true")


def never_safe() -> SafetySpec[Any]:
    """A specification satisfied by no state; useful in tests."""
    return SafetySpec(name="false", predicate=lambda state: False, description="trivially false")
