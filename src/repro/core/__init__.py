"""SOTER core: the programming model, RTA modules, semantics, and compiler."""

from .errors import (
    CompilationError,
    CompositionError,
    ModuleError,
    NodeError,
    SchedulingError,
    SimulationError,
    SoterError,
    TopicError,
    WellFormednessError,
)
from .resettable import Resettable, is_resettable, reset_all
from .topics import Topic, TopicBoard, TopicRegistry
from .node import ConstantNode, FunctionNode, Node, RelayNode, validate_outputs
from .calendar import Calendar, CalendarEntry, hyperperiod
from .specs import SafetySpec, always_safe, never_safe
from .module import ModuleCertificate, RTAModuleInstance, RTAModuleSpec
from .decision import DecisionModule, Mode, ModeSwitch
from .regions import Region, classify_region, is_consistent
from .wellformed import (
    CheckResult,
    CheckerOptions,
    WellFormednessChecker,
    WellFormednessReport,
    structural_report,
)
from .system import RTASystem, compose_all
from .semantics import EngineStatistics, SemanticsEngine
from .monitor import (
    DeadlineMonitor,
    InvariantMonitor,
    MonitorResult,
    MonitorSuite,
    SeparationMonitor,
    TopicSafetyMonitor,
    Violation,
)
from .compiler import CompilationResult, Program, SoterCompiler, compile_program
from .codegen import generate_c_source, generate_decision_module

__all__ = [
    "CompilationError",
    "CompositionError",
    "ModuleError",
    "NodeError",
    "SchedulingError",
    "SimulationError",
    "SoterError",
    "TopicError",
    "WellFormednessError",
    "Resettable",
    "is_resettable",
    "reset_all",
    "Topic",
    "TopicBoard",
    "TopicRegistry",
    "ConstantNode",
    "FunctionNode",
    "Node",
    "RelayNode",
    "validate_outputs",
    "Calendar",
    "CalendarEntry",
    "hyperperiod",
    "SafetySpec",
    "always_safe",
    "never_safe",
    "ModuleCertificate",
    "RTAModuleInstance",
    "RTAModuleSpec",
    "DecisionModule",
    "Mode",
    "ModeSwitch",
    "Region",
    "classify_region",
    "is_consistent",
    "CheckResult",
    "CheckerOptions",
    "WellFormednessChecker",
    "WellFormednessReport",
    "structural_report",
    "RTASystem",
    "compose_all",
    "EngineStatistics",
    "SemanticsEngine",
    "DeadlineMonitor",
    "InvariantMonitor",
    "MonitorResult",
    "MonitorSuite",
    "SeparationMonitor",
    "TopicSafetyMonitor",
    "Violation",
    "CompilationResult",
    "Program",
    "SoterCompiler",
    "compile_program",
    "generate_c_source",
    "generate_decision_module",
]
