"""Exception hierarchy for the SOTER framework."""

from __future__ import annotations


class SoterError(Exception):
    """Base class for all errors raised by the framework."""


class TopicError(SoterError):
    """A topic was declared, published, or subscribed to incorrectly."""


class NodeError(SoterError):
    """A node declaration violates the programming model (Section III-A)."""


class ModuleError(SoterError):
    """An RTA module declaration is malformed (Section III-B)."""


class WellFormednessError(SoterError):
    """A declared RTA module failed the well-formedness checks (Section III-C)."""


class CompositionError(SoterError):
    """A set of RTA modules is not composable (Section IV)."""


class CompilationError(SoterError):
    """The SOTER compiler rejected a program."""

    def __init__(self, message: str, diagnostics: list[str] | None = None) -> None:
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class SchedulingError(SoterError):
    """The runtime scheduler was configured or used incorrectly."""


class SimulationError(SoterError):
    """The co-simulation of the plant and the SOTER program failed."""
