"""The ``Resettable`` protocol: restore construction-time state in place.

The systematic testing engine owes its bug-finding power to sheer
execution count, and profiling shows that — once the safety queries are
cached and batched — the dominant remaining cost of an execution is
*rebuilding the model*: nodes, topics, system wiring, calendar, monitors,
and a fresh semantics engine for every single run.  The reset-and-reuse
hot path eliminates that churn: the model instance is built **once** (per
worker) and every stateful component restores its construction-time state
in place between executions.

The contract
------------
``reset()`` must leave the object indistinguishable (for every observable
the execution semantics reads) from a freshly constructed twin:

* node local state ``L`` returns to its initial valuation (counters,
  plans, RNGs re-seeded from the construction seed);
* the calendar returns to every node's offset;
* the topic board returns to the declared defaults;
* monitors forget recorded violations and pending windows;
* decision modules return to their initial mode with empty switch logs.

Reset must **not** rebuild derived immutable structure (workspace
geometry, clearance caches, compiled wiring) — keeping those warm is the
point.  The equivalence tests in ``tests/testing/test_reset_reuse.py``
enforce the contract end-to-end: a reset-path execution must produce
byte-identical trails, step counts, and violation sequences to a
fresh-build execution.

New components opt in by implementing ``reset()``; :func:`is_resettable`
and :func:`reset_all` are small helpers for callers that deal with
heterogeneous collections (e.g. monitor suites).
"""

from __future__ import annotations

from typing import Any, Iterable, Protocol, runtime_checkable


@runtime_checkable
class Resettable(Protocol):
    """An object that can restore its construction-time state in place."""

    def reset(self) -> None:
        """Restore the state the object had immediately after construction."""


def is_resettable(obj: Any) -> bool:
    """True if ``obj`` exposes a callable ``reset()``."""
    return callable(getattr(obj, "reset", None))


def reset_all(objects: Iterable[Any]) -> None:
    """Reset every object in ``objects`` that implements the protocol."""
    for obj in objects:
        reset = getattr(obj, "reset", None)
        if callable(reset):
            reset()
