"""The ``Resettable`` protocol: restore construction-time state in place.

The systematic testing engine owes its bug-finding power to sheer
execution count, and profiling shows that — once the safety queries are
cached and batched — the dominant remaining cost of an execution is
*rebuilding the model*: nodes, topics, system wiring, calendar, monitors,
and a fresh semantics engine for every single run.  The reset-and-reuse
hot path eliminates that churn: the model instance is built **once** (per
worker) and every stateful component restores its construction-time state
in place between executions.

The contract
------------
``reset()`` must leave the object indistinguishable (for every observable
the execution semantics reads) from a freshly constructed twin:

* node local state ``L`` returns to its initial valuation (counters,
  plans, RNGs re-seeded from the construction seed);
* the calendar returns to every node's offset;
* the topic board returns to the declared defaults;
* monitors forget recorded violations and pending windows;
* decision modules return to their initial mode with empty switch logs.

Reset must **not** rebuild derived immutable structure (workspace
geometry, clearance caches, compiled wiring) — keeping those warm is the
point.  The equivalence tests in ``tests/testing/test_reset_reuse.py``
enforce the contract end-to-end: a reset-path execution must produce
byte-identical trails, step counts, and violation sequences to a
fresh-build execution.

New components opt in by implementing ``reset()``; :func:`is_resettable`
and :func:`reset_all` are small helpers for callers that deal with
heterogeneous collections (e.g. monitor suites).

Delta state (incremental snapshots)
-----------------------------------
The population tester extends reset-and-reuse with *copy-on-write
snapshots*: instead of pickling the whole model at a trie boundary it
captures, per component, only the state that changed since the parent
snapshot.  Components opt in to cheap capture with two optional hooks:

``capture_delta_state() -> state``
    Return every per-execution mutable value as plain (copied or
    immutable) data.  The returned object is retained by the caller and
    must stay valid however far the live object advances afterwards.

``restore_delta_state(state) -> None``
    Rewind the object *in place* to a previously captured state.  In
    place matters: other components hold references to this object, and
    a restore must not change its identity.

Objects without the hooks are captured generically — a ``deepcopy`` of
their ``__dict__`` (against a memo that pins shared structure) and an
in-place ``clear()``/``update()`` on restore — via :func:`capture_state`
and :func:`restore_state`.

Components that additionally expose a ``delta_version`` attribute let
the snapshotter skip them entirely: the version is a *unique id of a
state point* — bump it from a private monotonic clock on every mutation
(never reuse an id, even after a restore rewinds ``delta_version`` to an
older value), and equal versions prove equal state.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable, Optional, Protocol, runtime_checkable


@runtime_checkable
class Resettable(Protocol):
    """An object that can restore its construction-time state in place."""

    def reset(self) -> None:
        """Restore the state the object had immediately after construction."""


def is_resettable(obj: Any) -> bool:
    """True if ``obj`` exposes a callable ``reset()``."""
    return callable(getattr(obj, "reset", None))


def reset_all(objects: Iterable[Any]) -> None:
    """Reset every object in ``objects`` that implements the protocol."""
    for obj in objects:
        reset = getattr(obj, "reset", None)
        if callable(reset):
            reset()


def capture_state(obj: Any, memo: Optional[Dict[int, Any]] = None) -> Any:
    """Capture one component's per-execution state.

    Components with a ``capture_delta_state`` hook return their own
    compact representation; everything else falls back to a deep copy of
    ``__dict__`` against ``memo`` (a deepcopy memo pre-seeded with every
    shared object that must be kept by reference, not copied).
    """
    hook = getattr(obj, "capture_delta_state", None)
    if hook is not None:
        return hook()
    return copy.deepcopy(obj.__dict__, memo if memo is not None else {})


def restore_state(obj: Any, state: Any, memo: Optional[Dict[int, Any]] = None) -> None:
    """Rewind one component, in place, to a :func:`capture_state` point.

    The stored ``state`` stays pristine (the generic path deep-copies it
    again on the way back in), so one capture supports arbitrarily many
    restores.
    """
    hook = getattr(obj, "restore_delta_state", None)
    if hook is not None:
        hook(state)
        return
    attributes = obj.__dict__
    attributes.clear()
    attributes.update(copy.deepcopy(state, memo if memo is not None else {}))
