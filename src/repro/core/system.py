"""RTA systems: compositions of RTA modules and plain nodes (Section IV).

An RTA *system* is a set of composable RTA modules plus any unprotected
nodes (e.g. the application layer and trusted state estimators).  Two
modules are composable when their node names are disjoint and their output
topics are disjoint; Theorem 4.1 then lifts the per-module invariants to
the composite system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .calendar import Calendar
from .decision import DecisionModule
from .errors import CompositionError
from .module import RTAModuleInstance
from .node import Node
from .topics import Topic, TopicRegistry


@dataclass
class RTASystem:
    """A composed system of RTA modules, plain nodes, and topic declarations."""

    modules: List[RTAModuleInstance] = field(default_factory=list)
    nodes: List[Node] = field(default_factory=list)
    topics: TopicRegistry = field(default_factory=TopicRegistry)
    name: str = "rta-system"

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    # composability (Section IV)
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check node-name uniqueness and output disjointness of all modules."""
        names: Set[str] = set()
        for node in self.all_nodes():
            if node.name in names:
                raise CompositionError(
                    f"node name {node.name!r} is used more than once in system {self.name!r}"
                )
            names.add(node.name)
        self._check_output_disjointness()

    def _check_output_disjointness(self) -> None:
        seen: Dict[str, str] = {}
        for module in self.modules:
            for topic in module.output_topics:
                if topic in seen and seen[topic] != module.name:
                    raise CompositionError(
                        f"modules {seen[topic]!r} and {module.name!r} both publish on topic {topic!r}"
                    )
                seen[topic] = module.name
        for node in self.nodes:
            for topic in node.publishes:
                if topic in seen:
                    raise CompositionError(
                        f"node {node.name!r} and module {seen[topic]!r} both publish on topic {topic!r}"
                    )

    # ------------------------------------------------------------------ #
    # derived attributes (Section IV's ACNodes, SCNodes, Nodes, OS, IS, CS)
    # ------------------------------------------------------------------ #
    def all_nodes(self) -> List[Node]:
        """Every node of the system: module ACs, SCs, DMs, and plain nodes."""
        result: List[Node] = []
        for module in self.modules:
            result.extend(module.nodes)
        result.extend(self.nodes)
        return result

    def node_named(self, name: str) -> Node:
        """Look up any node by name."""
        for node in self.all_nodes():
            if node.name == name:
                return node
        raise KeyError(f"no node named {name!r} in system {self.name!r}")

    def module_named(self, name: str) -> RTAModuleInstance:
        """Look up a module by name."""
        for module in self.modules:
            if module.name == name:
                return module
        raise KeyError(f"no module named {name!r} in system {self.name!r}")

    def decision_modules(self) -> List[DecisionModule]:
        """All generated decision modules."""
        return [module.decision for module in self.modules]

    def ac_nodes(self) -> Dict[str, str]:
        """Map DM node name → AC node name (the paper's ``ACNodes``)."""
        return {module.decision.name: module.spec.advanced.name for module in self.modules}

    def sc_nodes(self) -> Dict[str, str]:
        """Map DM node name → SC node name (the paper's ``SCNodes``)."""
        return {module.decision.name: module.spec.safe.name for module in self.modules}

    def controlled_nodes(self) -> Set[str]:
        """Names of all nodes whose outputs are gated by some DM."""
        names: Set[str] = set()
        for module in self.modules:
            names.update(module.spec.controlled_node_names)
        return names

    def output_topics(self) -> Set[str]:
        """All topics published by some node of the system (the paper's ``OS``)."""
        topics: Set[str] = set()
        for node in self.all_nodes():
            topics.update(node.publishes)
        return topics

    def input_topics(self) -> Set[str]:
        """Topics read by the system but produced by the environment (``IS``)."""
        subscribed: Set[str] = set()
        for node in self.all_nodes():
            subscribed.update(node.subscribes)
        return subscribed - self.output_topics()

    def build_calendar(self) -> Calendar:
        """The system calendar ``CS`` over all nodes."""
        return Calendar(self.all_nodes())

    def reset(self) -> None:
        """Restore every node's local state ``L`` to its initial valuation.

        Part of the :class:`~repro.core.resettable.Resettable` protocol:
        the system wiring (modules, topics, composition) is immutable, so
        resetting a system is exactly resetting its nodes — decision
        modules return to their initial mode, application nodes to their
        construction-time counters and seeds.
        """
        for node in self.all_nodes():
            node.reset()

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def compose(self, other: "RTASystem", name: Optional[str] = None) -> "RTASystem":
        """Parallel composition of two RTA systems (Theorem 4.1).

        The constructor re-validates composability (disjoint node names and
        disjoint outputs); a :class:`CompositionError` is raised otherwise.
        """
        merged_topics = TopicRegistry(list(self.topics) )
        for topic in other.topics:
            if topic.name not in merged_topics:
                merged_topics.declare(topic)
        return RTASystem(
            modules=self.modules + other.modules,
            nodes=self.nodes + other.nodes,
            topics=merged_topics,
            name=name or f"{self.name}||{other.name}",
        )

    def describe(self) -> str:
        """Multi-line human-readable summary of the system."""
        lines = [f"RTA system {self.name!r}:"]
        for module in self.modules:
            lines.append(f"  module {module.spec.describe()}")
        for node in self.nodes:
            lines.append(f"  node   {node.describe()}")
        lines.append(f"  env inputs: {sorted(self.input_topics())}")
        return "\n".join(lines)


def compose_all(systems: Sequence[RTASystem], name: str = "composed") -> RTASystem:
    """Compose a sequence of RTA systems into one."""
    if not systems:
        raise CompositionError("cannot compose an empty collection of systems")
    result = systems[0]
    for system in systems[1:]:
        result = result.compose(system)
    result.name = name
    return result
