"""Topics: the publish/subscribe channels of a SOTER program.

Following Section III-A of the paper, a topic is a named channel with a
value domain; nodes communicate exclusively by publishing values on topics
and reading the (globally visible) latest value of the topics they
subscribe to.  For simplicity of the formal model the paper replaces the
per-node buffers with a single global valuation per topic, and this
implementation does the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, Mapping, Optional, Tuple

from .errors import TopicError


@dataclass(frozen=True)
class Topic:
    """Declaration of a topic: a unique name, an optional type, and a default value."""

    name: str
    value_type: type = object
    default: Any = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise TopicError("topic names must be non-empty strings")

    def accepts(self, value: Any) -> bool:
        """True if ``value`` is admissible for this topic."""
        if value is None:
            return True
        if self.value_type is object:
            return True
        return isinstance(value, self.value_type)


class TopicRegistry:
    """A set of topic declarations with uniqueness checking."""

    def __init__(self, topics: Iterable[Topic] = ()) -> None:
        self._topics: Dict[str, Topic] = {}
        for topic in topics:
            self.declare(topic)

    def declare(self, topic: Topic) -> Topic:
        """Register a topic declaration; duplicate names are rejected."""
        if topic.name in self._topics:
            raise TopicError(f"topic {topic.name!r} is declared more than once")
        self._topics[topic.name] = topic
        return topic

    def declare_name(self, name: str, value_type: type = object, default: Any = None) -> Topic:
        """Convenience wrapper declaring a topic from its components."""
        return self.declare(Topic(name=name, value_type=value_type, default=default))

    def get(self, name: str) -> Topic:
        """Look up a declaration by name."""
        try:
            return self._topics[name]
        except KeyError as exc:
            raise TopicError(f"topic {name!r} is not declared") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._topics

    def __iter__(self) -> Iterator[Topic]:
        return iter(self._topics.values())

    def __len__(self) -> int:
        return len(self._topics)

    def names(self) -> Tuple[str, ...]:
        """All declared topic names."""
        return tuple(self._topics.keys())

    def defaults(self) -> Dict[str, Any]:
        """Initial valuation: every topic at its declared default."""
        return {name: topic.default for name, topic in self._topics.items()}


@dataclass
class TopicBoard:
    """The global valuation of all topics (the ``Topics`` map of Figure 11)."""

    registry: Optional[TopicRegistry] = None
    values: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.registry is not None:
            defaults = self.registry.defaults()
            defaults.update(self.values)
            self.values = defaults
        self._initial_values: Dict[str, Any] = dict(self.values)
        # Declared-topic lookup flattened to one dict access per publish
        # (the publish path runs once per node firing on the hot loop).
        # Aliases the registry's own mapping so later declarations stay
        # visible.
        self._declared: Dict[str, Topic] = (
            self.registry._topics if self.registry is not None else {}
        )
        # Optional fault gate (see repro.runtime.faults.TopicFaultGate):
        # every publish funnels through here, so a single hook covers the
        # whole topic plane. None (the default) costs one attribute read.
        self._gate: Optional[Any] = None
        # Dirty tracking for incremental snapshots (repro.core.resettable):
        # ``delta_version`` identifies the current state point; the private
        # clock never rewinds, so ids stay unique across restores.
        self._delta_clock: int = 0
        self.delta_version: int = 0

    def reset(self) -> None:
        """Restore the construction-time valuation (declared defaults plus
        any initial values), dropping everything published since.

        Part of the :class:`~repro.core.resettable.Resettable` protocol:
        a reused semantics engine resets the board between executions
        instead of building a new one.
        """
        self.values.clear()
        self.values.update(self._initial_values)
        clock = self._delta_clock + 1
        self._delta_clock = clock
        self.delta_version = clock

    def read(self, name: str) -> Any:
        """Current value of a topic (None if never published)."""
        return self.values.get(name)

    def read_many(self, names: Iterable[str]) -> Dict[str, Any]:
        """Valuation of a set of topics (the node's input valuation Vals(I))."""
        return {name: self.values.get(name) for name in names}

    def publish(self, name: str, value: Any) -> None:
        """Publish ``value`` on topic ``name`` (type-checked when declared)."""
        gate = self._gate
        if gate is not None and not gate.admit(name, value):
            return
        topic = self._declared.get(name)
        if (
            topic is not None
            and value is not None
            and topic.value_type is not object
            and not isinstance(value, topic.value_type)
        ):
            raise TopicError(
                f"value of type {type(value).__name__} is not admissible "
                f"for topic {name!r} (expects {topic.value_type.__name__})"
            )
        clock = self._delta_clock + 1
        self._delta_clock = clock
        self.delta_version = clock
        self.values[name] = value

    def publish_many(self, outputs: Mapping[str, Any]) -> None:
        """Publish several topic values at once."""
        for name, value in outputs.items():
            self.publish(name, value)

    def snapshot(self) -> Dict[str, Any]:
        """A shallow copy of the current valuation."""
        return dict(self.values)

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    def capture_delta_state(self) -> Dict[str, Any]:
        """The current valuation as a shallow copy.

        Topic values are replaced wholesale on publish (never mutated in
        place — the publish contract), so a shallow copy freezes the
        valuation.
        """
        return dict(self.values)

    def restore_delta_state(self, state: Dict[str, Any]) -> None:
        """Rewind the valuation in place (``values`` identity preserved)."""
        self.values.clear()
        self.values.update(state)
        clock = self._delta_clock + 1
        self._delta_clock = clock
        self.delta_version = clock
