"""The decision module (DM): the generated switching node of an RTA module.

The SOTER compiler generates one DM per declared RTA module.  Every Δ the
DM reads the monitored state and applies the switching logic of Figure 9:

* in AC mode, if ``Reach(st, *, 2Δ) ⊄ φ_safe`` (i.e. ``ttf_2Δ`` holds) it
  switches to SC;
* in SC mode, if the state has recovered into ``φ_safer`` it hands control
  back to AC (the novel reverse switch of the paper).

The DM publishes on no topic; instead the semantics engine consults its
``mode`` after every DM step to enable/disable the outputs of the AC and
SC nodes (the ``OE`` map of Figure 11).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Mapping, Optional

from .module import RTAModuleSpec
from .node import Node


class Mode(enum.Enum):
    """Operating mode of an RTA module."""

    AC = "AC"
    SC = "SC"


@dataclass(frozen=True)
class ModeSwitch:
    """A recorded mode change, with the reason the DM took it."""

    time: float
    module: str
    previous: Mode
    new: Mode
    reason: str
    monitored_state: Any = None

    @property
    def is_disengagement(self) -> bool:
        """True when the switch took control away from the advanced controller."""
        return self.previous is Mode.AC and self.new is Mode.SC


class DecisionModule(Node):
    """The generated decision-module node of an RTA module."""

    def __init__(self, spec: RTAModuleSpec, initial_mode: Mode = Mode.SC) -> None:
        # The DM runs exactly every Δ (property P1a: δ(N_dm) = Δ) and
        # subscribes to everything the AC/SC read plus the state topics.
        super().__init__(
            name=spec.decision_node_name,
            subscribes=spec.dm_subscriptions(),
            publishes=(),
            period=spec.delta,
            offset=0.0,
        )
        self.spec = spec
        self._initial_mode = initial_mode
        self.mode: Mode = initial_mode
        self.switches: List[ModeSwitch] = []
        self.evaluations: int = 0
        self.missing_state_evaluations: int = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        self.mode = self._initial_mode
        self.switches = []
        self.evaluations = 0
        self.missing_state_evaluations = 0

    # Delta-snapshot hooks (see repro.core.resettable): recorded switches
    # are immutable events, so a tuple of references is already a copy.
    def capture_delta_state(self) -> tuple:
        return (
            self.mode,
            tuple(self.switches),
            self.evaluations,
            self.missing_state_evaluations,
        )

    def restore_delta_state(self, state: tuple) -> None:
        mode, switches, evaluations, missing = state
        self.mode = mode
        self.switches[:] = switches
        self.evaluations = evaluations
        self.missing_state_evaluations = missing

    # ------------------------------------------------------------------ #
    # the switching logic of Figure 9
    # ------------------------------------------------------------------ #
    def decide(self, state: Any) -> tuple[Mode, str]:
        """Pure switching decision given the monitored state."""
        if state is None:
            # Fail-safe: without a state estimate the DM cannot establish
            # the AC-mode invariant, so it keeps (or takes) SC control.
            return Mode.SC, "no state estimate available"
        if self.mode is Mode.AC:
            if self.spec.ttf(state):
                return Mode.SC, "Reach(st, *, 2Δ) may leave φ_safe (ttf_2Δ)"
            return Mode.AC, "φ_safe guaranteed for the next 2Δ"
        # mode is SC
        if self.spec.safer_spec.contains(state):
            return Mode.AC, "state recovered into φ_safer"
        return Mode.SC, "state not yet in φ_safer"

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        self.evaluations += 1
        state = self.spec.monitored_state(inputs)
        if state is None:
            self.missing_state_evaluations += 1
        new_mode, reason = self.decide(state)
        if new_mode is not self.mode:
            self.switches.append(
                ModeSwitch(
                    time=now,
                    module=self.spec.name,
                    previous=self.mode,
                    new=new_mode,
                    reason=reason,
                    monitored_state=state,
                )
            )
            self.mode = new_mode
        return {}

    # ------------------------------------------------------------------ #
    # statistics used by the evaluation benchmarks
    # ------------------------------------------------------------------ #
    @property
    def disengagements(self) -> List[ModeSwitch]:
        """All AC→SC switches (the paper's "disengagements")."""
        return [switch for switch in self.switches if switch.is_disengagement]

    @property
    def reengagements(self) -> List[ModeSwitch]:
        """All SC→AC switches (control returned to the advanced controller)."""
        return [switch for switch in self.switches if not switch.is_disengagement]

    def mode_intervals(self, start_time: float, end_time: float) -> List[tuple[float, float, Mode]]:
        """Time intervals spent in each mode between ``start_time`` and ``end_time``."""
        if end_time < start_time:
            raise ValueError("end_time must not precede start_time")
        intervals: List[tuple[float, float, Mode]] = []
        current_mode = self._initial_mode
        current_start = start_time
        for switch in self.switches:
            t = min(max(switch.time, start_time), end_time)
            if t > current_start:
                intervals.append((current_start, t, current_mode))
            current_mode = switch.new
            current_start = t
        if end_time > current_start:
            intervals.append((current_start, end_time, current_mode))
        return intervals

    def time_fraction_in_mode(self, mode: Mode, start_time: float, end_time: float) -> float:
        """Fraction of the interval spent in ``mode`` (0 if the interval is empty)."""
        total = end_time - start_time
        if total <= 0.0:
            return 0.0
        in_mode = sum(
            b - a for a, b, m in self.mode_intervals(start_time, end_time) if m is mode
        )
        return in_mode / total
