"""Regions of operation of an RTA-protected system (Figure 10 of the paper).

The paper organises the state space into regions R1–R5:

* **R1** — the unsafe region (outside φ_safe).
* **R2** — inside φ_safe but not recoverable (the DM cannot prevent an
  eventual exit; with a well-formed module this region is never entered).
* **R3** — the recoverable region; its outer shell (R3 \\ R4) is the
  *switching control region* where ``ttf_2Δ`` holds and the DM hands
  control to the safe controller.
* **R4** — states from which φ_safe is guaranteed for the next 2Δ under
  any controller.
* **R5** — φ_safer, where control may be returned to the advanced
  controller.

Because recoverability (the R2/R3 boundary) is not directly observable by
the DM, the classification below distinguishes the observable regions:
UNSAFE (R1), SWITCHING (R3 \\ R4), NOMINAL (R4 \\ R5), and SAFER (R5).
"""

from __future__ import annotations

import enum
from typing import Any

from .module import RTAModuleSpec


class Region(enum.Enum):
    """Observable operating regions of an RTA module."""

    UNSAFE = "R1:unsafe"
    SWITCHING = "R3:switching"
    NOMINAL = "R4:nominal"
    SAFER = "R5:safer"


def classify_region(spec: RTAModuleSpec, state: Any) -> Region:
    """Classify a monitored state into the regions of Figure 10.

    The classification asks the module's own predicates (φ_safe, φ_safer,
    ``ttf_2Δ``) in precedence order, so it costs at most three spec
    evaluations — all of which route through the cached safety-query
    plane for the drone modules.  The testing engine's coverage plane
    (:mod:`repro.testing.coverage`) samples this at every monitor instant
    to build ``(vehicle, mode, region)`` occupancy maps.

    >>> from repro.testing.scenarios import build_scenario
    >>> module = build_scenario("toy-closed-loop").system.modules[0]
    >>> classify_region(module.spec, 2.0)        # far from the cliff
    <Region.SAFER: 'R5:safer'>
    >>> classify_region(module.spec, 8.95)       # inside the switching shell
    <Region.SWITCHING: 'R3:switching'>
    >>> classify_region(module.spec, 9.5)        # over the cliff
    <Region.UNSAFE: 'R1:unsafe'>
    """
    if not spec.safe_spec.contains(state):
        return Region.UNSAFE
    if spec.safer_spec.contains(state):
        return Region.SAFER
    if spec.ttf(state):
        return Region.SWITCHING
    return Region.NOMINAL


def is_consistent(spec: RTAModuleSpec, state: Any) -> bool:
    """Sanity condition on the region structure for a single state.

    A well-formed module requires φ_safer ⊆ φ_safe and, by property P3,
    states in φ_safer cannot be in the switching region; callers use this
    to validate the ttf/φ_safer choices on sampled states.
    """
    in_safe = spec.safe_spec.contains(state)
    in_safer = spec.safer_spec.contains(state)
    if in_safer and not in_safe:
        return False
    if in_safer and spec.ttf(state):
        return False
    return True
