"""The SOTER compiler: program declarations → executable RTA system.

The paper's tool chain compiles a SOTER program into C code plus generated
decision modules after checking that every declared RTA module is
well-formed (Section V, "SOTER tool chain").  This module performs the same
pipeline in-process:

1. validate the program's topics and nodes against the programming model,
2. run the well-formedness checks for every RTA module declaration,
3. generate the decision module node for each module,
4. assemble the composed :class:`~repro.core.system.RTASystem`, rechecking
   composability, and
5. optionally emit C-like source for inspection
   (:mod:`repro.core.codegen`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .codegen import generate_c_source
from .decision import DecisionModule
from .errors import CompilationError
from .module import RTAModuleInstance, RTAModuleSpec
from .node import Node
from .system import RTASystem
from .topics import Topic, TopicRegistry
from .wellformed import (
    CheckerOptions,
    WellFormednessChecker,
    WellFormednessReport,
    structural_report,
)


@dataclass
class Program:
    """A SOTER program: topics, unprotected nodes, and RTA module declarations."""

    name: str
    topics: List[Topic] = field(default_factory=list)
    nodes: List[Node] = field(default_factory=list)
    modules: List[RTAModuleSpec] = field(default_factory=list)

    def declare_topic(self, topic: Topic) -> Topic:
        self.topics.append(topic)
        return topic

    def add_node(self, node: Node) -> Node:
        self.nodes.append(node)
        return node

    def add_module(self, spec: RTAModuleSpec) -> RTAModuleSpec:
        self.modules.append(spec)
        return spec


@dataclass
class CompilationResult:
    """Everything the compiler produced for a program."""

    program: Program
    system: RTASystem
    reports: Dict[str, WellFormednessReport]
    diagnostics: List[str] = field(default_factory=list)
    generated_source: str = ""

    @property
    def well_formed(self) -> bool:
        return all(report.passed for report in self.reports.values())

    def report_for(self, module_name: str) -> WellFormednessReport:
        return self.reports[module_name]

    def summary(self) -> str:
        lines = [f"compilation of program {self.program.name!r}:"]
        for name, report in self.reports.items():
            status = "well-formed" if report.passed else "NOT well-formed"
            lines.append(f"  module {name}: {status}")
        for diagnostic in self.diagnostics:
            lines.append(f"  note: {diagnostic}")
        return "\n".join(lines)


class SoterCompiler:
    """Compiles SOTER programs, generating decision modules and glue."""

    def __init__(
        self,
        checker: Optional[WellFormednessChecker] = None,
        strict: bool = True,
        emit_source: bool = False,
    ) -> None:
        self.checker = checker
        self.strict = strict
        self.emit_source = emit_source

    # ------------------------------------------------------------------ #
    # validation passes
    # ------------------------------------------------------------------ #
    def _validate_program(self, program: Program) -> List[str]:
        diagnostics: List[str] = []
        if not program.name:
            raise CompilationError("programs must have a non-empty name")
        # Topic declarations must be unique; the registry enforces this.
        registry = TopicRegistry(program.topics)
        # Node names must be unique across plain nodes and module members.
        seen: Dict[str, str] = {}
        for node in self._all_declared_nodes(program):
            if node.name in seen:
                raise CompilationError(
                    f"node name {node.name!r} is declared more than once"
                )
            seen[node.name] = node.name
        # Warn (don't fail) when nodes use undeclared topics: undeclared
        # topics are treated as untyped environment channels.
        declared = set(registry.names())
        for node in self._all_declared_nodes(program):
            for topic in tuple(node.subscribes) + tuple(node.publishes):
                if topic not in declared:
                    diagnostics.append(
                        f"node {node.name!r} uses undeclared topic {topic!r} (treated as untyped)"
                    )
        return diagnostics

    @staticmethod
    def _all_declared_nodes(program: Program) -> List[Node]:
        nodes: List[Node] = list(program.nodes)
        for module in program.modules:
            nodes.append(module.advanced)
            nodes.append(module.safe)
        return nodes

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def compile(self, program: Program) -> CompilationResult:
        """Compile a program into an executable RTA system.

        In strict mode a failed well-formedness check raises
        :class:`CompilationError`; otherwise the failure is recorded in the
        per-module report and compilation continues (useful for the
        negative tests and the fault-injection experiments).
        """
        diagnostics = self._validate_program(program)
        reports: Dict[str, WellFormednessReport] = {}
        instances: List[RTAModuleInstance] = []
        for spec in program.modules:
            decision = DecisionModule(spec)
            if self.checker is not None:
                report = self.checker.check(spec, decision)
            else:
                report = structural_report(spec, decision)
            reports[spec.name] = report
            if self.strict and not report.passed:
                raise CompilationError(
                    f"module {spec.name!r} failed well-formedness checks",
                    diagnostics=[str(result) for result in report.failures],
                )
            instances.append(RTAModuleInstance(spec=spec, decision=decision))
        system = RTASystem(
            modules=instances,
            nodes=list(program.nodes),
            topics=TopicRegistry(program.topics),
            name=program.name,
        )
        source = generate_c_source(program, system) if self.emit_source else ""
        return CompilationResult(
            program=program,
            system=system,
            reports=reports,
            diagnostics=diagnostics,
            generated_source=source,
        )


def compile_program(
    program: Program,
    checker: Optional[WellFormednessChecker] = None,
    strict: bool = True,
    emit_source: bool = False,
) -> CompilationResult:
    """Convenience wrapper around :class:`SoterCompiler`."""
    compiler = SoterCompiler(checker=checker, strict=strict, emit_source=emit_source)
    return compiler.compile(program)
