"""Well-formedness checking of RTA modules (Section III-C of the paper).

A module ``(N_ac, N_sc, N_dm, Δ, φ_safe, φ_safer)`` is *well-formed* when:

* **P1a** — the DM runs every Δ and the AC/SC run at least that fast;
* **P1b** — the AC and SC publish on exactly the same output topics;
* **P2a** — (safety of SC) from φ_safe, the closed loop under SC stays in
  φ_safe forever;
* **P2b** — (liveness of SC) from φ_safe, the closed loop under SC
  eventually stays in φ_safer for at least Δ;
* **P3** — from φ_safer, *any* controller keeps the system in φ_safe for
  2Δ.

P1a/P1b are purely structural.  P2a/P2b/P3 are semantic obligations that
the paper discharges with external verification tools; here each module
may carry an analytic :class:`~repro.core.module.ModuleCertificate`
(produced e.g. by the FaSTrack-style synthesis in
:mod:`repro.reachability.fastrack`), and/or the checker validates the
obligations by sampling-based falsification against a closed-loop model of
the plant.  A falsification pass is *evidence*, not proof — the report
records which kind of evidence each check used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Protocol, Sequence

from .decision import DecisionModule
from .errors import WellFormednessError
from .module import RTAModuleSpec


class ClosedLoopModel(Protocol):
    """The plant-facing hooks the falsification-based checks require.

    The monitored state type is opaque to the checker; only the module's
    predicates and these hooks interpret it.
    """

    def sample_safe_state(self) -> Any:
        """A random monitored state inside φ_safe."""

    def sample_safer_state(self) -> Any:
        """A random monitored state inside φ_safer."""

    def rollout_under_safe_controller(self, state: Any, duration: float) -> Sequence[Any]:
        """Monitored states visited when the SC alone controls the plant."""

    def worst_case_stays_safe(self, state: Any, horizon: float) -> bool:
        """True if Reach(state, *, horizon) ⊆ φ_safe (sound over-approximation)."""


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a single well-formedness check."""

    name: str
    passed: bool
    evidence: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name} ({self.evidence}): {self.detail}"


@dataclass
class WellFormednessReport:
    """Aggregated results of all checks for one module."""

    module_name: str
    results: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> List[CheckResult]:
        return [result for result in self.results if not result.passed]

    def result_for(self, name: str) -> CheckResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(f"no check named {name!r} in the report")

    def summary(self) -> str:
        lines = [f"well-formedness report for module {self.module_name!r}:"]
        lines.extend(f"  {result}" for result in self.results)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.passed:
            failed = ", ".join(result.name for result in self.failures)
            raise WellFormednessError(
                f"module {self.module_name!r} is not well-formed; failed checks: {failed}\n"
                + self.summary()
            )


@dataclass
class CheckerOptions:
    """Tunables for the sampling-based checks."""

    samples: int = 20
    p2a_horizon: float = 20.0
    p2b_max_time: float = 30.0
    trust_certificates: bool = True

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError("at least one sample is required")
        if self.p2a_horizon <= 0.0 or self.p2b_max_time <= 0.0:
            raise ValueError("check horizons must be positive")


class WellFormednessChecker:
    """Checks the well-formedness conditions of Section III-C."""

    def __init__(
        self,
        closed_loop: Optional[ClosedLoopModel] = None,
        options: Optional[CheckerOptions] = None,
    ) -> None:
        self.closed_loop = closed_loop
        self.options = options or CheckerOptions()

    # ------------------------------------------------------------------ #
    # structural checks
    # ------------------------------------------------------------------ #
    def check_p1a(self, spec: RTAModuleSpec, decision: Optional[DecisionModule] = None) -> CheckResult:
        """P1a: δ(N_dm) = Δ, δ(N_ac) ≤ Δ and δ(N_sc) ≤ Δ."""
        problems = []
        if spec.advanced.period > spec.delta + 1e-12:
            problems.append(
                f"AC period {spec.advanced.period} exceeds Δ={spec.delta}"
            )
        if spec.safe.period > spec.delta + 1e-12:
            problems.append(f"SC period {spec.safe.period} exceeds Δ={spec.delta}")
        if decision is not None and abs(decision.period - spec.delta) > 1e-12:
            problems.append(
                f"DM period {decision.period} differs from Δ={spec.delta}"
            )
        return CheckResult(
            name="P1a",
            passed=not problems,
            evidence="structural",
            detail="; ".join(problems) if problems else "periods respect Δ",
        )

    def check_p1b(self, spec: RTAModuleSpec) -> CheckResult:
        """P1b: O(N_ac) = O(N_sc)."""
        ac_out = set(spec.advanced.publishes)
        sc_out = set(spec.safe.publishes)
        passed = ac_out == sc_out and len(ac_out) > 0
        if not ac_out:
            detail = "the AC/SC publish no topics, so the DM has nothing to arbitrate"
        elif passed:
            detail = f"both publish {sorted(ac_out)}"
        else:
            detail = f"AC publishes {sorted(ac_out)} but SC publishes {sorted(sc_out)}"
        return CheckResult(name="P1b", passed=passed, evidence="structural", detail=detail)

    # ------------------------------------------------------------------ #
    # semantic checks (certificate or falsification)
    # ------------------------------------------------------------------ #
    def check_p2a(self, spec: RTAModuleSpec) -> CheckResult:
        """P2a: Reach(φ_safe, N_sc, ∞) ⊆ φ_safe."""
        if self.options.trust_certificates and spec.certificate and spec.certificate.proves_p2a:
            return CheckResult(
                name="P2a", passed=True, evidence="certificate",
                detail=spec.certificate.p2a_justification,
            )
        if self.closed_loop is None:
            return CheckResult(
                name="P2a", passed=False, evidence="missing",
                detail="no certificate and no closed-loop model supplied",
            )
        for index in range(self.options.samples):
            start = self.closed_loop.sample_safe_state()
            visited = self.closed_loop.rollout_under_safe_controller(
                start, self.options.p2a_horizon
            )
            for state in visited:
                if not spec.safe_spec.contains(state):
                    return CheckResult(
                        name="P2a", passed=False, evidence="falsification",
                        detail=f"sample {index}: SC left φ_safe from {start!r}",
                    )
        return CheckResult(
            name="P2a", passed=True, evidence="falsification",
            detail=f"{self.options.samples} rollouts of {self.options.p2a_horizon}s stayed in φ_safe",
        )

    def check_p2b(self, spec: RTAModuleSpec) -> CheckResult:
        """P2b: from φ_safe the SC eventually keeps the system in φ_safer for ≥ Δ."""
        if self.options.trust_certificates and spec.certificate and spec.certificate.proves_p2b:
            return CheckResult(
                name="P2b", passed=True, evidence="certificate",
                detail=spec.certificate.p2b_justification,
            )
        if self.closed_loop is None:
            return CheckResult(
                name="P2b", passed=False, evidence="missing",
                detail="no certificate and no closed-loop model supplied",
            )
        for index in range(self.options.samples):
            start = self.closed_loop.sample_safe_state()
            visited = list(
                self.closed_loop.rollout_under_safe_controller(start, self.options.p2b_max_time)
            )
            if not visited:
                return CheckResult(
                    name="P2b", passed=False, evidence="falsification",
                    detail=f"sample {index}: empty rollout",
                )
            if not self._eventually_stays_in_safer(spec, visited):
                return CheckResult(
                    name="P2b", passed=False, evidence="falsification",
                    detail=(
                        f"sample {index}: SC did not reach a φ_safer-invariant window "
                        f"within {self.options.p2b_max_time}s from {start!r}"
                    ),
                )
        return CheckResult(
            name="P2b", passed=True, evidence="falsification",
            detail=f"{self.options.samples} rollouts reached φ_safer and stayed ≥ Δ",
        )

    def _eventually_stays_in_safer(self, spec: RTAModuleSpec, visited: Sequence[Any]) -> bool:
        """True if some suffix window of length ≥ Δ lies entirely in φ_safer."""
        if len(visited) < 2:
            return spec.safer_spec.contains(visited[0])
        total = self.options.p2b_max_time
        dt = total / (len(visited) - 1)
        window = max(1, int(round(spec.delta / dt)))
        run = 0
        for state in visited:
            if spec.safer_spec.contains(state):
                run += 1
                if run >= window:
                    return True
            else:
                run = 0
        return False

    def check_p3(self, spec: RTAModuleSpec) -> CheckResult:
        """P3: Reach(φ_safer, *, 2Δ) ⊆ φ_safe."""
        if self.options.trust_certificates and spec.certificate and spec.certificate.proves_p3:
            return CheckResult(
                name="P3", passed=True, evidence="certificate",
                detail=spec.certificate.p3_justification,
            )
        if self.closed_loop is None:
            return CheckResult(
                name="P3", passed=False, evidence="missing",
                detail="no certificate and no closed-loop model supplied",
            )
        horizon = 2.0 * spec.delta
        for index in range(self.options.samples):
            state = self.closed_loop.sample_safer_state()
            if not self.closed_loop.worst_case_stays_safe(state, horizon):
                return CheckResult(
                    name="P3", passed=False, evidence="falsification",
                    detail=f"sample {index}: Reach(s, *, 2Δ) escapes φ_safe from {state!r}",
                )
        return CheckResult(
            name="P3", passed=True, evidence="falsification",
            detail=f"{self.options.samples} sampled φ_safer states stay safe for 2Δ",
        )

    def check_ttf_consistency(self, spec: RTAModuleSpec) -> CheckResult:
        """φ_safer states must not trigger ttf_2Δ (otherwise the DM would oscillate)."""
        if self.closed_loop is None:
            return CheckResult(
                name="ttf-consistency", passed=True, evidence="skipped",
                detail="no closed-loop model supplied",
            )
        for index in range(self.options.samples):
            state = self.closed_loop.sample_safer_state()
            if spec.ttf(state):
                return CheckResult(
                    name="ttf-consistency", passed=False, evidence="falsification",
                    detail=f"sample {index}: ttf_2Δ holds inside φ_safer at {state!r}",
                )
        return CheckResult(
            name="ttf-consistency", passed=True, evidence="falsification",
            detail="ttf_2Δ is false on all sampled φ_safer states",
        )

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def check(
        self, spec: RTAModuleSpec, decision: Optional[DecisionModule] = None
    ) -> WellFormednessReport:
        """Run every check and return the aggregated report."""
        report = WellFormednessReport(module_name=spec.name)
        report.results.append(self.check_p1a(spec, decision))
        report.results.append(self.check_p1b(spec))
        report.results.append(self.check_p2a(spec))
        report.results.append(self.check_p2b(spec))
        report.results.append(self.check_p3(spec))
        report.results.append(self.check_ttf_consistency(spec))
        return report


def structural_report(spec: RTAModuleSpec, decision: Optional[DecisionModule] = None) -> WellFormednessReport:
    """Run only the structural checks (P1a, P1b); used by the compiler's fast path."""
    checker = WellFormednessChecker(closed_loop=None)
    report = WellFormednessReport(module_name=spec.name)
    report.results.append(checker.check_p1a(spec, decision))
    report.results.append(checker.check_p1b(spec))
    return report
