"""Well-formedness checking of RTA modules (Section III-C of the paper).

A module ``(N_ac, N_sc, N_dm, Δ, φ_safe, φ_safer)`` is *well-formed* when:

* **P1a** — the DM runs every Δ and the AC/SC run at least that fast;
* **P1b** — the AC and SC publish on exactly the same output topics;
* **P2a** — (safety of SC) from φ_safe, the closed loop under SC stays in
  φ_safe forever;
* **P2b** — (liveness of SC) from φ_safe, the closed loop under SC
  eventually stays in φ_safer for at least Δ;
* **P3** — from φ_safer, *any* controller keeps the system in φ_safe for
  2Δ.

P1a/P1b are purely structural.  P2a/P2b/P3 are semantic obligations that
the paper discharges with external verification tools; here each module
may carry an analytic :class:`~repro.core.module.ModuleCertificate`
(produced e.g. by the FaSTrack-style synthesis in
:mod:`repro.reachability.fastrack`), and/or the checker validates the
obligations by sampling-based falsification against a closed-loop model of
the plant.  A falsification pass is *evidence*, not proof — the report
records which kind of evidence each check used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Protocol, Sequence

from .decision import DecisionModule
from .errors import WellFormednessError
from .module import RTAModuleSpec


class ClosedLoopModel(Protocol):
    """The plant-facing hooks the falsification-based checks require.

    The monitored state type is opaque to the checker; only the module's
    predicates and these hooks interpret it.

    Models may additionally provide the ``*_batch`` variants below; when
    every hook a check needs is present (and
    :attr:`CheckerOptions.use_batch` is on), the checker routes the whole
    falsification pass through them — N samples × T rollout steps collapse
    into a handful of vectorised calls.  Batch hooks must agree with their
    scalar counterparts sample for sample: ``sample_*_batch(n)`` draws the
    same states as *n* scalar calls (same RNG stream), and batched
    rollouts/reachability produce the same trajectories/verdicts, so
    every check, run from the same sampler state, returns the same
    verdict and detail on either plane.

    One caveat on *sequences* of checks sharing a sampler: when a check
    **fails**, the scalar loop stops drawing at the failing sample while
    the batched plane has already drawn its whole chunk
    (:attr:`CheckerOptions.batch_chunk`), so a later check continues the
    shared RNG stream from a different position than it would under the
    scalar plane.  Passing checks consume exactly ``samples`` draws on
    both planes.
    """

    def sample_safe_state(self) -> Any:
        """A random monitored state inside φ_safe."""

    def sample_safer_state(self) -> Any:
        """A random monitored state inside φ_safer."""

    def rollout_under_safe_controller(self, state: Any, duration: float) -> Sequence[Any]:
        """Monitored states visited when the SC alone controls the plant."""

    def worst_case_stays_safe(self, state: Any, horizon: float) -> bool:
        """True if Reach(state, *, horizon) ⊆ φ_safe (sound over-approximation).

        Optional batch hooks (all, when present, must agree sample for
        sample with the scalar paths above):

        * ``sample_safe_state_batch(count)`` / ``sample_safer_state_batch(count)``
          — ``count`` states from the same RNG stream as ``count`` scalar draws;
        * ``rollout_under_safe_controller_batch(states, duration)``
          — one trajectory (sequence of states) per start state;
        * ``rollout_safe_flags_batch(count, duration)`` /
          ``rollout_safer_flags_batch(count, duration)``
          — draw ``count`` φ_safe starts, roll all of them out, and return
          ``(starts, flags)`` where ``flags[i][t]`` is the module's
          φ_safe / φ_safer verdict on visited state ``t`` of sample ``i``.
          These keep the entire pass in structure-of-arrays form (no
          per-state objects), which is the fastest plane the checker uses;
        * ``worst_case_stays_safe_batch(states, horizon)`` — one verdict
          per state.
        """


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a single well-formedness check."""

    name: str
    passed: bool
    evidence: str
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        status = "PASS" if self.passed else "FAIL"
        return f"[{status}] {self.name} ({self.evidence}): {self.detail}"


@dataclass
class WellFormednessReport:
    """Aggregated results of all checks for one module."""

    module_name: str
    results: List[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> List[CheckResult]:
        return [result for result in self.results if not result.passed]

    def result_for(self, name: str) -> CheckResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(f"no check named {name!r} in the report")

    def summary(self) -> str:
        lines = [f"well-formedness report for module {self.module_name!r}:"]
        lines.extend(f"  {result}" for result in self.results)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.passed:
            failed = ", ".join(result.name for result in self.failures)
            raise WellFormednessError(
                f"module {self.module_name!r} is not well-formed; failed checks: {failed}\n"
                + self.summary()
            )


@dataclass
class CheckerOptions:
    """Tunables for the sampling-based checks.

    ``use_batch`` routes P2a/P2b/P3 through the closed-loop model's
    ``*_batch`` hooks when it provides them (see :class:`ClosedLoopModel`);
    each check's verdict and detail are identical to the scalar loop run
    from the same sampler state (a *failing* check consumes more sampler
    draws on the batch plane — see the :class:`ClosedLoopModel` caveat).
    The flag exists so the equivalence tests and benchmarks can compare
    both planes.
    """

    samples: int = 20
    p2a_horizon: float = 20.0
    p2b_max_time: float = 30.0
    trust_certificates: bool = True
    use_batch: bool = True
    #: The flags-plane checks process samples in chunks of this size: a
    #: check that fails on an early sample stops after its chunk instead
    #: of paying for every remaining rollout (the batched analogue of the
    #: scalar loop's early exit), while passing checks still amortise the
    #: whole pass over ``samples / batch_chunk`` vectorised calls.  The
    #: per-step vectorisation overhead is (nearly) independent of the
    #: chunk width, so wider chunks favour passing checks and narrower
    #: ones favour fast falsification.
    batch_chunk: int = 128

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError("at least one sample is required")
        if self.p2a_horizon <= 0.0 or self.p2b_max_time <= 0.0:
            raise ValueError("check horizons must be positive")
        if self.batch_chunk < 1:
            raise ValueError("batch_chunk must be at least 1")


class WellFormednessChecker:
    """Checks the well-formedness conditions of Section III-C."""

    def __init__(
        self,
        closed_loop: Optional[ClosedLoopModel] = None,
        options: Optional[CheckerOptions] = None,
    ) -> None:
        self.closed_loop = closed_loop
        self.options = options or CheckerOptions()

    def _can_batch(self, *hooks: str) -> bool:
        """True when batching is enabled and the model provides every hook."""
        if not self.options.use_batch or self.closed_loop is None:
            return False
        return all(callable(getattr(self.closed_loop, hook, None)) for hook in hooks)

    # ------------------------------------------------------------------ #
    # structural checks
    # ------------------------------------------------------------------ #
    def check_p1a(self, spec: RTAModuleSpec, decision: Optional[DecisionModule] = None) -> CheckResult:
        """P1a: δ(N_dm) = Δ, δ(N_ac) ≤ Δ and δ(N_sc) ≤ Δ."""
        problems = []
        if spec.advanced.period > spec.delta + 1e-12:
            problems.append(
                f"AC period {spec.advanced.period} exceeds Δ={spec.delta}"
            )
        if spec.safe.period > spec.delta + 1e-12:
            problems.append(f"SC period {spec.safe.period} exceeds Δ={spec.delta}")
        if decision is not None and abs(decision.period - spec.delta) > 1e-12:
            problems.append(
                f"DM period {decision.period} differs from Δ={spec.delta}"
            )
        return CheckResult(
            name="P1a",
            passed=not problems,
            evidence="structural",
            detail="; ".join(problems) if problems else "periods respect Δ",
        )

    def check_p1b(self, spec: RTAModuleSpec) -> CheckResult:
        """P1b: O(N_ac) = O(N_sc)."""
        ac_out = set(spec.advanced.publishes)
        sc_out = set(spec.safe.publishes)
        passed = ac_out == sc_out and len(ac_out) > 0
        if not ac_out:
            detail = "the AC/SC publish no topics, so the DM has nothing to arbitrate"
        elif passed:
            detail = f"both publish {sorted(ac_out)}"
        else:
            detail = f"AC publishes {sorted(ac_out)} but SC publishes {sorted(sc_out)}"
        return CheckResult(name="P1b", passed=passed, evidence="structural", detail=detail)

    # ------------------------------------------------------------------ #
    # semantic checks (certificate or falsification)
    # ------------------------------------------------------------------ #
    def check_p2a(self, spec: RTAModuleSpec) -> CheckResult:
        """P2a: Reach(φ_safe, N_sc, ∞) ⊆ φ_safe."""
        if self.options.trust_certificates and spec.certificate and spec.certificate.proves_p2a:
            return CheckResult(
                name="P2a", passed=True, evidence="certificate",
                detail=spec.certificate.p2a_justification,
            )
        if self.closed_loop is None:
            return CheckResult(
                name="P2a", passed=False, evidence="missing",
                detail="no certificate and no closed-loop model supplied",
            )
        if self._can_batch("rollout_safe_flags_batch"):
            return self._check_p2a_flags(spec)
        if self._can_batch("sample_safe_state_batch", "rollout_under_safe_controller_batch"):
            return self._check_p2a_batch(spec)
        for index in range(self.options.samples):
            start = self.closed_loop.sample_safe_state()
            visited = self.closed_loop.rollout_under_safe_controller(
                start, self.options.p2a_horizon
            )
            for state in visited:
                if not spec.safe_spec.contains(state):
                    return CheckResult(
                        name="P2a", passed=False, evidence="falsification",
                        detail=f"sample {index}: SC left φ_safe from {start!r}",
                    )
        return CheckResult(
            name="P2a", passed=True, evidence="falsification",
            detail=f"{self.options.samples} rollouts of {self.options.p2a_horizon}s stayed in φ_safe",
        )

    def _chunk_sizes(self) -> List[int]:
        """The sample counts of each flags-plane chunk (sums to ``samples``)."""
        remaining = self.options.samples
        chunk = self.options.batch_chunk
        sizes = []
        while remaining > 0:
            sizes.append(min(chunk, remaining))
            remaining -= sizes[-1]
        return sizes

    def _check_p2a_flags(self, spec: RTAModuleSpec) -> CheckResult:
        """P2a entirely on the structure-of-arrays plane (no per-state objects).

        The closed-loop model rolls each chunk of samples out as one state
        matrix and evaluates the module's φ_safe verdicts with one
        vectorised query; the returned flags are, by the hook's contract,
        equal to mapping ``spec.safe_spec.contains`` over the scalar
        rollouts, and chunking preserves the sampler stream and the
        first-failing-sample detail.
        """
        assert self.closed_loop is not None
        samples = self.options.samples
        offset = 0
        for size in self._chunk_sizes():
            starts, flags = self.closed_loop.rollout_safe_flags_batch(
                size, self.options.p2a_horizon
            )
            for index, sample_flags in enumerate(flags):
                ok = sample_flags.all() if hasattr(sample_flags, "all") else all(sample_flags)
                if not ok:
                    return CheckResult(
                        name="P2a", passed=False, evidence="falsification",
                        detail=f"sample {offset + index}: SC left φ_safe from {starts[index]!r}",
                    )
            offset += size
        return CheckResult(
            name="P2a", passed=True, evidence="falsification",
            detail=f"{samples} rollouts of {self.options.p2a_horizon}s stayed in φ_safe",
        )

    def _check_p2a_batch(self, spec: RTAModuleSpec) -> CheckResult:
        """P2a with all rollouts integrated and checked through the batch plane.

        The sampler draws all N start states in one call (same RNG stream
        as N scalar draws), the SC rollouts integrate one structure-of-
        arrays state matrix, and φ_safe is evaluated over every visited
        state with one batched predicate call — verdict and failing-sample
        detail are identical to the scalar loop.
        """
        assert self.closed_loop is not None
        samples = self.options.samples
        starts = list(self.closed_loop.sample_safe_state_batch(samples))
        trajectories = self.closed_loop.rollout_under_safe_controller_batch(
            starts, self.options.p2a_horizon
        )
        flat = [state for visited in trajectories for state in visited]
        verdicts = spec.safe_spec.contains_batch(flat)
        offset = 0
        for index, visited in enumerate(trajectories):
            count = len(visited)
            if not all(verdicts[offset : offset + count]):
                return CheckResult(
                    name="P2a", passed=False, evidence="falsification",
                    detail=f"sample {index}: SC left φ_safe from {starts[index]!r}",
                )
            offset += count
        return CheckResult(
            name="P2a", passed=True, evidence="falsification",
            detail=f"{samples} rollouts of {self.options.p2a_horizon}s stayed in φ_safe",
        )

    def check_p2b(self, spec: RTAModuleSpec) -> CheckResult:
        """P2b: from φ_safe the SC eventually keeps the system in φ_safer for ≥ Δ."""
        if self.options.trust_certificates and spec.certificate and spec.certificate.proves_p2b:
            return CheckResult(
                name="P2b", passed=True, evidence="certificate",
                detail=spec.certificate.p2b_justification,
            )
        if self.closed_loop is None:
            return CheckResult(
                name="P2b", passed=False, evidence="missing",
                detail="no certificate and no closed-loop model supplied",
            )
        if self._can_batch("rollout_safer_flags_batch"):
            return self._check_p2b_flags(spec)
        if self._can_batch("sample_safe_state_batch", "rollout_under_safe_controller_batch"):
            return self._check_p2b_batch(spec)
        for index in range(self.options.samples):
            start = self.closed_loop.sample_safe_state()
            visited = list(
                self.closed_loop.rollout_under_safe_controller(start, self.options.p2b_max_time)
            )
            if not visited:
                return CheckResult(
                    name="P2b", passed=False, evidence="falsification",
                    detail=f"sample {index}: empty rollout",
                )
            if not self._eventually_stays_in_safer(spec, visited):
                return CheckResult(
                    name="P2b", passed=False, evidence="falsification",
                    detail=(
                        f"sample {index}: SC did not reach a φ_safer-invariant window "
                        f"within {self.options.p2b_max_time}s from {start!r}"
                    ),
                )
        return CheckResult(
            name="P2b", passed=True, evidence="falsification",
            detail=f"{self.options.samples} rollouts reached φ_safer and stayed ≥ Δ",
        )

    def _check_p2b_flags(self, spec: RTAModuleSpec) -> CheckResult:
        """P2b entirely on the structure-of-arrays plane (no per-state objects)."""
        assert self.closed_loop is not None
        samples = self.options.samples
        offset = 0
        for size in self._chunk_sizes():
            starts, flags = self.closed_loop.rollout_safer_flags_batch(
                size, self.options.p2b_max_time
            )
            for index, sample_flags in enumerate(flags):
                sample_flags = list(sample_flags)
                if not sample_flags:
                    return CheckResult(
                        name="P2b", passed=False, evidence="falsification",
                        detail=f"sample {offset + index}: empty rollout",
                    )
                if not self._flags_reach_safer_window(spec, sample_flags):
                    return CheckResult(
                        name="P2b", passed=False, evidence="falsification",
                        detail=(
                            f"sample {offset + index}: SC did not reach a φ_safer-invariant window "
                            f"within {self.options.p2b_max_time}s from {starts[index]!r}"
                        ),
                    )
            offset += size
        return CheckResult(
            name="P2b", passed=True, evidence="falsification",
            detail=f"{samples} rollouts reached φ_safer and stayed ≥ Δ",
        )

    def _check_p2b_batch(self, spec: RTAModuleSpec) -> CheckResult:
        """P2b over batched rollouts; verdicts identical to the scalar loop."""
        assert self.closed_loop is not None
        samples = self.options.samples
        starts = list(self.closed_loop.sample_safe_state_batch(samples))
        trajectories = self.closed_loop.rollout_under_safe_controller_batch(
            starts, self.options.p2b_max_time
        )
        for index, visited in enumerate(trajectories):
            visited = list(visited)
            if not visited:
                return CheckResult(
                    name="P2b", passed=False, evidence="falsification",
                    detail=f"sample {index}: empty rollout",
                )
            flags = [bool(ok) for ok in spec.safer_spec.contains_batch(visited)]
            if not self._flags_reach_safer_window(spec, flags):
                return CheckResult(
                    name="P2b", passed=False, evidence="falsification",
                    detail=(
                        f"sample {index}: SC did not reach a φ_safer-invariant window "
                        f"within {self.options.p2b_max_time}s from {starts[index]!r}"
                    ),
                )
        return CheckResult(
            name="P2b", passed=True, evidence="falsification",
            detail=f"{samples} rollouts reached φ_safer and stayed ≥ Δ",
        )

    def _eventually_stays_in_safer(self, spec: RTAModuleSpec, visited: Sequence[Any]) -> bool:
        """True if some suffix window of length ≥ Δ lies entirely in φ_safer."""
        if len(visited) < 2:
            return spec.safer_spec.contains(visited[0])
        total = self.options.p2b_max_time
        dt = total / (len(visited) - 1)
        window = max(1, int(round(spec.delta / dt)))
        run = 0
        for state in visited:
            if spec.safer_spec.contains(state):
                run += 1
                if run >= window:
                    return True
            else:
                run = 0
        return False

    def _flags_reach_safer_window(self, spec: RTAModuleSpec, flags: Sequence[bool]) -> bool:
        """:meth:`_eventually_stays_in_safer` over precomputed φ_safer verdicts."""
        if len(flags) < 2:
            return bool(flags[0])
        total = self.options.p2b_max_time
        dt = total / (len(flags) - 1)
        window = max(1, int(round(spec.delta / dt)))
        run = 0
        for ok in flags:
            if ok:
                run += 1
                if run >= window:
                    return True
            else:
                run = 0
        return False

    def check_p3(self, spec: RTAModuleSpec) -> CheckResult:
        """P3: Reach(φ_safer, *, 2Δ) ⊆ φ_safe."""
        if self.options.trust_certificates and spec.certificate and spec.certificate.proves_p3:
            return CheckResult(
                name="P3", passed=True, evidence="certificate",
                detail=spec.certificate.p3_justification,
            )
        if self.closed_loop is None:
            return CheckResult(
                name="P3", passed=False, evidence="missing",
                detail="no certificate and no closed-loop model supplied",
            )
        horizon = 2.0 * spec.delta
        if self._can_batch("sample_safer_state_batch", "worst_case_stays_safe_batch"):
            states = list(self.closed_loop.sample_safer_state_batch(self.options.samples))
            verdicts = self.closed_loop.worst_case_stays_safe_batch(states, horizon)
            for index, stays_safe in enumerate(verdicts):
                if not stays_safe:
                    return CheckResult(
                        name="P3", passed=False, evidence="falsification",
                        detail=f"sample {index}: Reach(s, *, 2Δ) escapes φ_safe from {states[index]!r}",
                    )
            return CheckResult(
                name="P3", passed=True, evidence="falsification",
                detail=f"{self.options.samples} sampled φ_safer states stay safe for 2Δ",
            )
        for index in range(self.options.samples):
            state = self.closed_loop.sample_safer_state()
            if not self.closed_loop.worst_case_stays_safe(state, horizon):
                return CheckResult(
                    name="P3", passed=False, evidence="falsification",
                    detail=f"sample {index}: Reach(s, *, 2Δ) escapes φ_safe from {state!r}",
                )
        return CheckResult(
            name="P3", passed=True, evidence="falsification",
            detail=f"{self.options.samples} sampled φ_safer states stay safe for 2Δ",
        )

    def check_ttf_consistency(self, spec: RTAModuleSpec) -> CheckResult:
        """φ_safer states must not trigger ttf_2Δ (otherwise the DM would oscillate)."""
        if self.closed_loop is None:
            return CheckResult(
                name="ttf-consistency", passed=True, evidence="skipped",
                detail="no closed-loop model supplied",
            )
        for index in range(self.options.samples):
            state = self.closed_loop.sample_safer_state()
            if spec.ttf(state):
                return CheckResult(
                    name="ttf-consistency", passed=False, evidence="falsification",
                    detail=f"sample {index}: ttf_2Δ holds inside φ_safer at {state!r}",
                )
        return CheckResult(
            name="ttf-consistency", passed=True, evidence="falsification",
            detail="ttf_2Δ is false on all sampled φ_safer states",
        )

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #
    def check(
        self, spec: RTAModuleSpec, decision: Optional[DecisionModule] = None
    ) -> WellFormednessReport:
        """Run every check and return the aggregated report."""
        report = WellFormednessReport(module_name=spec.name)
        report.results.append(self.check_p1a(spec, decision))
        report.results.append(self.check_p1b(spec))
        report.results.append(self.check_p2a(spec))
        report.results.append(self.check_p2b(spec))
        report.results.append(self.check_p3(spec))
        report.results.append(self.check_ttf_consistency(spec))
        return report


def structural_report(spec: RTAModuleSpec, decision: Optional[DecisionModule] = None) -> WellFormednessReport:
    """Run only the structural checks (P1a, P1b); used by the compiler's fast path."""
    checker = WellFormednessChecker(closed_loop=None)
    report = WellFormednessReport(module_name=spec.name)
    report.results.append(checker.check_p1a(spec, decision))
    report.results.append(checker.check_p1b(spec))
    return report
