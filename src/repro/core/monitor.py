"""Safety and invariant monitors.

Monitors observe the running system (its topic valuation and module modes)
and record violations.  They serve two purposes in the reproduction:

* validating Theorem 3.1's invariant ``φ_Inv`` online (the
  :class:`InvariantMonitor`), and
* measuring how often the *unprotected* stack violates φ_safe (Figure 5)
  versus the RTA-protected stack (Figures 12a–c, Section V-D).

Batched evaluation
------------------
Besides the immediate :meth:`MonitorSuite.check_all`, the suite offers a
windowed path: :meth:`MonitorSuite.capture_all` snapshots each monitor's
observations (topic value, module mode, time) without evaluating any
predicate, and :meth:`MonitorSuite.flush` evaluates a whole window of
samples in one batched call per monitor.  Verdicts, violation times and
the violation *order* are identical to running ``check_all`` at every
sample — batch predicates are required to agree with their scalar
counterparts (see :class:`~repro.core.specs.SafetySpec`) and flushed
violations are re-sorted into sample-major, monitor-minor order, exactly
the order the scalar loop produces.  Executors and the systematic tester
use this to amortise Python dispatch over many samples while preserving
first-violation times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..geometry import min_pairwise_separation, pairwise_index_pairs, pairwise_separations
from .decision import Mode
from .module import RTAModuleInstance
from .semantics import SemanticsEngine
from .specs import SafetySpec


@dataclass(frozen=True)
class Violation:
    """A recorded violation of a monitored property."""

    time: float
    monitor: str
    message: str
    state: Any = None

    # Recorded event, never mutated after creation: copying returns the
    # object itself, which keeps snapshot paths cheap.
    def __copy__(self) -> "Violation":
        return self

    def __deepcopy__(self, memo: dict) -> "Violation":
        return self


@dataclass
class MonitorResult:
    """Violations accumulated by one monitor."""

    name: str
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def count(self) -> int:
        return len(self.violations)

    def clear(self) -> None:
        """Forget every recorded violation (used by the reset-and-reuse path)."""
        self.violations.clear()


class TopicSafetyMonitor:
    """Checks a :class:`SafetySpec` against the value of a topic every sample."""

    def __init__(
        self,
        name: str,
        topic: str,
        spec: SafetySpec,
        ignore_missing: bool = True,
    ) -> None:
        self.name = name
        self.topic = topic
        self.spec = spec
        self.ignore_missing = ignore_missing
        self.result = MonitorResult(name=name)
        self._pending: List[Tuple[int, float, Any]] = []

    def reset(self) -> None:
        """Forget recorded violations and pending samples (Resettable)."""
        self.result.clear()
        self._pending.clear()

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    def capture_delta_state(self) -> tuple:
        return (tuple(self.result.violations), tuple(self._pending))

    def restore_delta_state(self, state: tuple) -> None:
        violations, pending = state
        self.result.violations[:] = violations
        self._pending[:] = pending

    def check(self, engine: SemanticsEngine) -> Optional[Violation]:
        """Evaluate the property on the current topic value; record any violation."""
        value = engine.read_topic(self.topic)
        if value is None and self.ignore_missing:
            return None
        if self.spec.contains(value):
            return None
        violation = Violation(
            time=engine.current_time,
            monitor=self.name,
            message=f"topic {self.topic!r} violates {self.spec.name}",
            state=value,
        )
        self.result.violations.append(violation)
        return violation

    # -- windowed evaluation -------------------------------------------- #
    def capture(self, engine: SemanticsEngine, serial: int) -> None:
        """Snapshot the topic value; predicates are deferred to :meth:`flush`."""
        self._pending.append((serial, engine.current_time, engine.read_topic(self.topic)))

    def flush(self) -> List[Tuple[int, Violation]]:
        """Evaluate all captured samples in one batched call.

        Returns ``(serial, violation)`` pairs so the suite can restore the
        exact order the scalar loop would have produced.
        """
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        values = [value for _, _, value in pending]
        verdicts = self.spec.contains_batch(values)
        flushed: List[Tuple[int, Violation]] = []
        for (serial, time, value), ok in zip(pending, verdicts):
            if ok or (value is None and self.ignore_missing):
                continue
            violation = Violation(
                time=time,
                monitor=self.name,
                message=f"topic {self.topic!r} violates {self.spec.name}",
                state=value,
            )
            self.result.violations.append(violation)
            flushed.append((serial, violation))
        return flushed


class DeadlineMonitor:
    """Checks that a topic never stays outside a :class:`SafetySpec` too long.

    The RTA certificates bound *recovery*, not instantaneous validity: an
    invalid plan published by the advanced planner is legitimate as long
    as the safe controller replaces it within Δ (the P3 justification).
    This monitor encodes exactly that temporal property: a violation is
    recorded only when the predicate has been **continuously** false for
    strictly more than ``grace`` seconds — one violation per bad streak,
    stamped at the first sample past the deadline.  Missing values
    (``None``) end a streak when ``ignore_missing`` is set, mirroring
    :class:`TopicSafetyMonitor`.

    The windowed :meth:`capture`/:meth:`flush` path replays the same
    state machine over the captured samples in order (streaks legally
    span window boundaries — the streak state lives on the monitor), so
    verdicts, times and messages are identical to calling :meth:`check`
    at every sample.
    """

    def __init__(
        self,
        name: str,
        topic: str,
        spec: SafetySpec,
        grace: float,
        ignore_missing: bool = True,
    ) -> None:
        if grace < 0.0:
            raise ValueError("the grace period must be non-negative")
        self.name = name
        self.topic = topic
        self.spec = spec
        self.grace = float(grace)
        self.ignore_missing = ignore_missing
        self.result = MonitorResult(name=name)
        self._bad_since: Optional[float] = None
        self._reported = False
        self._pending: List[Tuple[int, float, Any]] = []

    def reset(self) -> None:
        """Forget violations, pending samples, and the current streak (Resettable)."""
        self.result.clear()
        self._pending.clear()
        self._bad_since = None
        self._reported = False

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    def capture_delta_state(self) -> tuple:
        return (
            tuple(self.result.violations),
            tuple(self._pending),
            self._bad_since,
            self._reported,
        )

    def restore_delta_state(self, state: tuple) -> None:
        violations, pending, bad_since, reported = state
        self.result.violations[:] = violations
        self._pending[:] = pending
        self._bad_since = bad_since
        self._reported = reported

    def _observe(self, time: float, value: Any) -> Optional[Violation]:
        """Advance the streak state machine by one sample."""
        if value is None:
            ok = self.ignore_missing
        else:
            ok = bool(self.spec.contains(value))
        if ok:
            self._bad_since = None
            self._reported = False
            return None
        if self._bad_since is None:
            self._bad_since = time
            return None
        if self._reported or (time - self._bad_since) <= self.grace + 1e-12:
            return None
        self._reported = True
        violation = Violation(
            time=time,
            monitor=self.name,
            message=(
                f"topic {self.topic!r} outside {self.spec.name} "
                f"for more than {self.grace:g} s"
            ),
            state=value,
        )
        self.result.violations.append(violation)
        return violation

    def check(self, engine: SemanticsEngine) -> Optional[Violation]:
        """Evaluate the deadline property on the current topic value."""
        return self._observe(engine.current_time, engine.read_topic(self.topic))

    # -- windowed evaluation -------------------------------------------- #
    def capture(self, engine: SemanticsEngine, serial: int) -> None:
        """Snapshot the topic value; the streak machine runs at :meth:`flush`."""
        self._pending.append((serial, engine.current_time, engine.read_topic(self.topic)))

    def flush(self) -> List[Tuple[int, Violation]]:
        """Replay the streak state machine over the captured window in order."""
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        flushed: List[Tuple[int, Violation]] = []
        for serial, time, value in pending:
            violation = self._observe(time, value)
            if violation is not None:
                flushed.append((serial, violation))
        return flushed


class SeparationMonitor:
    """Checks pairwise minimum separation between N vehicles' position topics.

    This is the shared-airspace safety plane of a multi-vehicle
    composition: every sample it reads one state topic per vehicle,
    extracts positions, and flags the closest pair whenever its distance
    drops below ``min_separation``.  Samples in which any vehicle's topic
    is still unset are skipped (nothing to separate yet), mirroring
    :class:`TopicSafetyMonitor`'s ``ignore_missing`` behaviour.

    The scalar :meth:`check` walks the ``N*(N-1)/2`` pairs with
    :func:`~repro.geometry.min_pairwise_separation` — the oracle.  The
    windowed :meth:`capture`/:meth:`flush` path answers a whole window of
    samples with **one** batched N² query
    (:func:`~repro.geometry.pairwise_separations` over an ``(S, N, 3)``
    array); both planes evaluate the same floating-point expressions in
    the same order, so verdicts, offending pairs, times and messages are
    bit-for-bit identical (``use_batch=False`` keeps the scalar loop in
    ``flush`` for the equivalence tests).
    """

    def __init__(
        self,
        topics: Sequence[str],
        min_separation: float,
        name: str = "phi_separation",
        position_of: Optional[Callable[[Any], Any]] = None,
        use_batch: bool = True,
    ) -> None:
        if len(topics) < 2:
            raise ValueError("a separation monitor needs at least two vehicle topics")
        if len(set(topics)) != len(topics):
            raise ValueError("vehicle topics must be distinct")
        if min_separation <= 0.0:
            raise ValueError("min_separation must be positive")
        self.topics: Tuple[str, ...] = tuple(topics)
        self.min_separation = float(min_separation)
        self.name = name
        # Default extractor handles both DroneState-like payloads (with a
        # ``.position``) and raw Vec3 positions.
        self.position_of = position_of or (lambda value: getattr(value, "position", value))
        self.use_batch = use_batch
        self.result = MonitorResult(name=name)
        self._pairs = pairwise_index_pairs(len(self.topics))
        self._pending: List[Tuple[int, float, Tuple[Any, ...]]] = []

    def reset(self) -> None:
        """Forget recorded violations and pending samples (Resettable)."""
        self.result.clear()
        self._pending.clear()

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    def capture_delta_state(self) -> tuple:
        return (tuple(self.result.violations), tuple(self._pending))

    def restore_delta_state(self, state: tuple) -> None:
        violations, pending = state
        self.result.violations[:] = violations
        self._pending[:] = pending

    # -- shared scalar/batch pieces -------------------------------------- #
    def _read_all(self, engine: SemanticsEngine) -> Tuple[Any, ...]:
        return tuple(engine.read_topic(topic) for topic in self.topics)

    def _positions(self, values: Sequence[Any]) -> Optional[List[Any]]:
        """The per-vehicle positions, or ``None`` if any topic is unset."""
        positions = []
        for value in values:
            if value is None:
                return None
            positions.append(self.position_of(value))
        return positions

    def _violation(
        self, time: float, distance: float, pair: Tuple[int, int], values: Sequence[Any]
    ) -> Violation:
        i, j = pair
        violation = Violation(
            time=time,
            monitor=self.name,
            message=(
                f"separation {self.topics[i]!r}<->{self.topics[j]!r} is "
                f"{distance:.3f} m < {self.min_separation:.3f} m"
            ),
            state=(values[i], values[j]),
        )
        self.result.violations.append(violation)
        return violation

    # -- immediate evaluation (the scalar oracle) ------------------------- #
    def check(self, engine: SemanticsEngine) -> Optional[Violation]:
        """Evaluate pairwise separation now; record the closest offending pair."""
        values = self._read_all(engine)
        positions = self._positions(values)
        if positions is None:
            return None
        distance, pair = min_pairwise_separation(positions)
        if distance >= self.min_separation:
            return None
        return self._violation(engine.current_time, float(distance), pair, values)

    # -- windowed evaluation -------------------------------------------- #
    def capture(self, engine: SemanticsEngine, serial: int) -> None:
        """Snapshot every vehicle topic; separations are deferred to :meth:`flush`."""
        self._pending.append((serial, engine.current_time, self._read_all(engine)))

    def flush(self) -> List[Tuple[int, Violation]]:
        """Evaluate all captured samples — one batched N² query per window."""
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        rows = [(entry, self._positions(entry[2])) for entry in pending]
        complete = [(entry, positions) for entry, positions in rows if positions is not None]
        if not complete:
            return []
        flushed: List[Tuple[int, Violation]] = []
        if self.use_batch:
            stacked = np.array(
                [[tuple(position) for position in positions] for _, positions in complete],
                dtype=float,
            )
            separations = pairwise_separations(stacked)  # (S, P)
            worst = separations.argmin(axis=1)  # first minimal pair, like the scalar scan
            for row, ((serial, time, values), _) in enumerate(complete):
                pair_index = int(worst[row])
                distance = float(separations[row, pair_index])
                if distance >= self.min_separation:
                    continue
                flushed.append(
                    (serial, self._violation(time, distance, self._pairs[pair_index], values))
                )
            return flushed
        for (serial, time, values), positions in complete:
            distance, pair = min_pairwise_separation(positions)
            if distance >= self.min_separation:
                continue
            flushed.append((serial, self._violation(time, float(distance), pair, values)))
        return flushed


class InvariantMonitor:
    """Checks Theorem 3.1's invariant ``φ_Inv(mode, s)`` for one module.

    ``φ_Inv`` holds when either the module is in SC mode and the monitored
    state is in φ_safe, or the module is in AC mode and every state
    reachable within Δ (under any controller) is in φ_safe.  The caller
    supplies ``may_leave_within(state, horizon)`` — a sound
    over-approximate check that Reach(state, *, horizon) escapes φ_safe —
    typically built from :class:`repro.reachability.WorstCaseReachability`.
    """

    def __init__(
        self,
        module: RTAModuleInstance,
        may_leave_within: Callable[[Any, float], bool],
        state_topic: Optional[str] = None,
        may_leave_within_batch: Optional[Callable[[Sequence[Any], float], Sequence[bool]]] = None,
    ) -> None:
        self.module = module
        self.may_leave_within = may_leave_within
        self.may_leave_within_batch = may_leave_within_batch
        self.state_topic = state_topic or module.spec.state_topics[0]
        self.name = f"phi_inv[{module.name}]"
        self.result = MonitorResult(name=self.name)
        self.samples = 0
        self._pending: List[Tuple[int, float, Mode, Any]] = []

    def reset(self) -> None:
        """Forget recorded violations, samples, and pending windows (Resettable)."""
        self.result.clear()
        self.samples = 0
        self._pending.clear()

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    def capture_delta_state(self) -> tuple:
        return (tuple(self.result.violations), tuple(self._pending), self.samples)

    def restore_delta_state(self, state: tuple) -> None:
        violations, pending, samples = state
        self.result.violations[:] = violations
        self._pending[:] = pending
        self.samples = samples

    def holds(self, mode: Mode, state: Any) -> bool:
        """Evaluate φ_Inv on a (mode, state) pair."""
        if state is None:
            return True  # nothing to check yet
        if mode is Mode.SC:
            return self.module.spec.safe_spec.contains(state)
        return not self.may_leave_within(state, self.module.spec.delta)

    def check(self, engine: SemanticsEngine) -> Optional[Violation]:
        """Evaluate φ_Inv on the running system."""
        self.samples += 1
        state = engine.read_topic(self.state_topic)
        mode = self.module.decision.mode
        if self.holds(mode, state):
            return None
        violation = Violation(
            time=engine.current_time,
            monitor=self.name,
            message=f"φ_Inv violated in mode {mode.value}",
            state=state,
        )
        self.result.violations.append(violation)
        return violation

    # -- windowed evaluation -------------------------------------------- #
    def capture(self, engine: SemanticsEngine, serial: int) -> None:
        """Snapshot (time, mode, state); the mode must be read *now*, not at flush."""
        self.samples += 1
        self._pending.append(
            (serial, engine.current_time, self.module.decision.mode, engine.read_topic(self.state_topic))
        )

    def flush(self) -> List[Tuple[int, Violation]]:
        """Evaluate all captured (mode, state) samples, batching the AC-mode reach checks."""
        if not self._pending:
            return []
        pending, self._pending = self._pending, []
        holds = [True] * len(pending)
        safe_spec = self.module.spec.safe_spec
        sc_indices = [
            i for i, (_, _, mode, state) in enumerate(pending) if state is not None and mode is Mode.SC
        ]
        ac_indices = [
            i for i, (_, _, mode, state) in enumerate(pending) if state is not None and mode is not Mode.SC
        ]
        if sc_indices:
            verdicts = safe_spec.contains_batch([pending[i][3] for i in sc_indices])
            for i, ok in zip(sc_indices, verdicts):
                holds[i] = bool(ok)
        if ac_indices:
            delta = self.module.spec.delta
            states = [pending[i][3] for i in ac_indices]
            if self.may_leave_within_batch is not None:
                escapes = self.may_leave_within_batch(states, delta)
            else:
                escapes = [self.may_leave_within(state, delta) for state in states]
            for i, escapes_safe in zip(ac_indices, escapes):
                holds[i] = not bool(escapes_safe)
        flushed: List[Tuple[int, Violation]] = []
        for (serial, time, mode, state), ok in zip(pending, holds):
            if ok:
                continue
            violation = Violation(
                time=time,
                monitor=self.name,
                message=f"φ_Inv violated in mode {mode.value}",
                state=state,
            )
            self.result.violations.append(violation)
            flushed.append((serial, violation))
        return flushed


class MonitorSuite:
    """A collection of monitors evaluated together after every sampling instant."""

    def __init__(self, monitors: Optional[List[Any]] = None) -> None:
        self.monitors: List[Any] = list(monitors or [])
        self._serial = 0
        self._immediate: List[Tuple[int, int, Violation]] = []

    def add(self, monitor: Any) -> None:
        self.monitors.append(monitor)

    def reset(self) -> None:
        """Restore the suite (and every monitor) to its just-built state.

        Part of the :class:`~repro.core.resettable.Resettable` protocol:
        the reset-and-reuse tester calls this between executions instead
        of constructing a fresh suite.  Monitors implementing ``reset()``
        restore themselves; monitors without one fall back to clearing
        their ``result`` so recorded violations never leak across
        executions.
        """
        self._serial = 0
        self._immediate.clear()
        for monitor in self.monitors:
            reset = getattr(monitor, "reset", None)
            if callable(reset):
                reset()
                continue
            result = getattr(monitor, "result", None)
            if result is not None:
                result.violations.clear()

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    # The suite's own state is just the sample serial and the immediate
    # queue; the monitors are separate snapshot components.
    def capture_delta_state(self) -> tuple:
        return (self._serial, tuple(self._immediate))

    def restore_delta_state(self, state: tuple) -> None:
        serial, immediate = state
        self._serial = serial
        self._immediate[:] = immediate

    def check_all(self, engine: SemanticsEngine) -> List[Violation]:
        """Run every monitor once; returns the new violations."""
        new: List[Violation] = []
        for monitor in self.monitors:
            violation = monitor.check(engine)
            if violation is not None:
                new.append(violation)
        return new

    # -- windowed evaluation -------------------------------------------- #
    def capture_all(self, engine: SemanticsEngine) -> None:
        """Snapshot one sample on every monitor without evaluating predicates.

        Monitors lacking a ``capture`` method are checked immediately (the
        scalar path); their violations are delivered by the next
        :meth:`flush` in the correct position.
        """
        self._serial += 1
        for position, monitor in enumerate(self.monitors):
            capture = getattr(monitor, "capture", None)
            if capture is not None:
                capture(engine, self._serial)
            else:
                violation = monitor.check(engine)
                if violation is not None:
                    self._immediate.append((self._serial, position, violation))

    @property
    def pending_samples(self) -> int:
        """Number of samples captured since the last :meth:`flush`."""
        return self._serial

    def flush(self) -> List[Violation]:
        """Evaluate every captured sample, batched per monitor.

        Returns the new violations in exactly the order a per-sample
        :meth:`check_all` loop would have produced them (sample-major,
        monitor-minor), with identical times, messages and states.
        """
        entries: List[Tuple[int, int, Violation]] = list(self._immediate)
        self._immediate = []
        self._serial = 0
        for position, monitor in enumerate(self.monitors):
            flush = getattr(monitor, "flush", None)
            if flush is None:
                continue
            entries.extend((serial, position, violation) for serial, violation in flush())
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        return [violation for _, _, violation in entries]

    @property
    def violations(self) -> List[Violation]:
        """All violations recorded so far, across monitors, in time order."""
        everything: List[Violation] = []
        for monitor in self.monitors:
            everything.extend(monitor.result.violations)
        return sorted(everything, key=lambda v: v.time)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = ["monitor summary:"]
        for monitor in self.monitors:
            status = "ok" if monitor.result.ok else f"{monitor.result.count} violation(s)"
            lines.append(f"  {monitor.name}: {status}")
        return "\n".join(lines)
