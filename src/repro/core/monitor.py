"""Safety and invariant monitors.

Monitors observe the running system (its topic valuation and module modes)
and record violations.  They serve two purposes in the reproduction:

* validating Theorem 3.1's invariant ``φ_Inv`` online (the
  :class:`InvariantMonitor`), and
* measuring how often the *unprotected* stack violates φ_safe (Figure 5)
  versus the RTA-protected stack (Figures 12a–c, Section V-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from .decision import Mode
from .module import RTAModuleInstance
from .semantics import SemanticsEngine
from .specs import SafetySpec


@dataclass(frozen=True)
class Violation:
    """A recorded violation of a monitored property."""

    time: float
    monitor: str
    message: str
    state: Any = None


@dataclass
class MonitorResult:
    """Violations accumulated by one monitor."""

    name: str
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def count(self) -> int:
        return len(self.violations)


class TopicSafetyMonitor:
    """Checks a :class:`SafetySpec` against the value of a topic every sample."""

    def __init__(
        self,
        name: str,
        topic: str,
        spec: SafetySpec,
        ignore_missing: bool = True,
    ) -> None:
        self.name = name
        self.topic = topic
        self.spec = spec
        self.ignore_missing = ignore_missing
        self.result = MonitorResult(name=name)

    def check(self, engine: SemanticsEngine) -> Optional[Violation]:
        """Evaluate the property on the current topic value; record any violation."""
        value = engine.read_topic(self.topic)
        if value is None and self.ignore_missing:
            return None
        if self.spec.contains(value):
            return None
        violation = Violation(
            time=engine.current_time,
            monitor=self.name,
            message=f"topic {self.topic!r} violates {self.spec.name}",
            state=value,
        )
        self.result.violations.append(violation)
        return violation


class InvariantMonitor:
    """Checks Theorem 3.1's invariant ``φ_Inv(mode, s)`` for one module.

    ``φ_Inv`` holds when either the module is in SC mode and the monitored
    state is in φ_safe, or the module is in AC mode and every state
    reachable within Δ (under any controller) is in φ_safe.  The caller
    supplies ``may_leave_within(state, horizon)`` — a sound
    over-approximate check that Reach(state, *, horizon) escapes φ_safe —
    typically built from :class:`repro.reachability.WorstCaseReachability`.
    """

    def __init__(
        self,
        module: RTAModuleInstance,
        may_leave_within: Callable[[Any, float], bool],
        state_topic: Optional[str] = None,
    ) -> None:
        self.module = module
        self.may_leave_within = may_leave_within
        self.state_topic = state_topic or module.spec.state_topics[0]
        self.name = f"phi_inv[{module.name}]"
        self.result = MonitorResult(name=self.name)
        self.samples = 0

    def holds(self, mode: Mode, state: Any) -> bool:
        """Evaluate φ_Inv on a (mode, state) pair."""
        if state is None:
            return True  # nothing to check yet
        if mode is Mode.SC:
            return self.module.spec.safe_spec.contains(state)
        return not self.may_leave_within(state, self.module.spec.delta)

    def check(self, engine: SemanticsEngine) -> Optional[Violation]:
        """Evaluate φ_Inv on the running system."""
        self.samples += 1
        state = engine.read_topic(self.state_topic)
        mode = self.module.decision.mode
        if self.holds(mode, state):
            return None
        violation = Violation(
            time=engine.current_time,
            monitor=self.name,
            message=f"φ_Inv violated in mode {mode.value}",
            state=state,
        )
        self.result.violations.append(violation)
        return violation


class MonitorSuite:
    """A collection of monitors evaluated together after every sampling instant."""

    def __init__(self, monitors: Optional[List[Any]] = None) -> None:
        self.monitors: List[Any] = list(monitors or [])

    def add(self, monitor: Any) -> None:
        self.monitors.append(monitor)

    def check_all(self, engine: SemanticsEngine) -> List[Violation]:
        """Run every monitor once; returns the new violations."""
        new: List[Violation] = []
        for monitor in self.monitors:
            violation = monitor.check(engine)
            if violation is not None:
                new.append(violation)
        return new

    @property
    def violations(self) -> List[Violation]:
        """All violations recorded so far, across monitors, in time order."""
        everything: List[Violation] = []
        for monitor in self.monitors:
            everything.extend(monitor.result.violations)
        return sorted(everything, key=lambda v: v.time)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = ["monitor summary:"]
        for monitor in self.monitors:
            status = "ok" if monitor.result.ok else f"{monitor.result.count} violation(s)"
            lines.append(f"  {monitor.name}: {status}")
        return "\n".join(lines)
