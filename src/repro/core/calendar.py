"""Calendar (time-table) machinery for timeout-based discrete-event execution.

The paper models each periodic node with a calendar of future firing times
and uses timeout-based discrete event simulation [18] to execute the
multi-rate periodic system as a discrete transition system.  The
:class:`Calendar` here plays the role of ``CS`` in Section IV: it tracks
the next firing time of every node, advances time to the earliest entry,
and reports which nodes are enabled (the ``FN`` set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .errors import SchedulingError
from .node import Node

_TIME_EPS = 1e-9


@dataclass(frozen=True)
class CalendarEntry:
    """A single scheduled firing of a node."""

    time: float
    node_name: str


class Calendar:
    """Tracks the nominal and effective next firing time of each node.

    The *nominal* schedule is the ideal periodic time-table (offset,
    offset + period, ...).  The *effective* time is the nominal time plus
    any release jitter injected by a scheduling policy; this is how the
    runtime models OS-timer scheduling (Section V of the paper observed
    crashes precisely because the safe controller was not scheduled in
    time, and the endurance benchmark reproduces that with jitter).
    """

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._periods: Dict[str, float] = {}
        self._offsets: Dict[str, float] = {}
        self._nominal_next: Dict[str, float] = {}
        self._effective_next: Dict[str, float] = {}
        # Dirty tracking for incremental snapshots (repro.core.resettable):
        # a unique id per schedule state; the clock never rewinds.
        self._delta_clock: int = 0
        self.delta_version: int = 0
        for node in nodes:
            self.add_node(node)

    def _touch(self) -> None:
        clock = self._delta_clock + 1
        self._delta_clock = clock
        self.delta_version = clock

    def add_node(self, node: Node) -> None:
        """Register a node's periodic time-table."""
        if node.name in self._periods:
            raise SchedulingError(f"node {node.name!r} is already scheduled")
        self._periods[node.name] = node.period
        self._offsets[node.name] = node.offset
        self._nominal_next[node.name] = node.offset
        self._effective_next[node.name] = node.offset
        self._touch()

    def reset(self) -> None:
        """Restore every node's schedule to its construction-time offset.

        Part of the :class:`~repro.core.resettable.Resettable` protocol:
        after a reset the calendar is indistinguishable from one freshly
        built over the same nodes, so a reused semantics engine replays
        time from zero without rebuilding the time-table.
        """
        for name, offset in self._offsets.items():
            self._nominal_next[name] = offset
            self._effective_next[name] = offset
        self._touch()

    def __contains__(self, node_name: str) -> bool:
        return node_name in self._periods

    def __len__(self) -> int:
        return len(self._periods)

    def node_names(self) -> Tuple[str, ...]:
        return tuple(self._periods.keys())

    def period_of(self, node_name: str) -> float:
        """The period of a scheduled node."""
        return self._periods[node_name]

    # ------------------------------------------------------------------ #
    # schedule queries
    # ------------------------------------------------------------------ #
    def next_time(self) -> Optional[float]:
        """The earliest effective firing time, or None if nothing is scheduled."""
        if not self._effective_next:
            return None
        return min(self._effective_next.values())

    def due_nodes(self, time: float) -> List[str]:
        """Nodes whose effective firing time equals ``time`` (the FN set)."""
        return [
            name
            for name, t in self._effective_next.items()
            if abs(t - time) <= _TIME_EPS
        ]

    def next_due(self) -> Optional[Tuple[float, List[str]]]:
        """The earliest effective firing time plus its FN set, in one pass.

        Equivalent to ``(next_time(), due_nodes(next_time()))`` but scans
        the schedule once — this query runs once per discrete step on the
        exploration hot path.
        """
        if not self._effective_next:
            return None
        earliest = min(self._effective_next.values())
        threshold = earliest + _TIME_EPS
        return earliest, [name for name, t in self._effective_next.items() if t <= threshold]

    def nominal_time_of(self, node_name: str) -> float:
        """The nominal (jitter-free) time of the node's next firing."""
        return self._nominal_next[node_name]

    def effective_time_of(self, node_name: str) -> float:
        """The effective (possibly jittered) time of the node's next firing."""
        return self._effective_next[node_name]

    # ------------------------------------------------------------------ #
    # schedule updates
    # ------------------------------------------------------------------ #
    def reschedule(self, node_name: str, jitter: float = 0.0, not_before: float = 0.0) -> None:
        """Advance a node's schedule by one period after it fired (or was dropped).

        ``not_before`` is the current time of the system: when a firing was
        released late (jitter pushed it past one or more nominal activation
        points), the skipped nominal activations are treated as missed and
        the schedule catches up to the first activation not earlier than the
        current time — which is how a periodic OS timer behaves when its
        handler overruns.
        """
        if node_name not in self._periods:
            raise SchedulingError(f"node {node_name!r} is not scheduled")
        if jitter < 0.0:
            raise SchedulingError("release jitter must be non-negative")
        period = self._periods[node_name]
        nominal = self._nominal_next[node_name] + period
        while nominal < not_before - _TIME_EPS:
            nominal += period
        self._nominal_next[node_name] = nominal
        self._effective_next[node_name] = nominal + jitter
        clock = self._delta_clock + 1
        self._delta_clock = clock
        self.delta_version = clock

    def apply_jitter(self, node_name: str, jitter: float) -> None:
        """Apply release jitter to the node's *current* pending firing."""
        if jitter < 0.0:
            raise SchedulingError("release jitter must be non-negative")
        self._effective_next[node_name] = self._nominal_next[node_name] + jitter
        self._touch()

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    def capture_delta_state(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        """The mutable half of the time-table (nominal + effective times)."""
        return dict(self._nominal_next), dict(self._effective_next)

    def restore_delta_state(self, state: Tuple[Dict[str, float], Dict[str, float]]) -> None:
        """Rewind the schedule in place (dict identities preserved)."""
        nominal, effective = state
        self._nominal_next.clear()
        self._nominal_next.update(nominal)
        self._effective_next.clear()
        self._effective_next.update(effective)
        self._touch()

    def entries_until(self, horizon: float) -> List[CalendarEntry]:
        """All nominal calendar entries up to ``horizon`` (for inspection/tests)."""
        entries: List[CalendarEntry] = []
        for name, period in self._periods.items():
            t = self._nominal_next[name]
            while t <= horizon + _TIME_EPS:
                entries.append(CalendarEntry(time=round(t, 9), node_name=name))
                t += period
        entries.sort(key=lambda e: (e.time, e.node_name))
        return entries


def hyperperiod(periods: Iterable[float], resolution: float = 1e-3) -> float:
    """Least common multiple of a set of periods, at a fixed resolution.

    Used by the systematic testing engine to bound exploration depth to a
    whole number of hyperperiods of the multi-rate system.
    """
    from math import gcd

    ticks = []
    for period in periods:
        if period <= 0.0:
            raise SchedulingError("periods must be positive")
        ticks.append(max(1, round(period / resolution)))
    if not ticks:
        return 0.0
    lcm = ticks[0]
    for t in ticks[1:]:
        lcm = lcm * t // gcd(lcm, t)
    return lcm * resolution
