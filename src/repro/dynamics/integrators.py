"""Fixed-step numeric integrators for the plant models.

Simple explicit integrators are adequate: the plant models in the drone
case study are smooth and the physics step (10–20 ms) is small relative to
their time constants.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

StateVector = Tuple[float, ...]
Derivative = Callable[[StateVector], StateVector]


def _axpy(a: float, x: Sequence[float], y: Sequence[float]) -> StateVector:
    """Return ``a * x + y`` component-wise."""
    return tuple(a * xi + yi for xi, yi in zip(x, y))


def euler_step(f: Derivative, state: StateVector, dt: float) -> StateVector:
    """One explicit (forward) Euler step of size ``dt``."""
    if dt < 0.0:
        raise ValueError("step size must be non-negative")
    return _axpy(dt, f(state), state)


def rk4_step(f: Derivative, state: StateVector, dt: float) -> StateVector:
    """One classical Runge–Kutta (RK4) step of size ``dt``."""
    if dt < 0.0:
        raise ValueError("step size must be non-negative")
    k1 = f(state)
    k2 = f(_axpy(dt / 2.0, k1, state))
    k3 = f(_axpy(dt / 2.0, k2, state))
    k4 = f(_axpy(dt, k3, state))
    combined = tuple(
        (a + 2.0 * b + 2.0 * c + d) / 6.0 for a, b, c, d in zip(k1, k2, k3, k4)
    )
    return _axpy(dt, combined, state)


def integrate(
    f: Derivative,
    state: StateVector,
    duration: float,
    dt: float,
    method: str = "rk4",
) -> StateVector:
    """Integrate ``f`` for ``duration`` seconds with fixed step ``dt``."""
    if dt <= 0.0:
        raise ValueError("step size must be positive")
    stepper = rk4_step if method == "rk4" else euler_step
    remaining = duration
    current = state
    while remaining > 1e-12:
        step = min(dt, remaining)
        current = stepper(f, current, step)
        remaining -= step
    return current
