"""Plant state and control abstractions shared by all dynamics models.

The SOTER paper treats the plant (the drone) as a continuous-time system
sampled by the periodic SOTER nodes; the controllers exchange a simple
acceleration-style command with the plant.  These dataclasses define that
interface so the controllers, the reachability analysis, and the simulator
all speak the same types.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Tuple

import numpy as np

from ..geometry import Vec3


@dataclass(frozen=True)
class DroneState:
    """Kinematic state of the drone: position and velocity in world frame."""

    position: Vec3 = field(default_factory=Vec3)
    velocity: Vec3 = field(default_factory=Vec3)

    # Immutable value: copying returns the object itself, which keeps the
    # snapshot paths of the testing engine cheap.
    def __copy__(self) -> "DroneState":
        return self

    def __deepcopy__(self, memo: dict) -> "DroneState":
        return self

    @property
    def speed(self) -> float:
        """Current speed (velocity magnitude)."""
        return self.velocity.norm()

    @property
    def altitude(self) -> float:
        """Height above ground."""
        return self.position.z

    def with_position(self, position: Vec3) -> "DroneState":
        return replace(self, position=position)

    def with_velocity(self, velocity: Vec3) -> "DroneState":
        return replace(self, velocity=velocity)

    def as_tuple(self) -> Tuple[float, ...]:
        """Flat tuple representation (px, py, pz, vx, vy, vz)."""
        return self.position.as_tuple() + self.velocity.as_tuple()

    @staticmethod
    def from_tuple(values: Tuple[float, ...]) -> "DroneState":
        if len(values) != 6:
            raise ValueError(f"expected 6 values, got {len(values)}")
        return DroneState(
            position=Vec3(values[0], values[1], values[2]),
            velocity=Vec3(values[3], values[4], values[5]),
        )

    def is_finite(self) -> bool:
        """True if position and velocity contain no NaNs/infinities."""
        return self.position.is_finite() and self.velocity.is_finite()


@dataclass(frozen=True)
class ControlCommand:
    """A commanded acceleration (plus optional yaw rate) for the drone.

    All controllers in the case study — the untrusted PX4-like tracker, the
    learned tracker, the certified safe tracker, and the safe-landing
    controller — emit this command type, which is what lets the decision
    module swap one for the other (well-formedness property P1b: AC and SC
    publish on the same output topics).
    """

    acceleration: Vec3 = field(default_factory=Vec3)
    yaw_rate: float = 0.0

    # Immutable value: copying returns the object itself (cheap snapshots).
    def __copy__(self) -> "ControlCommand":
        return self

    def __deepcopy__(self, memo: dict) -> "ControlCommand":
        return self

    @staticmethod
    def hover() -> "ControlCommand":
        """A command that requests zero acceleration."""
        return ControlCommand(acceleration=Vec3.zero(), yaw_rate=0.0)

    def clamped(self, max_acceleration: float) -> "ControlCommand":
        """Copy with the acceleration magnitude clamped to ``max_acceleration``."""
        return ControlCommand(
            acceleration=self.acceleration.clamp_norm(max_acceleration),
            yaw_rate=self.yaw_rate,
        )

    def is_finite(self) -> bool:
        """True if the command contains no NaNs/infinities."""
        import math

        return self.acceleration.is_finite() and math.isfinite(self.yaw_rate)


class DynamicsModel(abc.ABC):
    """Continuous dynamics of a plant, advanced with a fixed-step integrator."""

    @property
    @abc.abstractmethod
    def max_speed(self) -> float:
        """Hard bound on the achievable speed (used by worst-case reachability)."""

    @property
    @abc.abstractmethod
    def max_acceleration(self) -> float:
        """Hard bound on the achievable acceleration magnitude."""

    @abc.abstractmethod
    def step(self, state: DroneState, command: ControlCommand, dt: float) -> DroneState:
        """Advance the plant by ``dt`` seconds under ``command``."""

    def rollout(
        self, state: DroneState, command: ControlCommand, duration: float, dt: float
    ) -> DroneState:
        """Apply a constant command for ``duration`` seconds with step ``dt``."""
        if dt <= 0.0:
            raise ValueError("integration step must be positive")
        remaining = duration
        current = state
        while remaining > 1e-12:
            step = min(dt, remaining)
            current = self.step(current, command, step)
            remaining -= step
        return current

    def max_displacement(self, speed: float, horizon: float) -> float:
        """Worst-case distance the plant can travel in ``horizon`` seconds.

        This is the key quantity the interval reachability substitute uses
        to over-approximate Reach(s, *, t): starting at ``speed`` and
        accelerating as hard as possible until hitting ``max_speed``.
        """
        if horizon < 0.0:
            raise ValueError("horizon must be non-negative")
        speed = min(abs(speed), self.max_speed)
        accel = self.max_acceleration
        if accel <= 0.0:
            return self.max_speed * horizon
        time_to_vmax = (self.max_speed - speed) / accel
        if horizon <= time_to_vmax:
            return speed * horizon + 0.5 * accel * horizon * horizon
        ramp = speed * time_to_vmax + 0.5 * accel * time_to_vmax * time_to_vmax
        cruise = self.max_speed * (horizon - time_to_vmax)
        return ramp + cruise

    def stopping_distance(self, speed: float) -> float:
        """Distance needed to brake from ``speed`` to rest at full deceleration."""
        speed = min(abs(speed), self.max_speed)
        if self.max_acceleration <= 0.0:
            return float("inf") if speed > 0.0 else 0.0
        return speed * speed / (2.0 * self.max_acceleration)

    # ------------------------------------------------------------------ #
    # batched worst-case bounds (bit-identical to the scalar versions)
    # ------------------------------------------------------------------ #
    def max_displacement_batch(self, speeds: np.ndarray, horizon: float) -> np.ndarray:
        """Vectorised :meth:`max_displacement` over an ``(N,)`` speed array.

        Evaluates the same expressions in the same order as the scalar
        version, so the returned radii are bit-for-bit identical — which is
        what lets the batched reachability queries reproduce the decision
        modules' answers exactly.
        """
        if horizon < 0.0:
            raise ValueError("horizon must be non-negative")
        speeds = np.minimum(np.abs(np.asarray(speeds, dtype=float)), self.max_speed)
        accel = self.max_acceleration
        if accel <= 0.0:
            return np.full(speeds.shape, self.max_speed * horizon)
        time_to_vmax = (self.max_speed - speeds) / accel
        direct = speeds * horizon + 0.5 * accel * horizon * horizon
        ramp = speeds * time_to_vmax + 0.5 * accel * time_to_vmax * time_to_vmax
        cruise = self.max_speed * (horizon - time_to_vmax)
        return np.where(horizon <= time_to_vmax, direct, ramp + cruise)

    def stopping_distance_batch(self, speeds: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`stopping_distance` over an ``(N,)`` speed array."""
        speeds = np.minimum(np.abs(np.asarray(speeds, dtype=float)), self.max_speed)
        if self.max_acceleration <= 0.0:
            return np.where(speeds > 0.0, np.inf, 0.0)
        return speeds * speeds / (2.0 * self.max_acceleration)

    def begin_batch(self, count: int) -> None:
        """Prepare the model for a fresh ``count``-row batched rollout.

        Stateless models (the bounded double integrator) have nothing to
        prepare, so the default is a no-op.  Models with internal state
        (the lagged quadrotor) override this to seed one independent copy
        of that state per row, which is what makes their :meth:`step_batch`
        honour the per-row contract; the batched reachability rollouts
        call it once before integrating.
        """

    def step_batch(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        accelerations: np.ndarray,
        dt: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Advance N plant states at once (structure-of-arrays layout).

        ``positions``/``velocities``/``accelerations`` are ``(N, 3)``
        arrays; returns the new ``(positions, velocities)`` pair.  The
        contract matches :meth:`step` on a per-row basis (non-finite
        commanded accelerations are treated as "no thrust", exactly like a
        malformed :class:`ControlCommand`).  The default implementation
        loops over the scalar :meth:`step`; models with closed-form
        updates override it with a vectorised, bit-identical version —
        the batched well-formedness rollouts integrate whole sample sets
        through this API.  Note the scalar loop mutates any internal model
        state sequentially across rows, so stateful models *must* override
        both this and :meth:`begin_batch` to keep rows independent (the
        lagged quadrotor does).
        """
        positions = np.asarray(positions, dtype=float).reshape(-1, 3)
        velocities = np.asarray(velocities, dtype=float).reshape(-1, 3)
        accelerations = np.asarray(accelerations, dtype=float).reshape(-1, 3)
        new_positions = np.empty_like(positions)
        new_velocities = np.empty_like(velocities)
        for i in range(positions.shape[0]):
            state = DroneState(
                position=Vec3(*positions[i]), velocity=Vec3(*velocities[i])
            )
            command = ControlCommand(acceleration=Vec3(*accelerations[i]))
            stepped = self.step(state, command, dt)
            new_positions[i] = stepped.position.as_tuple()
            new_velocities[i] = stepped.velocity.as_tuple()
        return new_positions, new_velocities
