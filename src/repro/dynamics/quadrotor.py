"""Simplified quadrotor model with first-order attitude lag.

The Gazebo simulations in the SOTER paper run the PX4 firmware against a
high-fidelity Iris model; the relevant effect for the safety argument is
that the commanded acceleration is not realised instantaneously (attitude
has to change first), which is what makes the aggressive controller
overshoot.  This model captures that with a first-order lag on the
realised acceleration on top of the bounded double integrator, providing a
higher-fidelity (but still laptop-friendly) alternative plant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from ..geometry import Vec3, clamp_norm_rows
from .base import ControlCommand, DroneState, DynamicsModel
from .double_integrator import DoubleIntegratorParams


@dataclass
class QuadrotorParams:
    """Parameters of the lagged quadrotor model."""

    max_speed: float = 5.0
    max_acceleration: float = 6.0
    attitude_time_constant: float = 0.25
    drag: float = 0.05

    def __post_init__(self) -> None:
        if self.attitude_time_constant <= 0.0:
            raise ValueError("attitude_time_constant must be positive")
        if self.max_speed <= 0.0 or self.max_acceleration <= 0.0:
            raise ValueError("speed and acceleration limits must be positive")


@dataclass
class QuadrotorInternalState:
    """Internal (non-kinematic) state: the currently realised acceleration."""

    realized_acceleration: Vec3 = field(default_factory=Vec3)


class LaggedQuadrotor(DynamicsModel):
    """Quadrotor whose realised acceleration lags the commanded acceleration.

    The lag state is kept inside the model instance (the simulator owns one
    model per plant), so from the controllers' point of view the interface
    is identical to the double integrator.
    """

    def __init__(self, params: QuadrotorParams | None = None) -> None:
        self.params = params or QuadrotorParams()
        self.internal = QuadrotorInternalState()
        # Per-row lag states of the current batched rollout; ``None`` until
        # the first :meth:`begin_batch`/:meth:`step_batch` call.
        self._internal_rows: Optional[np.ndarray] = None

    @property
    def max_speed(self) -> float:
        return self.params.max_speed

    @property
    def max_acceleration(self) -> float:
        return self.params.max_acceleration

    def reset(self) -> None:
        """Clear the internal lag state (e.g. between missions)."""
        self.internal = QuadrotorInternalState()
        self._internal_rows = None

    def step(self, state: DroneState, command: ControlCommand, dt: float) -> DroneState:
        """Advance position/velocity with a first-order lag on acceleration."""
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        if not command.is_finite():
            command = ControlCommand.hover()
        commanded = command.acceleration.clamp_norm(self.params.max_acceleration)
        # First-order lag: da/dt = (a_cmd - a) / tau
        tau = self.params.attitude_time_constant
        alpha = min(1.0, dt / tau)
        realized = self.internal.realized_acceleration.lerp(commanded, alpha)
        realized = realized.clamp_norm(self.params.max_acceleration)
        self.internal = QuadrotorInternalState(realized_acceleration=realized)
        drag_accel = state.velocity * (-self.params.drag)
        velocity = state.velocity + (realized + drag_accel) * dt
        velocity = velocity.clamp_norm(self.params.max_speed)
        position = state.position + (state.velocity + velocity) * (0.5 * dt)
        return DroneState(position=position, velocity=velocity)

    def begin_batch(self, count: int) -> None:
        """Start a ``count``-row batched rollout from the current lag state.

        Every row gets its own copy of the model's present realised
        acceleration, so rows evolve *independent* first-order lags — the
        per-row contract of :meth:`step_batch`.  (The inherited scalar-loop
        fallback threaded ``self.internal`` sequentially through the rows,
        so row *i* saw row *i - 1*'s lag state; the batched rollouts now
        call this hook before integrating instead.)
        """
        if count < 0:
            raise ValueError("batch row count must be non-negative")
        realized = self.internal.realized_acceleration
        self._internal_rows = np.tile(
            np.array(realized.as_tuple(), dtype=float), (count, 1)
        )

    def step_batch(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        accelerations: np.ndarray,
        dt: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`step` over ``(N, 3)`` state arrays.

        Evaluates the same floating-point expressions in the same order as
        the scalar step (clamp the command, first-order lag blend, clamp
        the realised acceleration, drag, trapezoidal position update), so
        each row is bit-for-bit identical to stepping a dedicated scalar
        model carrying that row's lag state.  The per-row lag states are
        kept in ``self._internal_rows`` (seeded from the model's current
        scalar lag state by :meth:`begin_batch`, or on the first call) and
        carried across successive ``step_batch`` calls of one rollout.
        Non-finite command rows are treated as "no thrust", mirroring the
        malformed-command guard of the scalar path.
        """
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        positions = np.asarray(positions, dtype=float).reshape(-1, 3)
        velocities = np.asarray(velocities, dtype=float).reshape(-1, 3)
        accel = np.asarray(accelerations, dtype=float).reshape(-1, 3)
        count = positions.shape[0]
        if self._internal_rows is None or self._internal_rows.shape[0] != count:
            self.begin_batch(count)
        internal = self._internal_rows
        accel = np.where(np.isfinite(accel).all(axis=1)[:, None], accel, 0.0)
        commanded = clamp_norm_rows(accel, self.params.max_acceleration)
        alpha = min(1.0, dt / self.params.attitude_time_constant)
        realized = internal + (commanded - internal) * alpha
        realized = clamp_norm_rows(realized, self.params.max_acceleration)
        self._internal_rows = realized
        drag_accel = velocities * (-self.params.drag)
        new_velocities = velocities + (realized + drag_accel) * dt
        new_velocities = clamp_norm_rows(new_velocities, self.params.max_speed)
        new_positions = positions + (velocities + new_velocities) * (0.5 * dt)
        return new_positions, new_velocities

    def as_double_integrator_params(self) -> DoubleIntegratorParams:
        """Conservative double-integrator abstraction of this model.

        The abstraction shares the same speed/acceleration bounds, so any
        worst-case reachability computed on the double integrator is also
        sound for the lagged quadrotor (the lag only removes behaviours).
        """
        return DoubleIntegratorParams(
            max_speed=self.params.max_speed,
            max_acceleration=self.params.max_acceleration,
            drag=self.params.drag,
        )
