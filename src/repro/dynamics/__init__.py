"""Plant dynamics: drone models, battery model, and numeric integrators."""

from .base import ControlCommand, DroneState, DynamicsModel
from .battery import BatteryModel, BatteryParams, BatteryState
from .double_integrator import (
    BoundedDoubleIntegrator,
    DoubleIntegratorParams,
    conservative_drone_model,
    default_drone_model,
    worst_case_reach_radius,
)
from .integrators import euler_step, integrate, rk4_step
from .quadrotor import LaggedQuadrotor, QuadrotorParams

__all__ = [
    "ControlCommand",
    "DroneState",
    "DynamicsModel",
    "BatteryModel",
    "BatteryParams",
    "BatteryState",
    "BoundedDoubleIntegrator",
    "DoubleIntegratorParams",
    "conservative_drone_model",
    "default_drone_model",
    "worst_case_reach_radius",
    "euler_step",
    "integrate",
    "rk4_step",
    "LaggedQuadrotor",
    "QuadrotorParams",
]
