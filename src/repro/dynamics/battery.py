"""Battery model for the battery-safety RTA module (Section V-B of the paper).

The paper's battery module needs three ingredients:

* the evolving state of charge ``bt``,
* ``cost(u, T)`` — the charge consumed by applying control ``u`` for time
  ``T`` — and its worst case ``cost* = max_u cost(u, 2Δ)``,
* ``T_max`` — the (conservative) charge needed to land safely from the
  maximum altitude the drone can attain.

This module provides all three.  Charge is normalised to the interval
[0, 1] (fraction of full capacity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.vec import row_norms
from .base import ControlCommand, DroneState


@dataclass
class BatteryParams:
    """Discharge characteristics of the drone battery."""

    # Charge fraction consumed per second just to stay powered (avionics + hover).
    idle_rate: float = 0.0008
    # Additional charge fraction per second per (m/s^2) of commanded acceleration.
    accel_rate: float = 0.0004
    # Maximum acceleration the battery model assumes when computing cost*.
    max_acceleration: float = 6.0
    # Vertical descent speed used when estimating the charge needed to land.
    descent_speed: float = 1.0
    # Maximum altitude the mission profile allows (used for the conservative T_max).
    max_altitude: float = 12.0

    def __post_init__(self) -> None:
        if self.idle_rate < 0.0 or self.accel_rate < 0.0:
            raise ValueError("discharge rates must be non-negative")
        if self.descent_speed <= 0.0:
            raise ValueError("descent_speed must be positive")
        if self.max_altitude <= 0.0:
            raise ValueError("max_altitude must be positive")


@dataclass(frozen=True)
class BatteryState:
    """State of charge in [0, 1]."""

    charge: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.charge <= 1.0:
            raise ValueError("battery charge must lie in [0, 1]")

    # Immutable value: copying returns the object itself (cheap snapshots).
    def __copy__(self) -> "BatteryState":
        return self

    def __deepcopy__(self, memo: dict) -> "BatteryState":
        return self

    @property
    def depleted(self) -> bool:
        """True if the battery is empty."""
        return self.charge <= 0.0


class BatteryModel:
    """Charge dynamics plus the cost/landing bounds the battery DM needs."""

    def __init__(self, params: BatteryParams | None = None) -> None:
        self.params = params or BatteryParams()

    # ------------------------------------------------------------------ #
    # charge dynamics
    # ------------------------------------------------------------------ #
    def discharge_rate(self, command: ControlCommand) -> float:
        """Instantaneous discharge rate (fraction/second) under ``command``."""
        accel = min(command.acceleration.norm(), self.params.max_acceleration)
        return self.params.idle_rate + self.params.accel_rate * accel

    def step(self, battery: BatteryState, command: ControlCommand, dt: float) -> BatteryState:
        """Advance the state of charge by ``dt`` seconds."""
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        charge = battery.charge - self.discharge_rate(command) * dt
        return BatteryState(charge=max(0.0, min(1.0, charge)))

    def step_batch(
        self, charges: np.ndarray, accelerations: np.ndarray, dt: float
    ) -> np.ndarray:
        """Vectorised :meth:`step` over ``(N,)`` charges and ``(N, 3)`` commands.

        Evaluates the same floating-point expressions in the same order as
        the scalar path (saturate the commanded acceleration norm, linear
        discharge, clamp into [0, 1]), so the returned charges are
        bit-for-bit identical to stepping each row through :meth:`step` —
        the property the population execution plane relies on when it
        carries whole charge vectors through one call.
        """
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        charges = np.asarray(charges, dtype=float).reshape(-1)
        accelerations = np.asarray(accelerations, dtype=float).reshape(-1, 3)
        accel = np.minimum(row_norms(accelerations), self.params.max_acceleration)
        rates = self.params.idle_rate + self.params.accel_rate * accel
        return np.maximum(0.0, np.minimum(1.0, charges - rates * dt))

    # ------------------------------------------------------------------ #
    # the quantities used by the battery decision module
    # ------------------------------------------------------------------ #
    def cost(self, command: ControlCommand, duration: float) -> float:
        """Charge consumed by applying ``command`` for ``duration`` seconds."""
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        return self.discharge_rate(command) * duration

    def max_cost(self, duration: float) -> float:
        """``cost* = max_u cost(u, duration)`` — worst-case discharge over ``duration``."""
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        worst_rate = self.params.idle_rate + self.params.accel_rate * self.params.max_acceleration
        return worst_rate * duration

    def landing_time_bound(self, altitude: float | None = None) -> float:
        """Upper bound on the time needed to land from ``altitude``.

        Following the paper, the bound is conservative: if no altitude is
        supplied, the maximum mission altitude is assumed.
        """
        altitude = self.params.max_altitude if altitude is None else max(0.0, altitude)
        return altitude / self.params.descent_speed

    def landing_charge_bound(self, altitude: float | None = None) -> float:
        """``T_max`` — charge needed to descend and land safely (worst case)."""
        duration = self.landing_time_bound(altitude)
        # During a controlled descent the drone holds a modest acceleration;
        # assume half the maximum to stay conservative without being absurd.
        descent_rate = self.params.idle_rate + self.params.accel_rate * (
            0.5 * self.params.max_acceleration
        )
        return descent_rate * duration

    def time_to_failure_exceeded(
        self, battery: BatteryState, two_delta: float, altitude: float | None = None
    ) -> bool:
        """The paper's ``ttf_2Δ(bt, φ_safe) = bt - cost* < T_max`` check."""
        remaining_after_worst = battery.charge - self.max_cost(two_delta)
        return remaining_after_worst < self.landing_charge_bound(altitude)

    def endurance(self, state: DroneState | None = None) -> float:
        """Rough flight time available at nominal cruise discharge (for planning)."""
        nominal_rate = self.params.idle_rate + self.params.accel_rate * (
            0.3 * self.params.max_acceleration
        )
        return 1.0 / nominal_rate
