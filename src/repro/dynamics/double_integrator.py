"""Bounded double-integrator drone model.

The motion-primitive safety argument in the SOTER paper only relies on the
drone having bounded speed and bounded acceleration (that is what makes
the 2Δ worst-case reachable set computable).  A double integrator with
saturated acceleration and speed — the standard abstraction used by
FaSTrack-style planners for multirotors — captures exactly that, so it is
the primary plant model of this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry import Vec3, clamp_norm_rows
from .base import ControlCommand, DroneState, DynamicsModel


@dataclass
class DoubleIntegratorParams:
    """Physical limits and damping of the bounded double integrator."""

    max_speed: float = 5.0
    max_acceleration: float = 6.0
    drag: float = 0.05
    gravity_compensated: bool = True

    def __post_init__(self) -> None:
        if self.max_speed <= 0.0:
            raise ValueError("max_speed must be positive")
        if self.max_acceleration <= 0.0:
            raise ValueError("max_acceleration must be positive")
        if self.drag < 0.0:
            raise ValueError("drag must be non-negative")


class BoundedDoubleIntegrator(DynamicsModel):
    """Point-mass drone: commanded acceleration, saturated speed and acceleration."""

    def __init__(self, params: DoubleIntegratorParams | None = None) -> None:
        self.params = params or DoubleIntegratorParams()

    @property
    def max_speed(self) -> float:
        return self.params.max_speed

    @property
    def max_acceleration(self) -> float:
        return self.params.max_acceleration

    def step(self, state: DroneState, command: ControlCommand, dt: float) -> DroneState:
        """Trapezoidal step with acceleration and speed saturation.

        The position advances with the *average* of the old and new
        velocity, which is exact for constant acceleration; this keeps the
        discrete plant inside the continuous-time worst-case displacement
        bound the reachability analysis relies on.
        """
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        if not command.is_finite():
            # A malformed command from an untrusted controller must not
            # corrupt the plant state; treat it as "no thrust".
            command = ControlCommand.hover()
        accel = command.acceleration.clamp_norm(self.params.max_acceleration)
        drag_accel = state.velocity * (-self.params.drag)
        velocity = state.velocity + (accel + drag_accel) * dt
        velocity = velocity.clamp_norm(self.params.max_speed)
        position = state.position + (state.velocity + velocity) * (0.5 * dt)
        return DroneState(position=position, velocity=velocity)

    def step_batch(
        self,
        positions: np.ndarray,
        velocities: np.ndarray,
        accelerations: np.ndarray,
        dt: float,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`step` over ``(N, 3)`` state arrays.

        Evaluates the same floating-point expressions in the same order as
        the scalar step (clamp commanded acceleration, drag, trapezoidal
        position update, speed saturation), so the integrated trajectories
        are bit-for-bit identical to stepping each row through
        :meth:`step` — the property the batched well-formedness rollouts
        rely on.  Non-finite command rows are treated as "no thrust",
        mirroring the malformed-command guard of the scalar path.
        """
        if dt < 0.0:
            raise ValueError("dt must be non-negative")
        positions = np.asarray(positions, dtype=float).reshape(-1, 3)
        velocities = np.asarray(velocities, dtype=float).reshape(-1, 3)
        accel = np.asarray(accelerations, dtype=float).reshape(-1, 3)
        accel = np.where(np.isfinite(accel).all(axis=1)[:, None], accel, 0.0)
        accel = clamp_norm_rows(accel, self.params.max_acceleration)
        drag_accel = velocities * (-self.params.drag)
        new_velocities = velocities + (accel + drag_accel) * dt
        new_velocities = clamp_norm_rows(new_velocities, self.params.max_speed)
        new_positions = positions + (velocities + new_velocities) * (0.5 * dt)
        return new_positions, new_velocities

    def brake_command(self, state: DroneState) -> ControlCommand:
        """Command that decelerates the drone as fast as possible."""
        if state.speed == 0.0:
            return ControlCommand.hover()
        direction = state.velocity.unit()
        return ControlCommand(acceleration=direction * (-self.params.max_acceleration))

    def time_to_stop(self, speed: float) -> float:
        """Time needed to brake from ``speed`` to rest at full deceleration."""
        speed = min(abs(speed), self.params.max_speed)
        return speed / self.params.max_acceleration


def default_drone_model() -> BoundedDoubleIntegrator:
    """The drone model used by the case-study experiments (a 3DR-Iris-like multirotor)."""
    return BoundedDoubleIntegrator(
        DoubleIntegratorParams(max_speed=5.0, max_acceleration=6.0, drag=0.05)
    )


def conservative_drone_model(max_speed: float = 1.5) -> BoundedDoubleIntegrator:
    """A slower model used when characterising the certified safe controller."""
    return BoundedDoubleIntegrator(
        DoubleIntegratorParams(max_speed=max_speed, max_acceleration=6.0, drag=0.05)
    )


def worst_case_reach_radius(
    model: DynamicsModel, state: DroneState, horizon: float
) -> float:
    """Radius of a ball guaranteed to contain every position reachable in ``horizon``.

    This is the sound over-approximation of Reach(s, *, horizon) used to
    implement the ``ttf_2Δ`` check of the decision module (Figure 9): no
    matter what the (possibly adversarial) advanced controller commands,
    the drone cannot move further than this from its current position.
    """
    return model.max_displacement(state.speed, horizon)
