"""State-space sampling utilities used by the well-formedness checker.

Properties P2a, P2b and P3 of a well-formed RTA module quantify over sets
of states (``φ_safe``, ``φ_safer``).  When no analytic certificate is
supplied, the checker validates them by sampling states from those sets
and simulating / over-approximating from the samples (a falsification-
style check, documented as such in DESIGN.md).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple

from ..dynamics import DroneState
from ..geometry import Vec3, Workspace


@dataclass
class StateSampler:
    """Samples drone states (position + velocity) from a workspace region."""

    workspace: Workspace
    max_speed: float
    altitude_range: Tuple[float, float] = (1.0, 4.0)
    position_margin: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_speed < 0.0:
            raise ValueError("max_speed must be non-negative")
        self._rng = random.Random(self.seed)

    def sample(self) -> DroneState:
        """Draw a single random state with a free position and bounded speed."""
        position = self.workspace.random_free_point(
            self._rng, margin=self.position_margin, altitude_range=self.altitude_range
        )
        speed = self._rng.uniform(0.0, self.max_speed)
        direction = self._random_direction()
        return DroneState(position=position, velocity=direction * speed)

    def sample_satisfying(
        self,
        predicate: Callable[[DroneState], bool],
        count: int,
        max_tries_per_sample: int = 200,
    ) -> List[DroneState]:
        """Draw ``count`` states satisfying ``predicate`` (rejection sampling)."""
        states: List[DroneState] = []
        for _ in range(count):
            found: Optional[DroneState] = None
            for _ in range(max_tries_per_sample):
                candidate = self.sample()
                if predicate(candidate):
                    found = candidate
                    break
            if found is None:
                raise RuntimeError(
                    "could not sample a state satisfying the predicate; "
                    "the region may be empty or extremely small"
                )
            states.append(found)
        return states

    def _random_direction(self) -> Vec3:
        while True:
            candidate = Vec3(
                self._rng.uniform(-1.0, 1.0),
                self._rng.uniform(-1.0, 1.0),
                self._rng.uniform(-0.3, 0.3),
            )
            if candidate.norm() > 1e-6:
                return candidate.unit()


def grid_positions(
    workspace: Workspace, spacing: float, altitude: float
) -> Iterator[Vec3]:
    """Deterministic grid of free positions over the workspace at an altitude."""
    if spacing <= 0.0:
        raise ValueError("spacing must be positive")
    lo, hi = workspace.bounds.lo, workspace.bounds.hi
    x = lo.x + spacing / 2.0
    while x < hi.x:
        y = lo.y + spacing / 2.0
        while y < hi.y:
            point = Vec3(x, y, altitude)
            if workspace.is_free(point):
                yield point
            y += spacing
        x += spacing
