"""Grid-based backward reachable sets (Level-Set Toolbox substitute).

Section V-A of the SOTER paper uses the Level-Set Toolbox to compute, over
the 2-D workspace, the *backward reachable set* of the obstacle region
within ``2Δ`` — the yellow region of Figure 12b from which the drone may
leave ``φ_safe`` within ``2Δ`` — and defines ``φ_safer = R(φ_safe, 2Δ)``
(the green region) as its complement within ``φ_safe``.

For a plant whose worst-case displacement over a horizon ``t`` is a known
scalar ``d(t)`` (bounded speed/acceleration), the backward reachable set of
the obstacles within ``t`` is exactly the sub-level set
``{x : dist(x, obstacles) ≤ d(t)}``.  This module computes that on an
occupancy grid using the brushfire distance transform, which preserves the
soundness the DM needs while replacing the external toolbox.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..dynamics import DroneState, DynamicsModel
from ..geometry import OccupancyGrid, Vec3, Workspace


@dataclass
class BackwardReachableSet:
    """Discrete backward reachable set of the unsafe region over a time horizon."""

    grid: OccupancyGrid
    distance: np.ndarray  # distance of each cell to the unsafe set
    reach_radius: float  # worst-case displacement over the horizon
    horizon: float

    def contains(self, point: Vec3) -> bool:
        """True if the unsafe set is reachable from ``point`` within the horizon."""
        cell = self.grid.world_to_cell(point)
        if not self.grid.in_grid(cell):
            return True
        return bool(self.distance[cell] <= self.reach_radius)

    def contains_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over an ``(N, 3)`` point array."""
        distances, in_grid = self._cell_distances(points)
        return ~in_grid | (distances <= self.reach_radius)

    def clearance_margin(self, point: Vec3) -> float:
        """How far (in metres) the point is from entering the reachable set."""
        cell = self.grid.world_to_cell(point)
        if not self.grid.in_grid(cell):
            return float("-inf")
        return float(self.distance[cell] - self.reach_radius)

    def clearance_margin_batch(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`clearance_margin` over an ``(N, 3)`` point array."""
        distances, in_grid = self._cell_distances(points)
        return np.where(in_grid, distances - self.reach_radius, -np.inf)

    def _cell_distances(self, points: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
        """Grid distances plus the in-grid mask for a batch of points."""
        from ..geometry import points_as_array

        pts = points_as_array(points)
        grid = self.grid
        i = np.floor((pts[:, 0] - grid.origin_x) / grid.resolution).astype(int)
        j = np.floor((pts[:, 1] - grid.origin_y) / grid.resolution).astype(int)
        nx, ny = grid.shape
        in_grid = (i >= 0) & (i < nx) & (j >= 0) & (j < ny)
        distances = np.zeros(pts.shape[0])
        distances[in_grid] = self.distance[i[in_grid], j[in_grid]]
        return distances, in_grid

    def fraction_of_workspace(self) -> float:
        """Fraction of grid cells inside the backward reachable set."""
        total = self.distance.size
        inside = int(np.count_nonzero(self.distance <= self.reach_radius))
        return inside / float(total)


class LevelSetAnalysis:
    """Computes backward reachable sets and φ_safer regions over a workspace."""

    def __init__(
        self,
        workspace: Workspace,
        model: DynamicsModel,
        resolution: float = 0.5,
        altitude: float = 2.0,
        obstacle_inflation: float = 0.0,
    ) -> None:
        self.workspace = workspace
        self.model = model
        self.altitude = altitude
        self.grid = OccupancyGrid.from_workspace(
            workspace, resolution=resolution, inflate=obstacle_inflation, altitude=altitude
        )
        self._distance = self.grid.distance_to_occupied()

    def worst_case_displacement(self, horizon: float, speed: float | None = None) -> float:
        """Worst-case travel distance over ``horizon`` (at max speed unless given)."""
        speed = self.model.max_speed if speed is None else speed
        return self.model.max_displacement(speed, horizon)

    def backward_reachable_set(self, horizon: float, speed: float | None = None) -> BackwardReachableSet:
        """Cells from which the obstacle region may be entered within ``horizon``."""
        radius = self.worst_case_displacement(horizon, speed)
        return BackwardReachableSet(
            grid=self.grid,
            distance=self._distance,
            reach_radius=radius,
            horizon=horizon,
        )

    def safer_region_predicate(
        self, two_delta: float, extra_margin: float = 0.0
    ) -> Callable[[DroneState], bool]:
        """Predicate for ``φ_safer = R(φ_safe, 2Δ)`` (Section V-A of the paper).

        A state is in ``φ_safer`` when, from its position, the obstacle
        region is *not* reachable within ``2Δ`` even under a fully
        nondeterministic controller — plus an optional extra margin that
        the ablation benchmarks sweep.
        """
        brs = self.backward_reachable_set(two_delta)

        def in_safer(state: DroneState) -> bool:
            return brs.clearance_margin(state.position) > extra_margin

        return in_safer

    def switching_region_predicate(self, two_delta: float) -> Callable[[DroneState], bool]:
        """Predicate for the switching (AC→SC) region: ttf_2Δ based on the grid.

        Unlike the analytic interval check, this version accounts for the
        actual current speed of the drone, so it is less conservative when
        the drone is flying slowly.
        """

        def ttf(state: DroneState) -> bool:
            radius = self.model.max_displacement(state.speed, two_delta)
            cell = self.grid.world_to_cell(state.position)
            if not self.grid.in_grid(cell):
                return True
            return bool(self._distance[cell] <= radius)

        return ttf

    def distance_at(self, point: Vec3) -> float:
        """Grid distance from ``point`` to the obstacle region."""
        cell = self.grid.world_to_cell(point)
        if not self.grid.in_grid(cell):
            return 0.0
        return float(self._distance[cell])
