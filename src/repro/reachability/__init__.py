"""Reachability substrates: worst-case intervals, grid level sets, FaSTrack-style synthesis."""

from .intervals import (
    ReachBall,
    SampledControllerReachability,
    WorstCaseReachability,
    reach_ball_union,
    states_as_arrays,
)
from .levelset import BackwardReachableSet, LevelSetAnalysis
from .fastrack import (
    SafeTrackerParams,
    TrackingErrorCertificate,
    synthesize_safe_tracker,
)
from .sampling import StateSampler, grid_positions

__all__ = [
    "ReachBall",
    "SampledControllerReachability",
    "WorstCaseReachability",
    "reach_ball_union",
    "states_as_arrays",
    "BackwardReachableSet",
    "LevelSetAnalysis",
    "SafeTrackerParams",
    "TrackingErrorCertificate",
    "synthesize_safe_tracker",
    "StateSampler",
    "grid_positions",
]
