"""Reachability substrates: worst-case intervals, grid level sets, FaSTrack-style synthesis."""

from .intervals import (
    ReachBall,
    SampledControllerReachability,
    WorstCaseReachability,
    reach_ball_union,
)
from .levelset import BackwardReachableSet, LevelSetAnalysis
from .fastrack import (
    SafeTrackerParams,
    TrackingErrorCertificate,
    synthesize_safe_tracker,
)
from .sampling import StateSampler, grid_positions

__all__ = [
    "ReachBall",
    "SampledControllerReachability",
    "WorstCaseReachability",
    "reach_ball_union",
    "BackwardReachableSet",
    "LevelSetAnalysis",
    "SafeTrackerParams",
    "TrackingErrorCertificate",
    "synthesize_safe_tracker",
    "StateSampler",
    "grid_positions",
]
