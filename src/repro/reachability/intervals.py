"""Analytic worst-case (interval/box) reachability for the drone models.

The decision module of a SOTER RTA module needs a *sound over-approximation*
of ``Reach(s, *, 2Δ)`` — the set of states reachable in ``2Δ`` seconds when
the controller is completely nondeterministic (Section III-B, Figure 9 of
the paper).  For a plant with bounded speed and bounded acceleration, a
ball (and hence a box) of radius equal to the worst-case displacement is
such an over-approximation; this module computes it analytically, which is
both fast enough to run inside the DM every period and provably
conservative with respect to the double-integrator and lagged-quadrotor
models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..dynamics import ControlCommand, DroneState, DynamicsModel
from ..geometry import AABB, ClearanceField, Vec3, Workspace


def states_as_arrays(states: Sequence[DroneState]) -> Tuple[np.ndarray, np.ndarray]:
    """Split drone states into the ``(N, 3)`` position / ``(N,)`` speed batch layout."""
    positions = np.array([s.position.as_tuple() for s in states], dtype=float).reshape(-1, 3)
    speeds = np.array([s.speed for s in states], dtype=float)
    return positions, speeds


@dataclass(frozen=True)
class ReachBall:
    """A ball over-approximating the positions reachable within a horizon."""

    center: Vec3
    radius: float
    horizon: float

    def contains(self, point: Vec3) -> bool:
        """True if ``point`` may be reached (lies inside the ball)."""
        return self.center.distance_to(point) <= self.radius

    def as_box(self) -> AABB:
        """Axis-aligned bounding box of the ball."""
        offset = Vec3(self.radius, self.radius, self.radius)
        return AABB(self.center - offset, self.center + offset)


class WorstCaseReachability:
    """Worst-case reachability for any :class:`DynamicsModel` with bounded dynamics."""

    def __init__(self, model: DynamicsModel) -> None:
        self.model = model

    def reach_ball(self, state: DroneState, horizon: float) -> ReachBall:
        """Ball containing every position reachable within ``horizon`` seconds."""
        radius = self.model.max_displacement(state.speed, horizon)
        return ReachBall(center=state.position, radius=radius, horizon=horizon)

    def may_leave_safe(
        self,
        state: DroneState,
        workspace: Workspace,
        horizon: float,
        margin: float = 0.0,
        field: Optional[ClearanceField] = None,
    ) -> bool:
        """True if some reachable position within ``horizon`` is unsafe.

        "Unsafe" means inside an (inflated) obstacle or outside the
        workspace bounds; this is exactly the check
        ``Reach(st, *, 2Δ) ⊄ φ_safe`` of Figure 9 when called with
        ``horizon = 2Δ``.

        With a :class:`ClearanceField` the cached conservative bound
        pre-answers the far-from-obstacle case; the returned decision is
        bit-for-bit the same either way.
        """
        ball = self.reach_ball(state, horizon)
        # The ball escapes φ_safe iff the clearance at the center is
        # smaller than the ball radius (clearance is a true metric
        # distance to the unsafe set).
        if field is not None:
            if field.decides_above(state.position, ball.radius, margin=margin):
                return False  # the cached bound alone rules the escape out
            clearance = field.clearance(state.position) - margin
        else:
            clearance = workspace.clearance(state.position) - margin
        return clearance <= ball.radius

    def unavoidable_travel_radius(self, state: DroneState, horizon: float) -> float:
        """Worst-case travel before *any* certified braking manoeuvre can stop the plant.

        The decision module must hand control to the safe controller early
        enough that the safe controller can still avoid the obstacle.  With
        bounded dynamics the sound bound is: the distance covered during
        ``horizon`` seconds of adversarial control, plus the stopping
        distance from the worst speed attainable at the end of that window.
        This is the discrete-dynamics analogue of the value-function-based
        switching surface a level-set computation yields.
        """
        travel = self.model.max_displacement(state.speed, horizon)
        worst_speed = min(
            self.model.max_speed, state.speed + self.model.max_acceleration * horizon
        )
        return travel + self.model.stopping_distance(worst_speed)

    def must_switch(
        self,
        state: DroneState,
        workspace: Workspace,
        horizon: float,
        margin: float = 0.0,
        field: Optional[ClearanceField] = None,
    ) -> bool:
        """True if the DM must switch now for the SC to be able to keep φ_safe."""
        radius = self.unavoidable_travel_radius(state, horizon)
        if field is not None:
            if field.decides_above(state.position, radius, margin=margin):
                return False
            clearance = field.clearance(state.position) - margin
        else:
            clearance = workspace.clearance(state.position) - margin
        return clearance <= radius

    def make_ttf_checker(
        self,
        workspace: Workspace,
        two_delta: float,
        margin: float = 0.0,
        include_braking: bool = True,
        field: Optional[ClearanceField] = None,
    ) -> Callable[[DroneState], bool]:
        """Build the ``ttf_2Δ`` predicate used by the motion-primitive DM.

        With ``include_braking`` (the default) the predicate also accounts
        for the safe controller's stopping distance, so the switch happens
        while recovery is still possible; without it the predicate is the
        literal ``Reach(st, *, 2Δ) ⊄ φ_safe`` check of Figure 9.
        """

        def ttf(state: DroneState) -> bool:
            if include_braking:
                return self.must_switch(state, workspace, two_delta, margin=margin, field=field)
            return self.may_leave_safe(state, workspace, two_delta, margin=margin, field=field)

        return ttf

    # ------------------------------------------------------------------ #
    # batched queries (bit-identical to mapping the scalar versions)
    # ------------------------------------------------------------------ #
    def reach_radii(self, speeds: np.ndarray, horizon: float) -> np.ndarray:
        """Reach-ball radii for an ``(N,)`` array of speeds."""
        return self.model.max_displacement_batch(speeds, horizon)

    def may_leave_safe_batch(
        self,
        positions: np.ndarray,
        speeds: np.ndarray,
        workspace: Workspace,
        horizon: float,
        margin: float = 0.0,
    ) -> np.ndarray:
        """Vectorised :meth:`may_leave_safe` over position/speed arrays.

        ``positions`` is ``(N, 3)``, ``speeds`` is ``(N,)``; returns an
        ``(N,)`` bool array equal, bit-for-bit, to evaluating the scalar
        check per state.  Use :func:`states_as_arrays` to convert a list of
        :class:`DroneState`.
        """
        radii = self.reach_radii(speeds, horizon)
        clearance = workspace.clearance_batch(positions) - margin
        return clearance <= radii

    def unavoidable_travel_radius_batch(self, speeds: np.ndarray, horizon: float) -> np.ndarray:
        """Vectorised :meth:`unavoidable_travel_radius` over an ``(N,)`` speed array."""
        speeds = np.asarray(speeds, dtype=float)
        travel = self.model.max_displacement_batch(speeds, horizon)
        worst_speeds = np.minimum(
            self.model.max_speed, speeds + self.model.max_acceleration * horizon
        )
        return travel + self.model.stopping_distance_batch(worst_speeds)

    def must_switch_batch(
        self,
        positions: np.ndarray,
        speeds: np.ndarray,
        workspace: Workspace,
        horizon: float,
        margin: float = 0.0,
    ) -> np.ndarray:
        """Vectorised :meth:`must_switch` over position/speed arrays."""
        radii = self.unavoidable_travel_radius_batch(speeds, horizon)
        clearance = workspace.clearance_batch(positions) - margin
        return clearance <= radii


class SampledControllerReachability:
    """Under-approximate reachability for a *fixed* controller, by simulation.

    Properties P2a and P2b of a well-formed RTA module quantify over the
    closed-loop behaviour of the safe controller.  Absent an analytic
    certificate, the well-formedness checker falsifies them by rolling the
    closed loop forward from sampled states; this helper performs those
    rollouts.
    """

    def __init__(self, model: DynamicsModel, dt: float = 0.02) -> None:
        if dt <= 0.0:
            raise ValueError("simulation step must be positive")
        self.model = model
        self.dt = dt

    def rollout(
        self,
        state: DroneState,
        controller: Callable[[DroneState, float], ControlCommand],
        duration: float,
    ) -> List[DroneState]:
        """Simulate the closed loop for ``duration`` seconds; returns all visited states."""
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        states = [state]
        time = 0.0
        current = state
        while time < duration - 1e-12:
            command = controller(current, time)
            current = self.model.step(current, command, self.dt)
            time += self.dt
            states.append(current)
        return states

    def stays_within(
        self,
        state: DroneState,
        controller: Callable[[DroneState, float], ControlCommand],
        duration: float,
        predicate: Callable[[DroneState], bool],
    ) -> bool:
        """True if every state visited during the rollout satisfies ``predicate``."""
        return all(predicate(s) for s in self.rollout(state, controller, duration))

    def rollout_batch(
        self,
        states: Sequence[DroneState],
        controller_batch: Callable[[np.ndarray, np.ndarray, float], np.ndarray],
        duration: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Simulate N closed loops simultaneously (structure-of-arrays).

        ``controller_batch(positions, velocities, time)`` must return the
        ``(N, 3)`` commanded accelerations for the batch at ``time``.  The
        state matrix is integrated through the dynamics model's
        :meth:`~repro.dynamics.DynamicsModel.step_batch` API; the returned
        ``(T+1, N, 3)`` position and velocity tensors contain exactly the
        states the scalar :meth:`rollout` visits per sample (the time grid
        replicates the scalar float accumulation, and vectorised
        controllers/models are bit-identical to their scalar laws).  This
        is the kernel of the batched P2a/P2b falsification checks: N
        samples × T steps collapse into T vectorised calls.
        """
        if duration < 0.0:
            raise ValueError("duration must be non-negative")
        positions = np.array([s.position.as_tuple() for s in states], dtype=float).reshape(-1, 3)
        velocities = np.array([s.velocity.as_tuple() for s in states], dtype=float).reshape(-1, 3)
        # Stateful models (the lagged quadrotor) seed one independent copy
        # of their internal state per row here; every model then integrates
        # through the same vectorised step_batch path — no per-model
        # dispatch, and no scalar-loop fallback threading internal state
        # sequentially across rows.
        self.model.begin_batch(positions.shape[0])
        position_history = [positions]
        velocity_history = [velocities]
        time = 0.0
        while time < duration - 1e-12:
            accelerations = controller_batch(positions, velocities, time)
            positions, velocities = self.model.step_batch(
                positions, velocities, accelerations, self.dt
            )
            time += self.dt
            position_history.append(positions)
            velocity_history.append(velocities)
        return np.stack(position_history), np.stack(velocity_history)


def reach_ball_union(balls: Iterable[ReachBall]) -> AABB:
    """Bounding box of a union of reach balls (used for region visualisation)."""
    balls = list(balls)
    if not balls:
        raise ValueError("need at least one ball")
    box = balls[0].as_box()
    for ball in balls[1:]:
        box = box.union(ball.as_box())
    return box
