"""FaSTrack-style safe-controller synthesis (tracking-error-bound certificate).

The paper synthesises its safe controller with FaSTrack [19]: a controller
plus a *tracking error bound* (TEB) such that, as long as the reference
stays ``TEB`` away from obstacles, the closed loop never collides.  This
module provides the same artefact for the bounded double-integrator plant:

* a conservative tracking-controller parameterisation (speed cap, gains,
  braking margin), and
* an analytic :class:`TrackingErrorCertificate` giving the TEB and the
  invariant margins the well-formedness checker (P2a/P2b/P3) can consume
  without falsification.

The derivation is standard worst-case analysis for a saturated
double integrator: a controller that caps its speed at ``v_safe`` and
brakes with acceleration ``a`` can always stop within
``v_safe² / (2a)`` metres, so if it never commands motion toward an
obstacle closer than the TEB it can never penetrate it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dynamics import DynamicsModel
from ..geometry import Workspace


@dataclass(frozen=True)
class SafeTrackerParams:
    """Parameters of the certified conservative tracking controller."""

    max_speed: float
    max_acceleration: float
    position_gain: float
    velocity_gain: float
    obstacle_margin: float

    def __post_init__(self) -> None:
        if self.max_speed <= 0.0 or self.max_acceleration <= 0.0:
            raise ValueError("speed and acceleration limits must be positive")
        if self.position_gain <= 0.0 or self.velocity_gain <= 0.0:
            raise ValueError("controller gains must be positive")
        if self.obstacle_margin < 0.0:
            raise ValueError("obstacle margin must be non-negative")


@dataclass(frozen=True)
class TrackingErrorCertificate:
    """Analytic certificate for the safe controller (FaSTrack TEB substitute).

    Attributes
    ----------
    tracking_error_bound:
        Maximum distance the closed loop can stray from its reference.
    stopping_distance:
        Distance needed to come to rest from the capped speed.
    invariant_clearance:
        Clearance from obstacles that, once achieved, the safe controller
        never loses (supports property P2a).
    recovery_rate:
        Lower bound on the speed at which the safe controller increases its
        clearance while recovering (supports property P2b).
    """

    tracking_error_bound: float
    stopping_distance: float
    invariant_clearance: float
    recovery_rate: float

    def p2a_holds_for_clearance(self, clearance: float) -> bool:
        """P2a: once the drone has this clearance, the SC keeps it in φ_safe."""
        return clearance >= self.invariant_clearance

    def recovery_time_bound(self, initial_clearance: float, target_clearance: float) -> float:
        """Upper bound on the time (P2b's T) to recover the target clearance."""
        deficit = max(0.0, target_clearance - initial_clearance)
        if self.recovery_rate <= 0.0:
            return float("inf")
        return deficit / self.recovery_rate


def synthesize_safe_tracker(
    model: DynamicsModel,
    workspace: Workspace,
    safe_speed_fraction: float = 0.3,
    obstacle_margin: float = 0.5,
) -> tuple[SafeTrackerParams, TrackingErrorCertificate]:
    """Derive safe-tracker parameters plus their certificate for a given plant.

    The synthesis picks a conservative speed cap (a fraction of the plant's
    maximum speed), PD gains that keep the closed loop overdamped, and an
    obstacle margin at least as large as the stopping distance at the speed
    cap — which is what makes the analytic certificate sound.
    """
    if not 0.0 < safe_speed_fraction <= 1.0:
        raise ValueError("safe_speed_fraction must lie in (0, 1]")
    v_safe = model.max_speed * safe_speed_fraction
    a_max = model.max_acceleration
    stopping = v_safe * v_safe / (2.0 * a_max)
    # The margin must dominate the stopping distance plus numerical slack.
    margin = max(obstacle_margin, stopping * 1.5 + 0.1)
    params = SafeTrackerParams(
        max_speed=v_safe,
        max_acceleration=a_max,
        position_gain=1.2,
        velocity_gain=2.2,
        obstacle_margin=margin,
    )
    certificate = TrackingErrorCertificate(
        tracking_error_bound=margin,
        stopping_distance=stopping,
        invariant_clearance=max(stopping + 0.05, 0.1),
        # While recovering, the SC travels away from obstacles at least at
        # half its capped speed (the PD law is saturated toward the
        # recovery waypoint for most of the manoeuvre).
        recovery_rate=0.5 * v_safe,
    )
    return params, certificate
