"""RRT* sampling-based motion planner (OMPL substitute).

The paper implements its surveillance motion planner with the RRT*
algorithm [29] from the third-party OMPL library and treats it as an
untrusted advanced component.  This is a from-scratch RRT* with the usual
ingredients — uniform sampling with goal bias, steering with a bounded
step, nearest/near queries, cost-based rewiring — planning in the (x, y)
plane at a fixed flight altitude (the case-study workspace has
ground-mounted obstacles, so planning altitude is constant).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional

from ..geometry import Vec3, Workspace
from .plan import Plan


@dataclass
class _TreeNode:
    position: Vec3
    parent: Optional[int]
    cost: float


@dataclass
class RRTStarPlanner:
    """Sampling-based asymptotically-optimal planner (the untrusted planner AC)."""

    workspace: Workspace
    clearance: float = 1.0
    altitude: float = 2.0
    max_iterations: int = 600
    step_size: float = 3.0
    neighbor_radius: float = 5.0
    goal_bias: float = 0.15
    goal_tolerance: float = 1.0
    seed: int = 0
    name: str = "rrt-star"
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be at least 1")
        if self.step_size <= 0.0 or self.neighbor_radius <= 0.0:
            raise ValueError("step_size and neighbor_radius must be positive")
        if not 0.0 <= self.goal_bias <= 1.0:
            raise ValueError("goal_bias must be in [0, 1]")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def plan(self, start: Vec3, goal: Vec3, created_at: float = 0.0) -> Optional[Plan]:
        """Plan from ``start`` to ``goal``; returns None if no path was found."""
        start = start.with_z(self.altitude)
        goal = goal.with_z(self.altitude)
        nodes: List[_TreeNode] = [_TreeNode(position=start, parent=None, cost=0.0)]
        best_goal_index: Optional[int] = None
        best_goal_cost = math.inf
        for _ in range(self.max_iterations):
            sample = self._sample(goal)
            nearest_index = self._nearest(nodes, sample)
            new_position = self._steer(nodes[nearest_index].position, sample)
            if not self._segment_free(nodes[nearest_index].position, new_position):
                continue
            near_indices = self._near(nodes, new_position)
            parent_index, cost = self._choose_parent(nodes, near_indices, nearest_index, new_position)
            nodes.append(_TreeNode(position=new_position, parent=parent_index, cost=cost))
            new_index = len(nodes) - 1
            self._rewire(nodes, near_indices, new_index)
            # Track the cheapest node that can connect straight to the goal.
            if new_position.distance_to(goal) <= self.goal_tolerance or self._segment_free(
                new_position, goal
            ):
                goal_cost = cost + new_position.distance_to(goal)
                if goal_cost < best_goal_cost:
                    best_goal_cost = goal_cost
                    best_goal_index = new_index
        if best_goal_index is None:
            return None
        waypoints = self._extract_path(nodes, best_goal_index, goal)
        return Plan(waypoints=tuple(waypoints), goal=goal, planner=self.name, created_at=created_at)

    # ------------------------------------------------------------------ #
    # RRT* internals
    # ------------------------------------------------------------------ #
    def _sample(self, goal: Vec3) -> Vec3:
        if self._rng.random() < self.goal_bias:
            return goal
        bounds = self.workspace.bounds
        return Vec3(
            self._rng.uniform(bounds.lo.x, bounds.hi.x),
            self._rng.uniform(bounds.lo.y, bounds.hi.y),
            self.altitude,
        )

    @staticmethod
    def _nearest(nodes: List[_TreeNode], sample: Vec3) -> int:
        best_index = 0
        best_dist = math.inf
        for index, node in enumerate(nodes):
            dist = node.position.distance_to(sample)
            if dist < best_dist:
                best_dist = dist
                best_index = index
        return best_index

    def _near(self, nodes: List[_TreeNode], position: Vec3) -> List[int]:
        return [
            index
            for index, node in enumerate(nodes)
            if node.position.distance_to(position) <= self.neighbor_radius
        ]

    def _steer(self, origin: Vec3, sample: Vec3) -> Vec3:
        direction = sample - origin
        distance = direction.norm()
        if distance <= self.step_size:
            return sample.with_z(self.altitude)
        return (origin + direction.unit() * self.step_size).with_z(self.altitude)

    def _segment_free(self, a: Vec3, b: Vec3) -> bool:
        return self.workspace.segment_is_free(a, b, margin=self.clearance)

    def _choose_parent(
        self, nodes: List[_TreeNode], near: List[int], fallback: int, position: Vec3
    ) -> tuple[int, float]:
        best_index = fallback
        best_cost = nodes[fallback].cost + nodes[fallback].position.distance_to(position)
        for index in near:
            candidate_cost = nodes[index].cost + nodes[index].position.distance_to(position)
            if candidate_cost < best_cost and self._segment_free(nodes[index].position, position):
                best_cost = candidate_cost
                best_index = index
        return best_index, best_cost

    def _rewire(self, nodes: List[_TreeNode], near: List[int], new_index: int) -> None:
        new_node = nodes[new_index]
        for index in near:
            if index == new_node.parent:
                continue
            candidate_cost = new_node.cost + new_node.position.distance_to(nodes[index].position)
            if candidate_cost < nodes[index].cost and self._segment_free(
                new_node.position, nodes[index].position
            ):
                nodes[index].parent = new_index
                nodes[index].cost = candidate_cost

    def _extract_path(self, nodes: List[_TreeNode], goal_index: int, goal: Vec3) -> List[Vec3]:
        path: List[Vec3] = [goal]
        index: Optional[int] = goal_index
        while index is not None:
            path.append(nodes[index].position)
            index = nodes[index].parent
        path.reverse()
        return self._simplify(path)

    def _simplify(self, waypoints: List[Vec3]) -> List[Vec3]:
        """Drop intermediate waypoints when a safe straight shortcut exists."""
        if len(waypoints) <= 2:
            return waypoints
        result = [waypoints[0]]
        index = 0
        while index < len(waypoints) - 1:
            next_index = index + 1
            for candidate in range(len(waypoints) - 1, index, -1):
                if self._segment_free(waypoints[index], waypoints[candidate]):
                    next_index = candidate
                    break
            result.append(waypoints[next_index])
            index = next_index
        return result
