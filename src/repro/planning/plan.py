"""Motion plans: the value exchanged between the planner and the primitives.

The motion planner publishes a :class:`Plan` — an identified sequence of
waypoints from the drone's current position toward a goal — on a topic the
motion-primitive nodes subscribe to (Figure 3 of the paper).  Plans are
immutable values: when the planner produces a new one it publishes a new
object with a fresh identifier, which is how the primitives detect that
their waypoint index must reset.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional, Tuple

from ..geometry import ReferenceTrajectory, Vec3, Workspace

_plan_counter = itertools.count(1)


@dataclass(frozen=True)
class Plan:
    """An immutable motion plan: ordered waypoints toward a goal."""

    waypoints: Tuple[Vec3, ...]
    goal: Vec3
    planner: str = "unknown"
    plan_id: int = field(default_factory=lambda: next(_plan_counter))
    created_at: float = 0.0
    is_landing: bool = False

    def __post_init__(self) -> None:
        if not self.waypoints:
            raise ValueError("a plan must contain at least one waypoint")

    def __len__(self) -> int:
        return len(self.waypoints)

    # Immutable value (see the module docstring): copying returns the
    # object itself, so snapshots of nodes holding plans stay cheap.
    def __copy__(self) -> "Plan":
        return self

    def __deepcopy__(self, memo: dict) -> "Plan":
        return self

    @property
    def final_waypoint(self) -> Vec3:
        return self.waypoints[-1]

    def reference(self) -> ReferenceTrajectory:
        """The piecewise-straight reference trajectory through the waypoints."""
        return ReferenceTrajectory(self.waypoints)

    def length(self) -> float:
        """Total path length of the plan."""
        return self.reference().length()

    def is_collision_free(self, workspace: Workspace, margin: float = 0.0) -> bool:
        """True if every plan segment keeps ``margin`` clearance from obstacles."""
        return self.reference().is_collision_free(workspace, margin=margin)

    def waypoint_after(self, index: int) -> Vec3:
        """The waypoint at ``index``, clamped to the final waypoint."""
        clamped = min(max(index, 0), len(self.waypoints) - 1)
        return self.waypoints[clamped]

    def with_prefix(self, start: Vec3) -> "Plan":
        """A copy whose first waypoint is ``start`` (used to splice the current position)."""
        return Plan(
            waypoints=(start,) + self.waypoints,
            goal=self.goal,
            planner=self.planner,
            created_at=self.created_at,
            is_landing=self.is_landing,
        )


def straight_line_plan(
    start: Vec3, goal: Vec3, planner: str = "straight-line", created_at: float = 0.0
) -> Plan:
    """The trivial single-segment plan from ``start`` to ``goal``."""
    return Plan(waypoints=(start, goal), goal=goal, planner=planner, created_at=created_at)


def landing_plan(position: Vec3, planner: str = "safe-landing", created_at: float = 0.0) -> Plan:
    """A plan that descends vertically from ``position`` to the ground."""
    touchdown = Vec3(position.x, position.y, 0.0)
    return Plan(
        waypoints=(position, touchdown),
        goal=touchdown,
        planner=planner,
        created_at=created_at,
        is_landing=True,
    )
