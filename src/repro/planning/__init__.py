"""Motion planning substrate: plans, A*, RRT*, validation, and fault injection."""

from .plan import Plan, landing_plan, straight_line_plan
from .astar import GridAStarPlanner
from .rrt_star import RRTStarPlanner
from .validation import PlanValidation, PlanValidator
from .faulty import FaultyPlanner, PlannerBug

__all__ = [
    "Plan",
    "landing_plan",
    "straight_line_plan",
    "GridAStarPlanner",
    "RRTStarPlanner",
    "PlanValidation",
    "PlanValidator",
    "FaultyPlanner",
    "PlannerBug",
]
