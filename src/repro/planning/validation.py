"""Plan validation: the φ_plan safety predicate of the planner RTA module.

``φ_plan`` (Section II-A of the paper) requires that "the motion planner
must always generate a motion plan such that the reference trajectory does
not collide with any obstacle".  The validator below evaluates exactly
that on a :class:`~repro.planning.plan.Plan` value, and reports the first
offending segment to make the fault-injection experiments explainable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..geometry import Vec3, Workspace
from .plan import Plan


@dataclass(frozen=True)
class PlanValidation:
    """Result of validating a motion plan against a workspace."""

    valid: bool
    reason: str = ""
    offending_segment: Optional[Tuple[Vec3, Vec3]] = None


class PlanValidator:
    """Checks that every plan segment keeps the required clearance."""

    def __init__(self, workspace: Workspace, clearance: float = 0.5) -> None:
        if clearance < 0.0:
            raise ValueError("clearance must be non-negative")
        self.workspace = workspace
        self.clearance = clearance

    def validate(self, plan: Optional[Plan]) -> PlanValidation:
        """Validate a plan; ``None`` and empty plans are invalid."""
        if plan is None:
            return PlanValidation(valid=False, reason="no plan available")
        waypoints = plan.waypoints
        if len(waypoints) == 1:
            if self.workspace.is_free(waypoints[0], margin=self.clearance):
                return PlanValidation(valid=True, reason="single safe waypoint")
            return PlanValidation(
                valid=False,
                reason="waypoint is inside (or too close to) an obstacle",
                offending_segment=(waypoints[0], waypoints[0]),
            )
        for a, b in zip(waypoints[:-1], waypoints[1:]):
            if not self.workspace.segment_is_free(a, b, margin=self.clearance):
                return PlanValidation(
                    valid=False,
                    reason="segment intersects an obstacle (with clearance margin)",
                    offending_segment=(a, b),
                )
        return PlanValidation(valid=True, reason="all segments keep the clearance margin")

    def is_valid(self, plan: Optional[Plan]) -> bool:
        """Boolean shorthand used by the planner module's φ_safe predicate."""
        return self.validate(plan).valid
