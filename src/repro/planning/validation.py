"""Plan validation: the φ_plan safety predicate of the planner RTA module.

``φ_plan`` (Section II-A of the paper) requires that "the motion planner
must always generate a motion plan such that the reference trajectory does
not collide with any obstacle".  The validator below evaluates exactly
that on a :class:`~repro.planning.plan.Plan` value, and reports the first
offending segment to make the fault-injection experiments explainable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..geometry import Vec3, Workspace, points_as_array
from .plan import Plan


@dataclass(frozen=True)
class PlanValidation:
    """Result of validating a motion plan against a workspace."""

    valid: bool
    reason: str = ""
    offending_segment: Optional[Tuple[Vec3, Vec3]] = None


class PlanValidator:
    """Checks that every plan segment keeps the required clearance."""

    def __init__(self, workspace: Workspace, clearance: float = 0.5) -> None:
        if clearance < 0.0:
            raise ValueError("clearance must be non-negative")
        self.workspace = workspace
        self.clearance = clearance

    def validate(self, plan: Optional[Plan]) -> PlanValidation:
        """Validate a plan; ``None`` and empty plans are invalid."""
        if plan is None:
            return PlanValidation(valid=False, reason="no plan available")
        waypoints = plan.waypoints
        if len(waypoints) == 1:
            if self.workspace.is_free(waypoints[0], margin=self.clearance):
                return PlanValidation(valid=True, reason="single safe waypoint")
            return PlanValidation(
                valid=False,
                reason="waypoint is inside (or too close to) an obstacle",
                offending_segment=(waypoints[0], waypoints[0]),
            )
        # One batched query covers the whole waypoint path: every segment's
        # slab tests against every obstacle run in a single vectorised
        # call, with answers identical to the per-segment scalar loop.
        points = points_as_array(waypoints)
        free = self.workspace.segments_free_batch(points[:-1], points[1:], margin=self.clearance)
        if not free.all():
            first_bad = int(np.argmin(free))
            return PlanValidation(
                valid=False,
                reason="segment intersects an obstacle (with clearance margin)",
                offending_segment=(waypoints[first_bad], waypoints[first_bad + 1]),
            )
        return PlanValidation(valid=True, reason="all segments keep the clearance margin")

    def is_valid(self, plan: Optional[Plan]) -> bool:
        """Boolean shorthand used by the planner module's φ_safe predicate."""
        return self.validate(plan).valid
