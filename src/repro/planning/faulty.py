"""Bug-injected planners (Section V-C of the paper).

"We injected bugs into the implementation of RRT* such that in some cases
the generated motion plan can collide with obstacles."  The wrappers here
do the same to any planner with a ``plan(start, goal, created_at)``
method, in three representative ways:

* **corner cutting** — replace the plan by the straight start→goal
  segment, ignoring obstacles (a classic shortcutting bug);
* **waypoint corruption** — perturb a random intermediate waypoint so the
  path clips an obstacle;
* **clearance loss** — re-plan with a (near-)zero clearance margin so the
  path hugs obstacle faces.

The fault fires with a configurable probability per planning query, so the
planner "usually works" — which is what makes runtime assurance, rather
than rejection at design time, the right tool.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..geometry import Vec3
from .plan import Plan, straight_line_plan


class Planner(Protocol):
    """Anything that can produce a plan between two points."""

    name: str

    def plan(self, start: Vec3, goal: Vec3, created_at: float = 0.0) -> Optional[Plan]:
        ...


class PlannerBug(enum.Enum):
    """The injected bug classes."""

    CORNER_CUTTING = "corner-cutting"
    WAYPOINT_CORRUPTION = "waypoint-corruption"
    CLEARANCE_LOSS = "clearance-loss"


@dataclass
class FaultyPlanner:
    """Wraps a planner and injects plan-level bugs with a given probability."""

    inner: Planner
    bug: PlannerBug = PlannerBug.CORNER_CUTTING
    probability: float = 0.3
    corruption_magnitude: float = 4.0
    seed: int = 0
    name: str = ""
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be in [0, 1]")
        if not self.name:
            self.name = f"{self.inner.name}+{self.bug.value}"
        self._rng = random.Random(self.seed)
        self.injected_faults = 0

    def plan(self, start: Vec3, goal: Vec3, created_at: float = 0.0) -> Optional[Plan]:
        """Plan with the inner planner, then possibly corrupt the result."""
        nominal = self.inner.plan(start, goal, created_at=created_at)
        if self._rng.random() >= self.probability:
            return nominal
        self.injected_faults += 1
        if self.bug is PlannerBug.CORNER_CUTTING:
            return straight_line_plan(start, goal, planner=self.name, created_at=created_at)
        if nominal is None:
            return None
        if self.bug is PlannerBug.WAYPOINT_CORRUPTION:
            return self._corrupt_waypoint(nominal, created_at)
        if self.bug is PlannerBug.CLEARANCE_LOSS:
            return self._hug_obstacles(nominal, created_at)
        raise ValueError(f"unsupported planner bug {self.bug}")

    def _corrupt_waypoint(self, plan: Plan, created_at: float) -> Plan:
        waypoints = list(plan.waypoints)
        if len(waypoints) <= 2:
            # Nothing intermediate to corrupt; degrade to corner cutting.
            return straight_line_plan(waypoints[0], plan.goal, planner=self.name, created_at=created_at)
        index = self._rng.randrange(1, len(waypoints) - 1)
        offset = Vec3(
            self._rng.uniform(-self.corruption_magnitude, self.corruption_magnitude),
            self._rng.uniform(-self.corruption_magnitude, self.corruption_magnitude),
            0.0,
        )
        waypoints[index] = waypoints[index] + offset
        return Plan(
            waypoints=tuple(waypoints),
            goal=plan.goal,
            planner=self.name,
            created_at=created_at,
        )

    def _hug_obstacles(self, plan: Plan, created_at: float) -> Plan:
        """Pull every intermediate waypoint halfway toward the straight line."""
        waypoints = list(plan.waypoints)
        if len(waypoints) <= 2:
            return plan
        start, goal = waypoints[0], waypoints[-1]
        squeezed = [start]
        for index, waypoint in enumerate(waypoints[1:-1], start=1):
            alpha = index / (len(waypoints) - 1)
            straight_point = start.lerp(goal, alpha)
            squeezed.append(waypoint.lerp(straight_point, 0.6))
        squeezed.append(goal)
        return Plan(
            waypoints=tuple(squeezed),
            goal=plan.goal,
            planner=self.name,
            created_at=created_at,
        )
