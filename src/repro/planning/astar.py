"""Grid A* planner: the certified motion planner (SC of the planner RTA module).

Section V-C of the paper wraps the (buggy) third-party RRT* planner in an
RTA module; the safe counterpart must be a planner that is simple enough
to certify.  A deterministic A* search over an inflated occupancy grid,
followed by plan validation, is that counterpart here: it always returns a
plan whose every segment keeps the configured clearance, or reports that
no such plan exists.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geometry import OccupancyGrid, Vec3, Workspace
from .plan import Plan

Cell = Tuple[int, int]


@dataclass
class GridAStarPlanner:
    """Deterministic A* over a 2-D occupancy grid at a fixed flight altitude."""

    workspace: Workspace
    resolution: float = 0.5
    clearance: float = 1.0
    altitude: float = 2.0
    name: str = "grid-astar"

    def __post_init__(self) -> None:
        if self.resolution <= 0.0:
            raise ValueError("resolution must be positive")
        if self.clearance < 0.0:
            raise ValueError("clearance must be non-negative")
        self.grid = OccupancyGrid.from_workspace(
            self.workspace, resolution=self.resolution, inflate=self.clearance, altitude=self.altitude
        )

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(self, start: Vec3, goal: Vec3, created_at: float = 0.0) -> Optional[Plan]:
        """Plan from ``start`` to ``goal``; returns None when no safe path exists."""
        start_cell = self._nearest_free_cell(self.grid.world_to_cell(start))
        goal_cell = self._nearest_free_cell(self.grid.world_to_cell(goal))
        if start_cell is None or goal_cell is None:
            return None
        cells = self._search(start_cell, goal_cell)
        if cells is None:
            return None
        waypoints = self._cells_to_waypoints(start, goal, cells)
        return Plan(waypoints=tuple(waypoints), goal=goal, planner=self.name, created_at=created_at)

    def _search(self, start: Cell, goal: Cell) -> Optional[List[Cell]]:
        open_heap: List[Tuple[float, Cell]] = [(0.0, start)]
        came_from: Dict[Cell, Cell] = {}
        g_score: Dict[Cell, float] = {start: 0.0}
        closed: set = set()
        while open_heap:
            _, current = heapq.heappop(open_heap)
            if current in closed:
                continue
            if current == goal:
                return self._reconstruct(came_from, current)
            closed.add(current)
            for neighbor in self.grid.neighbors(current, diagonal=True):
                if self.grid.is_occupied_cell(neighbor) or neighbor in closed:
                    continue
                step = self._distance(current, neighbor)
                tentative = g_score[current] + step
                if tentative < g_score.get(neighbor, math.inf):
                    g_score[neighbor] = tentative
                    came_from[neighbor] = current
                    priority = tentative + self._distance(neighbor, goal)
                    heapq.heappush(open_heap, (priority, neighbor))
        return None

    def _distance(self, a: Cell, b: Cell) -> float:
        return math.hypot(a[0] - b[0], a[1] - b[1]) * self.resolution

    @staticmethod
    def _reconstruct(came_from: Dict[Cell, Cell], current: Cell) -> List[Cell]:
        path = [current]
        while current in came_from:
            current = came_from[current]
            path.append(current)
        path.reverse()
        return path

    def _nearest_free_cell(self, cell: Cell, max_radius: int = 6) -> Optional[Cell]:
        """The cell itself if free, otherwise the closest free cell nearby."""
        if self.grid.in_grid(cell) and not self.grid.is_occupied_cell(cell):
            return cell
        best: Optional[Cell] = None
        best_dist = math.inf
        ci, cj = cell
        for di in range(-max_radius, max_radius + 1):
            for dj in range(-max_radius, max_radius + 1):
                candidate = (ci + di, cj + dj)
                if not self.grid.in_grid(candidate) or self.grid.is_occupied_cell(candidate):
                    continue
                dist = math.hypot(di, dj)
                if dist < best_dist:
                    best_dist = dist
                    best = candidate
        return best

    # ------------------------------------------------------------------ #
    # path post-processing
    # ------------------------------------------------------------------ #
    def _cells_to_waypoints(self, start: Vec3, goal: Vec3, cells: List[Cell]) -> List[Vec3]:
        raw = [start.with_z(self.altitude)]
        raw.extend(self.grid.cell_to_world(cell, altitude=self.altitude) for cell in cells)
        raw.append(goal.with_z(self.altitude))
        return self._shortcut(raw)

    def _shortcut(self, waypoints: List[Vec3]) -> List[Vec3]:
        """Greedy line-of-sight shortcutting that preserves the clearance margin."""
        if len(waypoints) <= 2:
            return waypoints
        result = [waypoints[0]]
        index = 0
        while index < len(waypoints) - 1:
            # Find the furthest waypoint reachable in a straight, safe segment.
            next_index = index + 1
            for candidate in range(len(waypoints) - 1, index, -1):
                if self.workspace.segment_is_free(
                    waypoints[index], waypoints[candidate], margin=self.clearance * 0.9
                ):
                    next_index = candidate
                    break
            result.append(waypoints[next_index])
            index = next_index
        return result
