"""SOTER reproduction: a runtime assurance framework for programming safe robotics systems.

The package reproduces Desai et al., "SOTER: A Runtime Assurance Framework
for Programming Safe Robotics Systems" (DSN 2019): a publish/subscribe
programming model with calendar-automata semantics, Simplex-style RTA
modules with provably-safe bidirectional switching, a compiler with
well-formedness checking, and the drone-surveillance case study the paper
evaluates (motion primitives, battery safety, motion planner), together
with the simulation, planning, control, and reachability substrates they
run on.

Typical entry points:

* :mod:`repro.core` — the SOTER language/runtime primitives
  (:class:`~repro.core.Node`, :class:`~repro.core.RTAModuleSpec`,
  :class:`~repro.core.SoterCompiler`, :class:`~repro.core.SemanticsEngine`).
* :mod:`repro.apps` — the drone case study
  (:func:`~repro.apps.build_stack`, :func:`~repro.apps.run_mission`).
"""

from . import (
    apps,
    control,
    core,
    dynamics,
    geometry,
    planning,
    reachability,
    runtime,
    simulation,
    testing,
)

__version__ = "1.0.0"

__all__ = [
    "apps",
    "control",
    "core",
    "dynamics",
    "geometry",
    "planning",
    "reachability",
    "runtime",
    "simulation",
    "testing",
    "__version__",
]
