"""Parallel systematic testing: shard executions across worker processes.

The serial :class:`~repro.testing.SystematicTester` explores one execution
at a time in-process.  This module scales the same exploration across a
pool of worker processes:

* **Random sweeps** are sharded by execution index.  Because
  :class:`~repro.testing.strategies.RandomStrategy` derives execution
  *i*'s RNG stream from ``(seed, i)``, every worker reproduces exactly the
  choices the serial tester would have made for its slice — same seed ⇒
  same violation set and identical replayable trails, regardless of the
  worker count.

* **Exhaustive enumeration** is sharded by *trail prefix*.  The first
  choice point of a model is reached deterministically, so pinning each of
  its options splits the choice tree into disjoint subtrees; a few cheap
  probe executions discover the branching structure and
  :class:`~repro.testing.strategies.ExhaustiveStrategy`'s ``prefix``
  restricts each worker to its own subtree.  The union of the subtree
  enumerations is exactly the serial enumeration.

Workers stream :class:`~repro.testing.explorer.ExecutionRecord`s back
through a queue as they finish, so the aggregator can stop the whole pool
on the first violation.  Every counterexample the pool reports can be
(and by default is) replayed on the serial engine for confirmation.

Workloads are named through the scenario registry
(:mod:`repro.testing.scenarios`) so that worker processes can rebuild the
model under test from a string instead of pickling closures; an arbitrary
``harness_factory`` is also accepted (it must be picklable under the
``spawn`` start method — under the default ``fork`` method any callable
works).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.monitor import Violation
from .coverage import CoverageMap
from .explorer import ExecutionRecord, ModelInstance, SystematicTester, TestReport
from .population import PopulationTester
from .scenarios import scenario_factory
from .strategies import ChoiceStrategy, ExhaustiveStrategy, RandomStrategy, start_execution

HarnessFactory = Callable[[], ModelInstance]

#: How often the aggregator wakes up to check that workers are still alive
#: while waiting for results (seconds).  Executions can legitimately take
#: long, so liveness — not elapsed time — decides when the pool is dead.
_POLL_INTERVAL = 0.5


# --------------------------------------------------------------------- #
# work descriptions shipped to workers
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class _RandomShard:
    """A slice of a random sweep: run exactly these execution indices."""

    factory: HarnessFactory
    seed: int
    max_executions: int
    indices: Tuple[int, ...]
    max_permuted: int
    stop_at_first_violation: bool
    monitor_window: int = 1
    reuse_instances: bool = True
    track_coverage: bool = False
    #: When set, workers run the population execution plane
    #: (:class:`~repro.testing.population.PopulationTester`) with this
    #: snapshot bound instead of the serial tester.  Reports stay
    #: identical either way; only per-worker throughput changes.
    population_size: Optional[int] = None


@dataclass(frozen=True)
class _ExhaustiveShard:
    """A set of disjoint choice-tree subtrees to enumerate fully."""

    factory: HarnessFactory
    prefixes: Tuple[Tuple[int, ...], ...]
    max_depth: int
    max_executions: int
    max_permuted: int
    stop_at_first_violation: bool
    monitor_window: int = 1
    reuse_instances: bool = True
    track_coverage: bool = False
    population_size: Optional[int] = None


def _warm_start(factory: HarnessFactory) -> Optional[str]:
    """Build (and discard) one model instance before the shard's real work.

    Scenario builders memoise their immutable parts per process — the
    shared world geometry and its :class:`~repro.geometry.ClearanceField`
    (see :mod:`repro.apps.scenarios`) — so one warm build pays the
    import/registry/geometry cost exactly once per worker instead of
    inside the first timed execution.  A scenario that cannot even build
    will never run: the failure is reported immediately (the returned
    traceback becomes the worker's error payload) instead of resurfacing
    later as a confusing per-execution error.
    """
    try:
        factory()
    except Exception:
        return traceback.format_exc()
    return None


def _worker_main(worker_id: int, shard: Any, result_queue: Any, stop_event: Any) -> None:
    """Entry point of one worker process: run the shard, stream records back.

    The shard's cumulative coverage map (``None`` when the shard does not
    track coverage) rides the final ``done`` message — the aggregator
    merges shard maps in arrival order, which is safe because the merge
    is order-independent.
    """
    try:
        if not shard.reuse_instances:
            # The reset-and-reuse path builds (and keeps) its one instance on
            # the first execution, which *is* the warm start; only the
            # fresh-build path needs a throwaway build to pre-warm the
            # per-process scenario memos outside the first timed execution.
            build_failure = _warm_start(shard.factory)
            if build_failure is not None:
                result_queue.put(("error", worker_id, build_failure))
                return
        if isinstance(shard, _RandomShard):
            coverage = _run_random_shard(worker_id, shard, result_queue, stop_event)
        else:
            coverage = _run_exhaustive_shard(worker_id, shard, result_queue, stop_event)
        result_queue.put(("done", worker_id, coverage))
    except Exception:  # pragma: no cover - surfaced in the parent as RuntimeError
        result_queue.put(("error", worker_id, traceback.format_exc()))


def shard_tester(shard: Any, strategy: Optional[ChoiceStrategy] = None) -> SystematicTester:
    """Build the tester a shard asks for: serial, or the population plane.

    A shard with ``population_size`` set runs through
    :class:`~repro.testing.population.PopulationTester` — same reports,
    compacted execution — with that bound on retained snapshots; others
    use the plain reset-and-reuse :class:`SystematicTester`.  Shared by
    the in-host process pool and the swarm drones.
    """
    population_size = getattr(shard, "population_size", None)
    if population_size is not None:
        return PopulationTester(
            shard.factory,
            strategy,
            max_permuted=shard.max_permuted,
            monitor_window=shard.monitor_window,
            reuse_instances=shard.reuse_instances,
            track_coverage=shard.track_coverage,
            population_size=population_size,
        )
    return SystematicTester(
        shard.factory,
        strategy,
        max_permuted=shard.max_permuted,
        monitor_window=shard.monitor_window,
        reuse_instances=shard.reuse_instances,
        track_coverage=shard.track_coverage,
    )


def _run_random_shard(
    worker_id: int, shard: _RandomShard, result_queue: Any, stop_event: Any
) -> Optional[CoverageMap]:
    # One strategy + one tester for the whole shard: the strategy re-derives
    # execution *i*'s RNG stream from ``(seed, i)`` at every
    # ``begin_execution``, so seeking per index reproduces exactly what a
    # per-index strategy would do, while the tester's reset-and-reuse path
    # keeps the built model instance warm across the slice.
    strategy = RandomStrategy(seed=shard.seed, max_executions=shard.max_executions)
    tester = shard_tester(shard, strategy)
    for index in shard.indices:
        if stop_event.is_set():
            break
        strategy.seek(index)
        strategy.begin_execution()
        record = tester.run_single(index)
        record.worker = worker_id
        result_queue.put(("record", worker_id, record))
        if shard.stop_at_first_violation and not record.ok:
            stop_event.set()
            break
    return tester.coverage if shard.track_coverage else None


def _run_exhaustive_shard(
    worker_id: int, shard: _ExhaustiveShard, result_queue: Any, stop_event: Any
) -> Optional[CoverageMap]:
    local_index = 0
    tester: Optional[SystematicTester] = None

    def coverage() -> Optional[CoverageMap]:
        if not shard.track_coverage or tester is None:
            return None
        return tester.coverage

    for prefix in shard.prefixes:
        if stop_event.is_set():
            break
        strategy = ExhaustiveStrategy(
            max_depth=shard.max_depth, max_executions=shard.max_executions, prefix=prefix
        )
        if tester is None:
            tester = shard_tester(shard, strategy)
        else:
            # Keep the warm model instance; only the subtree changes.
            tester.strategy = strategy
        while strategy.has_more_executions():
            if stop_event.is_set():
                return coverage()
            if not start_execution(strategy):
                break
            record = tester.run_single(local_index)
            record.worker = worker_id
            local_index += 1
            result_queue.put(("record", worker_id, record))
            if shard.stop_at_first_violation and not record.ok:
                stop_event.set()
                return coverage()
    return coverage()


# --------------------------------------------------------------------- #
# reports
# --------------------------------------------------------------------- #


@dataclass
class ReplayConfirmation:
    """The serial replay of one parallel-found counterexample."""

    trail: List[int]
    replayed: ExecutionRecord
    confirmed: bool


@dataclass
class ParallelReport(TestReport):
    """A :class:`TestReport` plus parallel-run bookkeeping."""

    workers: int = 0
    wall_time: float = 0.0
    partitions: List[Tuple[int, ...]] = field(default_factory=list)
    confirmations: List[ReplayConfirmation] = field(default_factory=list)
    #: How many workers delivered their final ``done`` payload (and with it
    #: their partial coverage map).  Early-stopped runs must still drain a
    #: ``done`` from every worker, or coverage would silently under-report
    #: relative to the serial tester — the aggregator asserts nothing, but
    #: tests pin ``completed_workers == workers``.
    completed_workers: int = 0

    @property
    def all_confirmed(self) -> bool:
        """True when every counterexample replayed to a violation serially."""
        return len(self.confirmations) == len(self.failing) and all(
            confirmation.confirmed for confirmation in self.confirmations
        )

    def summary(self) -> str:
        base = super().summary()
        return f"{base} [{self.workers} worker(s), {self.wall_time:.2f}s wall]"


def _violation_keys(violations: Sequence[Violation]) -> List[Tuple[float, str, str]]:
    return sorted((violation.time, violation.monitor, violation.message) for violation in violations)


# --------------------------------------------------------------------- #
# the parallel tester
# --------------------------------------------------------------------- #


class ParallelTester:
    """Shards a systematic-testing run across worker processes.

    ``scenario`` names a registered scenario (the portable way to describe
    the workload — workers rebuild it by name); alternatively pass
    ``harness_factory`` exactly as for :class:`SystematicTester`.

    ``track_coverage=True`` makes every worker feed the coverage plane;
    the per-shard cumulative maps are merged — the merge adds counts, so
    the result is independent of worker completion order — into
    ``report.coverage``.  A random sweep's parallel coverage equals the
    serial tester's map for the same seed and budget exactly (identical
    per-execution maps, order-independent merge); an exhaustive run's
    map covers every execution the workers actually performed, which can
    exceed the serially-truncated record list.

    >>> from repro.testing import RandomStrategy
    >>> report = ParallelTester(
    ...     "toy-closed-loop", scenario_overrides={"broken_ttf": True},
    ...     strategy=RandomStrategy(seed=0, max_executions=6),
    ...     workers=2, track_coverage=True).explore()
    >>> report.ok, report.all_confirmed
    (False, True)
    >>> sorted({region for _, _, region in report.coverage.pairs})
    ['R4:nominal', 'R5:safer']
    """

    def __init__(
        self,
        scenario: Optional[str] = None,
        *,
        harness_factory: Optional[HarnessFactory] = None,
        strategy: Optional[ChoiceStrategy] = None,
        workers: Optional[int] = None,
        max_permuted: int = 6,
        start_method: Optional[str] = None,
        scenario_overrides: Optional[dict] = None,
        monitor_window: int = 1,
        reuse_instances: bool = True,
        track_coverage: bool = False,
        population_size: Optional[int] = None,
    ) -> None:
        if (scenario is None) == (harness_factory is None):
            raise ValueError("pass exactly one of scenario= or harness_factory=")
        if monitor_window < 1:
            raise ValueError("monitor_window must be at least 1")
        if population_size is not None and not reuse_instances:
            raise ValueError(
                "population_size requires reuse_instances=True (the population "
                "plane shares one reused instance per worker)"
            )
        if scenario is not None:
            harness_factory = scenario_factory(scenario, **(scenario_overrides or {}))
        elif scenario_overrides:
            raise ValueError("scenario_overrides only applies with scenario=")
        self.harness_factory: HarnessFactory = harness_factory  # type: ignore[assignment]
        self.monitor_window = monitor_window
        self.reuse_instances = reuse_instances
        self.track_coverage = track_coverage
        self.population_size = population_size
        self._probe_tester: Optional[SystematicTester] = None
        self.strategy: ChoiceStrategy = strategy or RandomStrategy()
        if not isinstance(self.strategy, (RandomStrategy, ExhaustiveStrategy)):
            raise TypeError(
                "ParallelTester shards RandomStrategy and ExhaustiveStrategy runs; "
                "replay a single trail with SystematicTester.replay instead"
            )
        self.workers = max(1, workers if workers is not None else (multiprocessing.cpu_count() or 1))
        self.max_permuted = max_permuted
        if start_method is None:
            start_method = (
                "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
            )
        self._context = multiprocessing.get_context(start_method)

    # ------------------------------------------------------------------ #
    # sharding
    # ------------------------------------------------------------------ #
    def _random_shards(self, stop_at_first_violation: bool) -> List[_RandomShard]:
        assert isinstance(self.strategy, RandomStrategy)
        total = self.strategy.max_executions
        workers = min(self.workers, total)
        # Contiguous balanced blocks: worker w runs indices [bounds[w], bounds[w+1]).
        base, extra = divmod(total, workers)
        shards: List[_RandomShard] = []
        start = 0
        for worker in range(workers):
            size = base + (1 if worker < extra else 0)
            shards.append(
                _RandomShard(
                    factory=self.harness_factory,
                    seed=self.strategy.seed,
                    max_executions=total,
                    indices=tuple(range(start, start + size)),
                    max_permuted=self.max_permuted,
                    stop_at_first_violation=stop_at_first_violation,
                    monitor_window=self.monitor_window,
                    reuse_instances=self.reuse_instances,
                    track_coverage=self.track_coverage,
                    population_size=self.population_size,
                )
            )
            start += size
        return shards

    def _probe_option_counts(self, prefix: Tuple[int, ...]) -> List[int]:
        """Run one execution with ``prefix`` pinned; report the branching beyond it.

        All probes share one reset-and-reuse tester, so partitioning the
        choice tree costs one model build total rather than one per probe.
        """
        assert isinstance(self.strategy, ExhaustiveStrategy)
        strategy = ExhaustiveStrategy(max_depth=self.strategy.max_depth, prefix=prefix)
        if self._probe_tester is None:
            self._probe_tester = SystematicTester(
                self.harness_factory,
                strategy,
                max_permuted=self.max_permuted,
                monitor_window=self.monitor_window,
                reuse_instances=self.reuse_instances,
                # Probe records are discarded and re-enumerated by the
                # workers; counting their coverage would double-count.
                track_coverage=False,
            )
        else:
            self._probe_tester.strategy = strategy
        strategy.begin_execution()
        self._probe_tester.run_single(0)
        return strategy.option_counts()

    def partition_prefixes(self, target: Optional[int] = None, depth_cap: int = 4) -> List[Tuple[int, ...]]:
        """Split the choice tree into at least ``target`` disjoint subtrees.

        Breadth-first: probe a prefix (one execution along its all-zeros
        extension) to learn the branching factor at the next choice point,
        then replace the prefix by its children.  All executions sharing a
        prefix behave identically up to the next choice point, so siblings
        partition their parent exactly.  Probes cost one execution each
        and their records are discarded (workers re-enumerate them).
        """
        assert isinstance(self.strategy, ExhaustiveStrategy)
        target = target if target is not None else self.workers
        expandable: List[Tuple[int, ...]] = [()]
        leaves: List[Tuple[int, ...]] = []
        while expandable and len(expandable) + len(leaves) < target:
            prefix = expandable.pop(0)
            if len(prefix) >= depth_cap or len(prefix) + 1 >= self.strategy.max_depth:
                leaves.append(prefix)
                continue
            counts = self._probe_option_counts(prefix)
            if not counts:
                # No choice points beyond this prefix: a one-execution subtree.
                leaves.append(prefix)
            else:
                expandable.extend(prefix + (option,) for option in range(counts[0]))
        return leaves + expandable

    def _exhaustive_shards(self, stop_at_first_violation: bool) -> List[_ExhaustiveShard]:
        assert isinstance(self.strategy, ExhaustiveStrategy)
        prefixes = self.partition_prefixes()
        workers = min(self.workers, len(prefixes))
        assigned: List[List[Tuple[int, ...]]] = [[] for _ in range(workers)]
        for position, prefix in enumerate(prefixes):
            assigned[position % workers].append(prefix)
        return [
            _ExhaustiveShard(
                factory=self.harness_factory,
                prefixes=tuple(prefix_group),
                max_depth=self.strategy.max_depth,
                max_executions=self.strategy.max_executions,
                max_permuted=self.max_permuted,
                stop_at_first_violation=stop_at_first_violation,
                monitor_window=self.monitor_window,
                reuse_instances=self.reuse_instances,
                track_coverage=self.track_coverage,
                population_size=self.population_size,
            )
            for prefix_group in assigned
        ]

    # ------------------------------------------------------------------ #
    # exploration
    # ------------------------------------------------------------------ #
    def explore(
        self,
        stop_at_first_violation: bool = False,
        confirm_counterexamples: bool = True,
    ) -> ParallelReport:
        """Run the sharded exploration and aggregate the streamed records.

        With ``stop_at_first_violation`` the pool stops as soon as *a*
        counterexample arrives (not necessarily the one the serial tester
        would report first).  With ``confirm_counterexamples`` (default)
        every failing trail is replayed on the serial engine and the
        replay is attached to the report.
        """
        started = time.perf_counter()
        if isinstance(self.strategy, RandomStrategy):
            shards: Sequence[Any] = self._random_shards(stop_at_first_violation)
            partitions: List[Tuple[int, ...]] = []
        else:
            exhaustive_shards = self._exhaustive_shards(stop_at_first_violation)
            shards = exhaustive_shards
            partitions = [prefix for shard in exhaustive_shards for prefix in shard.prefixes]

        report = self._new_report(len(shards), partitions)
        self._execute(shards, report)

        self._finalise(report, stop_at_first_violation)
        if confirm_counterexamples:
            self.confirm(report)
        report.wall_time = time.perf_counter() - started
        return report

    def _new_report(self, workers: int, partitions: List[Tuple[int, ...]]) -> ParallelReport:
        """Report factory hook (the swarm facade substitutes its subclass)."""
        return ParallelReport(workers=workers, partitions=partitions)

    def _execute(self, shards: Sequence[Any], report: ParallelReport) -> None:
        """Run the shards and stream their records into ``report``.

        The base implementation uses an in-host process pool (or runs a
        single shard inline).  :class:`~repro.swarm.SwarmTester` overrides
        this hook to distribute the very same shards over a networked
        drone fleet instead.
        """
        if len(shards) == 1:
            # One shard: no process overhead, run it inline.
            self._run_inline(shards[0], report)
        else:
            self._run_pool(shards, report)

    def _run_inline(self, shard: Any, report: ParallelReport) -> None:
        sink = queue_module.Queue()
        stop_event = threading.Event()
        if isinstance(shard, _RandomShard):
            coverage = _run_random_shard(0, shard, sink, stop_event)
        else:
            coverage = _run_exhaustive_shard(0, shard, sink, stop_event)
        while not sink.empty():
            _, _, record = sink.get()
            report.executions.append(record)
        if coverage is not None:
            report.coverage.merge(coverage)
        report.completed_workers += 1

    def _run_pool(self, shards: Sequence[Any], report: ParallelReport) -> None:
        result_queue = self._context.Queue()
        stop_event = self._context.Event()
        processes = [
            self._context.Process(
                target=_worker_main,
                args=(worker_id, shard, result_queue, stop_event),
                daemon=True,
            )
            for worker_id, shard in enumerate(shards)
        ]
        for process in processes:
            process.start()
        finished = 0
        failure: Optional[str] = None

        def consume(kind: str, payload: Any) -> None:
            # One message-handling path for the live loop *and* the
            # post-mortem drain: an "error" drained after the pool died
            # must count the worker as finished and keep its traceback,
            # exactly as if it had arrived while the pool was healthy,
            # and a late "done" must still merge its partial coverage
            # (early-stopped runs rely on this to match serial coverage).
            nonlocal finished, failure
            if kind == "record":
                report.executions.append(payload)
            elif kind == "done":
                finished += 1
                report.completed_workers += 1
                if payload is not None:
                    report.coverage.merge(payload)
            else:  # "error"
                if failure is None:  # the first traceback is the root cause
                    failure = payload
                stop_event.set()
                finished += 1

        try:
            while finished < len(processes):
                try:
                    kind, _worker_id, payload = result_queue.get(timeout=_POLL_INTERVAL)
                except queue_module.Empty:
                    if any(process.is_alive() for process in processes):
                        continue
                    # Every worker is gone; drain what the feeder threads
                    # pushed before reporting the crash.  A short timeout
                    # (not get_nowait) gives a just-died worker's feeder
                    # pipe time to flush its final messages — otherwise a
                    # worker's own traceback can be lost in flight and
                    # masked by the generic pool-death message below.
                    try:
                        while True:
                            kind, _worker_id, payload = result_queue.get(timeout=_POLL_INTERVAL)
                            consume(kind, payload)
                    except queue_module.Empty:
                        pass
                    if finished < len(processes):
                        exit_codes = [process.exitcode for process in processes]
                        if failure is None:
                            failure = (
                                "worker pool died without reporting results "
                                f"(exit codes: {exit_codes})"
                            )
                        else:
                            # Prefer the worker's own traceback; the exit
                            # codes ride along as context.
                            failure += f"\n(worker pool exit codes: {exit_codes})"
                    break
                consume(kind, payload)
        finally:
            stop_event.set()
            for process in processes:
                process.join(timeout=10.0)
            for process in processes:
                if process.is_alive():  # pragma: no cover - stuck-worker safety net
                    process.terminate()
                    process.join(timeout=5.0)
        if failure is not None:
            raise RuntimeError(f"parallel exploration failed in a worker:\n{failure}")

    def _finalise(self, report: ParallelReport, stop_at_first_violation: bool) -> None:
        """Put streamed records into a deterministic order and reindex.

        Exhaustive runs are additionally truncated to the strategy's
        ``max_executions``: each subtree was enumerated under the same
        bound, and serial depth-first order is exactly ascending trail
        order (no trail is a strict prefix of another — executions that
        share leading choices behave identically up to their next choice
        point), so keeping the first ``max_executions`` sorted records
        reproduces the serial budget semantics.  Early-stopped runs are
        left untruncated: their execution set is already pruned and the
        counterexample that triggered the stop must survive.
        """
        if isinstance(self.strategy, RandomStrategy):
            report.executions.sort(key=lambda record: record.index)
            report.invalidate_caches()
            return
        report.executions.sort(key=lambda record: tuple(record.trail or ()))
        if not stop_at_first_violation:
            del report.executions[self.strategy.max_executions :]
        for position, record in enumerate(report.executions):
            record.index = position
        report.invalidate_caches()

    # ------------------------------------------------------------------ #
    # serial confirmation
    # ------------------------------------------------------------------ #
    def confirm(self, report: ParallelReport) -> bool:
        """Replay every counterexample trail on the serial engine.

        A counterexample is *confirmed* when its replay reproduces the
        same violation set (time, monitor, message).  Confirmations are
        recorded on the report; returns ``report.all_confirmed``.
        """
        serial = SystematicTester(
            self.harness_factory,
            max_permuted=self.max_permuted,
            monitor_window=self.monitor_window,
            reuse_instances=self.reuse_instances,
            track_coverage=False,  # confirmation replays must not add coverage
        )
        report.confirmations = []
        for record in report.failing:
            replayed = serial.replay(record.trail or [], index=record.index)
            confirmed = _violation_keys(replayed.violations) == _violation_keys(record.violations)
            report.confirmations.append(
                ReplayConfirmation(trail=list(record.trail or []), replayed=replayed, confirmed=confirmed)
            )
        return report.all_confirmed
