"""Abstractions of untrusted components for systematic testing.

"When performing systematic testing of the robotics software stack the
third-party (untrusted) components that are not implemented in SOTER are
replaced by their abstractions implemented in SOTER" (Section V of the
paper).  An abstraction over-approximates a component by publishing a
*nondeterministically chosen* value from a finite set every period; the
testing engine then explores the choices.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

from ..core.node import Node
from .strategies import ChoiceStrategy


class NondeterministicNode(Node):
    """A node whose outputs are chosen nondeterministically from finite menus.

    ``menus`` maps each published topic to the finite list of values the
    abstraction may publish.  The actual selection is delegated to the
    engine-wide :class:`ChoiceStrategy`, which is how the systematic tester
    controls and enumerates the behaviour.
    """

    def __init__(
        self,
        name: str,
        menus: Mapping[str, Sequence[Any]],
        period: float = 0.1,
        subscribes: Sequence[str] = (),
    ) -> None:
        if not menus:
            raise ValueError("a nondeterministic node needs at least one output menu")
        for topic, options in menus.items():
            if not options:
                raise ValueError(f"menu for topic {topic!r} must not be empty")
        super().__init__(
            name=name,
            subscribes=subscribes,
            publishes=tuple(menus.keys()),
            period=period,
        )
        self.menus = {topic: list(options) for topic, options in menus.items()}
        self.strategy: ChoiceStrategy | None = None
        self.choices_made = 0

    def bind_strategy(self, strategy: ChoiceStrategy) -> None:
        """Attach the strategy that resolves this node's choices."""
        self.strategy = strategy

    def reset(self) -> None:
        self.choices_made = 0

    def step(self, now: float, inputs: Mapping[str, Any]) -> Mapping[str, Any]:
        outputs = {}
        for topic, options in self.menus.items():
            if self.strategy is None:
                index = 0
            else:
                index = self.strategy.choose(len(options), label=f"{self.name}:{topic}")
            self.choices_made += 1
            outputs[topic] = options[index]
        return outputs


class AbstractEnvironment:
    """A nondeterministic environment: chooses input-topic values every sample.

    The operational semantics allows ENVIRONMENT-INPUT transitions at any
    time; for bounded exploration the tester samples them at a fixed period
    from finite menus, mirroring the bounded-asynchrony abstraction the
    paper's testing backend uses.
    """

    def __init__(self, menus: Mapping[str, Sequence[Any]], period: float = 0.1) -> None:
        if period <= 0.0:
            raise ValueError("environment period must be positive")
        for topic, options in menus.items():
            if not options:
                raise ValueError(f"menu for topic {topic!r} must not be empty")
        self.menus = {topic: list(options) for topic, options in menus.items()}
        self.period = period
        self.strategy: ChoiceStrategy | None = None
        self._next_time = 0.0
        # Dirty tracking for incremental snapshots (repro.core.resettable).
        self._delta_clock = 0
        self.delta_version = 0

    def bind_strategy(self, strategy: ChoiceStrategy) -> None:
        self.strategy = strategy

    def _touch(self) -> None:
        clock = self._delta_clock + 1
        self._delta_clock = clock
        self.delta_version = clock

    def reset(self) -> None:
        self._next_time = 0.0
        self._touch()

    def apply(self, engine, upcoming_time: float) -> None:
        """Inject chosen values for every input topic due before ``upcoming_time``."""
        advanced = False
        while self._next_time <= upcoming_time + 1e-12:
            for topic, options in self.menus.items():
                if self.strategy is None:
                    index = 0
                else:
                    index = self.strategy.choose(len(options), label=f"env:{topic}")
                engine.set_input(topic, options[index])
            self._next_time += self.period
            advanced = True
        if advanced:
            self._touch()

    # -- delta-snapshot hooks (see repro.core.resettable) --------------- #
    def capture_delta_state(self) -> float:
        """The injection clock is the environment's only mutable state."""
        return self._next_time

    def restore_delta_state(self, state: float) -> None:
        self._next_time = state
        self._touch()


def constant_environment(values: Mapping[str, Any], period: float = 0.1) -> AbstractEnvironment:
    """An environment that always publishes the same values (no real choice)."""
    return AbstractEnvironment({topic: [value] for topic, value in values.items()}, period=period)
