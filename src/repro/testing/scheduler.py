"""Bounded-asynchrony exploration of node interleavings.

A SOTER program is a multi-rate periodic system; the paper's testing
backend uses a bounded-asynchronous scheduler [27] so that only schedules
consistent with the periodic semantics are explored.  Concretely: the
calendar fixes *when* nodes fire, and the only scheduling freedom is the
*order* in which nodes that fire at the same instant are executed.  The
:class:`BoundedAsynchronyScheduler` enumerates those permutations through
the active :class:`~repro.testing.strategies.ChoiceStrategy`.
"""

from __future__ import annotations

from typing import List, Sequence

from .strategies import ChoiceStrategy


class BoundedAsynchronyScheduler:
    """Chooses the firing order of simultaneously-due nodes via a strategy."""

    def __init__(self, strategy: ChoiceStrategy, max_permuted: int = 6) -> None:
        if max_permuted < 1:
            raise ValueError("max_permuted must be at least 1")
        self.strategy = strategy
        # Permuting very large simultaneous sets explodes the search space;
        # beyond this size the scheduler keeps the default order.
        self.max_permuted = max_permuted
        self.orderings_chosen = 0

    def order(self, due: Sequence[str]) -> List[str]:
        """Return the execution order for the nodes due at the current instant."""
        remaining = list(due)
        if len(remaining) <= 1 or len(remaining) > self.max_permuted:
            return remaining
        ordered: List[str] = []
        while remaining:
            index = self.strategy.choose(len(remaining), label="schedule")
            ordered.append(remaining.pop(index))
            self.orderings_chosen += 1
        return ordered
