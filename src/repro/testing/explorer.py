"""The systematic testing engine: enumerate executions, check monitors.

This is the reproduction of the SOTER tool chain's "backend systematic
testing engine" (Section V): it executes the discrete model of the program
many times, each time resolving scheduling and abstraction choices through
a strategy (random or exhaustive), evaluates the safety monitors after
every discrete step, and reports any execution that violates them together
with the choice trail needed to replay it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.monitor import MonitorSuite, Violation
from ..core.semantics import SemanticsEngine
from ..core.system import RTASystem
from .abstractions import AbstractEnvironment, NondeterministicNode
from .scheduler import BoundedAsynchronyScheduler
from .strategies import ChoiceStrategy, ExhaustiveStrategy, RandomStrategy, ReplayStrategy, record_trail


@dataclass
class ModelInstance:
    """One freshly-built instance of the model under test.

    The factory passed to :class:`SystematicTester` must return a new
    instance per execution so that executions are independent (node local
    state is re-created, monitors start empty).
    """

    # Not a pytest test class, despite living in a module named "testing".
    __test__ = False

    system: RTASystem
    monitors: MonitorSuite
    environment: Optional[AbstractEnvironment] = None
    horizon: float = 5.0


#: Deprecated alias — the class was renamed to :class:`ModelInstance` so that
#: pytest stops trying to collect it as a test class.
TestHarness = ModelInstance


@dataclass
class ExecutionRecord:
    """Outcome of a single explored execution."""

    index: int
    steps: int
    violations: List[Violation]
    trail: Optional[List[int]] = None
    worker: Optional[int] = None

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class TestReport:
    """Aggregated result of a systematic testing run."""

    __test__ = False

    executions: List[ExecutionRecord] = field(default_factory=list)

    @property
    def execution_count(self) -> int:
        return len(self.executions)

    @property
    def failing(self) -> List[ExecutionRecord]:
        return [record for record in self.executions if not record.ok]

    @property
    def ok(self) -> bool:
        return not self.failing

    @property
    def total_violations(self) -> int:
        return sum(len(record.violations) for record in self.executions)

    def first_counterexample(self) -> Optional[ExecutionRecord]:
        failing = self.failing
        return failing[0] if failing else None

    def summary(self) -> str:
        status = "all executions safe" if self.ok else f"{len(self.failing)} failing execution(s)"
        return (
            f"systematic testing: {self.execution_count} execution(s) explored, {status}, "
            f"{self.total_violations} violation(s) recorded"
        )


class SystematicTester:
    """Explores executions of a SOTER model under a choice strategy.

    ``monitor_window`` batches monitor evaluation: instead of evaluating
    every monitor after each discrete step, the tester snapshots the
    monitored values and flushes them through the monitors' vectorised
    path every ``monitor_window`` steps (and at the end of the execution).
    The recorded violations — times, messages, order — are identical to
    the per-step path (``monitor_window=1``, the default); see
    :meth:`repro.core.monitor.MonitorSuite.flush`.  Windowing pays off
    when the scalar monitor checks are expensive (many obstacles, no
    warm :class:`~repro.geometry.ClearanceField`); with a warm cache the
    per-step path is already cheap, so the default stays scalar.
    """

    def __init__(
        self,
        harness_factory: Callable[[], ModelInstance],
        strategy: Optional[ChoiceStrategy] = None,
        max_permuted: int = 6,
        monitor_window: int = 1,
    ) -> None:
        if monitor_window < 1:
            raise ValueError("monitor_window must be at least 1")
        self.harness_factory = harness_factory
        self.strategy: ChoiceStrategy = strategy or RandomStrategy()
        self.max_permuted = max_permuted
        self.monitor_window = monitor_window

    # ------------------------------------------------------------------ #
    # single execution
    # ------------------------------------------------------------------ #
    def run_single(self, index: int) -> ExecutionRecord:
        """Run one execution under the current strategy state.

        The caller is responsible for having called
        ``strategy.begin_execution()`` first; :meth:`explore` does, and so
        do the parallel workers that reuse this method to run individual
        executions out of their serial order.
        """
        harness = self.harness_factory()
        scheduler = BoundedAsynchronyScheduler(self.strategy, max_permuted=self.max_permuted)
        self._bind_strategy(harness)
        engine = SemanticsEngine(harness.system)
        steps = 0
        windowed = self.monitor_window > 1
        violations: List[Violation] = []
        while True:
            next_time = engine.peek_next_time()
            if next_time is None or next_time > harness.horizon + 1e-12:
                break
            if harness.environment is not None:
                harness.environment.apply(engine, next_time)
            due = engine.calendar.due_nodes(next_time)
            engine.current_time = max(engine.current_time, next_time)
            engine.stats.time_progress_steps += 1
            engine.fire_due_nodes(due, order=scheduler.order(due))
            if windowed:
                harness.monitors.capture_all(engine)
                if harness.monitors.pending_samples >= self.monitor_window:
                    violations.extend(harness.monitors.flush())
            else:
                violations.extend(harness.monitors.check_all(engine))
            steps += 1
        if windowed:
            violations.extend(harness.monitors.flush())
        return ExecutionRecord(
            index=index,
            steps=steps,
            violations=violations,
            trail=record_trail(self.strategy),
        )

    # Backwards-compatible private name.
    _run_one = run_single

    def replay(self, trail: Sequence[int], index: int = 0) -> ExecutionRecord:
        """Deterministically re-execute a recorded counterexample trail."""
        strategy = ReplayStrategy(trail=list(trail))
        replayer = SystematicTester(
            self.harness_factory,
            strategy,
            max_permuted=self.max_permuted,
            monitor_window=self.monitor_window,
        )
        strategy.begin_execution()
        return replayer.run_single(index)

    def _bind_strategy(self, harness: ModelInstance) -> None:
        if harness.environment is not None:
            harness.environment.reset()
            harness.environment.bind_strategy(self.strategy)
        for node in harness.system.all_nodes():
            if isinstance(node, NondeterministicNode):
                node.bind_strategy(self.strategy)

    # ------------------------------------------------------------------ #
    # exploration loop
    # ------------------------------------------------------------------ #
    def explore(self, stop_at_first_violation: bool = False) -> TestReport:
        """Run executions until the strategy is exhausted (or a bug is found)."""
        report = TestReport()
        index = 0
        while self.strategy.has_more_executions():
            self.strategy.begin_execution()
            if isinstance(self.strategy, ExhaustiveStrategy) and self.strategy._exhausted:
                break
            record = self.run_single(index)
            report.executions.append(record)
            index += 1
            if stop_at_first_violation and not record.ok:
                break
        return report
