"""The systematic testing engine: enumerate executions, check monitors.

This is the reproduction of the SOTER tool chain's "backend systematic
testing engine" (Section V): it executes the discrete model of the program
many times, each time resolving scheduling and abstraction choices through
a strategy (random or exhaustive), evaluates the safety monitors after
every discrete step, and reports any execution that violates them together
with the choice trail needed to replay it.

Reset-and-reuse hot path
------------------------
Exploration throughput lives and dies by per-execution overhead.  With the
safety queries cached and batched (see :mod:`repro.geometry.clearance`),
the dominant remaining cost used to be *rebuilding the model* — every
execution re-ran the harness factory, reconstructing nodes, topics,
wiring, calendar, monitors, and a fresh semantics engine.  By default the
tester now builds the model instance **once**, resets it between
executions through the :class:`~repro.core.resettable.Resettable`
protocol, and reuses the engine, scheduler and violation buffer.
``reuse_instances=False`` restores the fresh-build-per-execution path; the
two are proven equivalent (identical trails, step counts and violation
sequences) in ``tests/testing/test_reset_reuse.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..core.monitor import MonitorSuite, Violation
from ..core.semantics import SemanticsEngine
from ..core.system import RTASystem
from .abstractions import AbstractEnvironment
from .coverage import CoverageMap, CoverageTracker
from .scheduler import BoundedAsynchronyScheduler
from .strategies import (
    ChoiceStrategy,
    ExhaustiveStrategy,
    RandomStrategy,
    ReplayStrategy,
    record_trail,
    start_execution,
)


@dataclass
class ModelInstance:
    """One built instance of the model under test.

    The factory passed to :class:`SystematicTester` must return an
    independent instance on every call (node local state re-created,
    monitors empty).  With the default reset-and-reuse path the tester
    calls the factory once and rewinds the instance between executions
    via :meth:`reset`; with ``reuse_instances=False`` it calls the
    factory once per execution.
    """

    # Not a pytest test class, despite living in a module named "testing".
    __test__ = False

    system: RTASystem
    monitors: MonitorSuite
    environment: Optional[AbstractEnvironment] = None
    horizon: float = 5.0

    def reset(self) -> None:
        """Restore the instance's own components to their just-built state.

        Rewinds node local state, recorded monitor violations, and the
        abstract environment's injection clock.  Engine-held execution
        state (time, topic board, calendar, OE map) belongs to whoever
        built the :class:`~repro.core.semantics.SemanticsEngine` and must
        be rewound with ``engine.reset()`` — the tester's reuse path does
        both (the node resets compose idempotently).
        """
        self.system.reset()
        self.monitors.reset()
        if self.environment is not None:
            self.environment.reset()

    @property
    def fault_plane(self) -> Optional[AbstractEnvironment]:
        """The instance's fault plane, if its environment is one.

        Scenario builders that declare a fault space wrap the real
        environment in a :class:`~repro.runtime.faults.FaultPlane`
        (duck-typing the environment interface), so the testers need no
        extra hook; this property recognises the wrapper by its
        ``fault_sites`` attribute so the coverage plane can pick up the
        fault axis.
        """
        if self.environment is not None and hasattr(self.environment, "fault_sites"):
            return self.environment
        return None


#: Deprecated alias — the class was renamed to :class:`ModelInstance` so that
#: pytest stops trying to collect it as a test class.
TestHarness = ModelInstance


@dataclass
class ExecutionRecord:
    """Outcome of a single explored execution.

    Attributes:
        index: the execution's position in the sweep (serial order).
        steps: discrete time-progress steps the execution took.
        violations: every monitor violation the execution triggered,
            in the order the monitors reported them.
        trail: the recorded choice sequence — replay it with
            :meth:`SystematicTester.replay` to re-execute this execution
            bit-identically.
        worker: the parallel worker that ran it (``None`` when serial).
    """

    index: int
    steps: int
    violations: List[Violation]
    trail: Optional[List[int]] = None
    worker: Optional[int] = None

    @property
    def ok(self) -> bool:
        """True when the execution triggered no monitor violation."""
        return not self.violations


@dataclass
class TestReport:
    """Aggregated result of a systematic testing run.

    The failing-execution list and violation totals are maintained
    incrementally: records appended to :attr:`executions` are folded into
    the caches on the next property access, so hot loops that poll
    ``report.ok`` after every execution stay O(new records) instead of
    rescanning the whole history.  Code that reorders or removes records
    (the parallel aggregator does both) must call
    :meth:`invalidate_caches` afterwards.

    :attr:`coverage` is the run's cumulative
    :class:`~repro.testing.coverage.CoverageMap` — the distinct
    ``(vehicle, mode, region)`` pairs the sweep visited with per-pair
    sample counts.  It is only populated when the tester tracks coverage
    (``track_coverage=True``, or automatically under
    :class:`~repro.testing.strategies.CoverageGuidedStrategy`).

    >>> from repro.core.monitor import Violation
    >>> report = TestReport()
    >>> report.add(ExecutionRecord(index=0, steps=4, violations=[]))
    >>> report.add(ExecutionRecord(
    ...     index=1, steps=4,
    ...     violations=[Violation(time=0.5, monitor="phi", message="boom")]))
    >>> report.ok, report.execution_count, report.total_violations
    (False, 2, 1)
    >>> report.first_counterexample().index
    1
    """

    __test__ = False

    executions: List[ExecutionRecord] = field(default_factory=list)
    coverage: CoverageMap = field(default_factory=CoverageMap)

    def __post_init__(self) -> None:
        self._failing_cache: List[ExecutionRecord] = []
        self._violation_total = 0
        self._scanned = 0

    # -- incremental bookkeeping ---------------------------------------- #
    def invalidate_caches(self) -> None:
        """Drop the incremental caches after out-of-band list surgery."""
        self._failing_cache = []
        self._violation_total = 0
        self._scanned = 0

    def _refresh(self) -> None:
        if self._scanned > len(self.executions):
            # Records were removed; the incremental prefix no longer exists.
            self.invalidate_caches()
        for record in self.executions[self._scanned :]:
            if not record.ok:
                self._failing_cache.append(record)
            self._violation_total += len(record.violations)
        self._scanned = len(self.executions)

    def add(self, record: ExecutionRecord) -> None:
        """Append a record (the preferred way to grow the report)."""
        self.executions.append(record)

    @property
    def execution_count(self) -> int:
        return len(self.executions)

    @property
    def failing(self) -> List[ExecutionRecord]:
        self._refresh()
        return list(self._failing_cache)

    @property
    def ok(self) -> bool:
        self._refresh()
        return not self._failing_cache

    @property
    def total_violations(self) -> int:
        self._refresh()
        return self._violation_total

    def first_counterexample(self) -> Optional[ExecutionRecord]:
        """The first failing record, without materialising the failing list."""
        self._refresh()
        return self._failing_cache[0] if self._failing_cache else None

    def summary(self) -> str:
        """One line: executions explored, failures, violations, coverage."""
        self._refresh()
        failing = len(self._failing_cache)
        status = "all executions safe" if not failing else f"{failing} failing execution(s)"
        line = (
            f"systematic testing: {self.execution_count} execution(s) explored, {status}, "
            f"{self.total_violations} violation(s) recorded"
        )
        if self.coverage:
            line += f", {len(self.coverage)} (vehicle, mode, region) pair(s) covered"
        return line


class SystematicTester:
    """Explores executions of a SOTER model under a choice strategy.

    ``reuse_instances`` (default) builds the model instance and semantics
    engine once and resets them between executions — the zero-rebuild hot
    path.  Pass ``reuse_instances=False`` to rebuild everything from the
    factory per execution (the original behaviour; kept as an escape hatch
    and as the oracle for the equivalence tests).

    ``monitor_window`` batches monitor evaluation: instead of evaluating
    every monitor after each discrete step, the tester snapshots the
    monitored values and flushes them through the monitors' vectorised
    path every ``monitor_window`` steps (and at the end of the execution).
    The recorded violations — times, messages, order — are identical to
    the per-step path (``monitor_window=1``, the default); see
    :meth:`repro.core.monitor.MonitorSuite.flush`.  Windowing pays off
    when the scalar monitor checks are expensive (many obstacles, no
    warm :class:`~repro.geometry.ClearanceField`); with a warm cache the
    per-step path is already cheap, so the default stays scalar.

    ``track_coverage`` attaches a
    :class:`~repro.testing.coverage.CoverageTracker` to the model
    instance's monitor suite: every execution's ``(vehicle, mode,
    region)`` occupancy is merged into the tester-level cumulative
    :attr:`coverage` (published as ``report.coverage`` by
    :meth:`explore`) and fed back to strategies that implement
    ``observe_coverage``.  The default ``None`` enables tracking exactly
    when the strategy asks for it (``strategy.wants_coverage``, e.g.
    :class:`~repro.testing.strategies.CoverageGuidedStrategy`), so the
    random/exhaustive hot paths pay nothing unless a caller opts in.

    >>> from repro.testing import RandomStrategy, scenario_factory
    >>> tester = SystematicTester(
    ...     scenario_factory("toy-closed-loop", broken_ttf=True),
    ...     RandomStrategy(seed=0, max_executions=10))
    >>> report = tester.explore(stop_at_first_violation=True)
    >>> report.ok
    False
    >>> replayed = tester.replay(report.first_counterexample().trail)
    >>> replayed.violations[0].monitor
    'phi_inv[toyRover]'
    """

    def __init__(
        self,
        harness_factory: Callable[[], ModelInstance],
        strategy: Optional[ChoiceStrategy] = None,
        max_permuted: int = 6,
        monitor_window: int = 1,
        reuse_instances: bool = True,
        track_coverage: Optional[bool] = None,
    ) -> None:
        if monitor_window < 1:
            raise ValueError("monitor_window must be at least 1")
        self.harness_factory = harness_factory
        self.strategy: ChoiceStrategy = strategy or RandomStrategy()
        self.max_permuted = max_permuted
        self.monitor_window = monitor_window
        self.reuse_instances = reuse_instances
        self._track_coverage_option = track_coverage
        #: Cumulative coverage of every execution this tester ran (reset at
        #: the start of each :meth:`explore`); empty unless tracking is on.
        self.coverage = CoverageMap()
        # Reused across executions on the hot path: the built instance,
        # its engine, the strategy-bound scheduler, and the violation
        # accumulation buffer (cleared, never reallocated).
        self._instance: Optional[ModelInstance] = None
        self._engine: Optional[SemanticsEngine] = None
        self._scheduler: Optional[BoundedAsynchronyScheduler] = None
        self._violation_buffer: List[Violation] = []
        self._tracker: Optional[CoverageTracker] = None

    @property
    def track_coverage(self) -> bool:
        """Whether executions feed the coverage plane.

        Explicit ``track_coverage=True/False`` wins; ``None`` defers to
        the current strategy's ``wants_coverage`` marker, so swapping a
        coverage-guided strategy in (as the parallel workers swap
        strategies per shard) enables tracking automatically.
        """
        if self._track_coverage_option is not None:
            return self._track_coverage_option
        return bool(getattr(self.strategy, "wants_coverage", False))

    # ------------------------------------------------------------------ #
    # instance lifecycle
    # ------------------------------------------------------------------ #
    def _acquire(self) -> tuple[ModelInstance, SemanticsEngine]:
        """The model instance + engine for the next execution.

        Fresh-build path: a new instance and engine per call.  Reuse path:
        build once, then rewind in place — the engine reset restores time,
        topics, calendar, statistics and node state; the monitor reset
        forgets recorded violations.
        """
        if not self.reuse_instances:
            harness = self.harness_factory()
            self._attach_tracker(harness)
            return harness, SemanticsEngine(harness.system)
        if self._instance is None:
            self._instance = self.harness_factory()
            self._engine = SemanticsEngine(self._instance.system)
            self._attach_tracker(self._instance)
        else:
            assert self._engine is not None
            self._engine.reset()
            # The instance reset clears the tracker's per-execution map
            # (via MonitorSuite.reset) while the tester-held cumulative
            # map stays warm — the coverage half of the reset contract.
            self._instance.reset()
            if self.track_coverage and self._tracker is None:
                self._attach_tracker(self._instance)
        return self._instance, self._engine  # type: ignore[return-value]

    def _attach_tracker(self, harness: ModelInstance) -> None:
        """Wire the coverage tracker into the instance's monitor suite.

        The tracker rides the suite's existing per-step/windowed sampling
        (it implements the monitor protocol but never reports a
        violation), so coverage costs nothing when tracking is off and
        no extra engine hooks when it is on.  The callers decide the
        cadence: once per fresh-built instance, once ever on the reuse
        path.
        """
        if not self.track_coverage:
            self._tracker = None
            return
        self._tracker = CoverageTracker(harness.system, fault_plane=harness.fault_plane)
        harness.monitors.add(self._tracker)

    def _order_scheduler(self) -> BoundedAsynchronyScheduler:
        """The bounded-asynchrony scheduler bound to the current strategy."""
        if self._scheduler is None or self._scheduler.strategy is not self.strategy:
            self._scheduler = BoundedAsynchronyScheduler(
                self.strategy, max_permuted=self.max_permuted
            )
        return self._scheduler

    # ------------------------------------------------------------------ #
    # single execution
    # ------------------------------------------------------------------ #
    def run_single(self, index: int) -> ExecutionRecord:
        """Run one execution under the current strategy state.

        The caller is responsible for having called
        ``strategy.begin_execution()`` first; :meth:`explore` does, and so
        do the parallel workers that reuse this method to run individual
        executions out of their serial order.
        """
        harness, engine = self._acquire()
        scheduler = self._order_scheduler()
        self._bind_strategy(harness)
        steps = 0
        windowed = self.monitor_window > 1
        violations = self._violation_buffer
        violations.clear()
        # Hoisted loop invariants: this is the innermost exploration loop.
        environment = harness.environment
        monitors = harness.monitors
        calendar = engine.calendar
        stats = engine.stats
        horizon = harness.horizon + 1e-12
        while True:
            pending = calendar.next_due()
            if pending is None:
                break
            next_time, due = pending
            if next_time > horizon:
                break
            if environment is not None:
                environment.apply(engine, next_time)
            if next_time > engine.current_time:
                engine.current_time = next_time
            stats.time_progress_steps += 1
            # The scheduler's order is a permutation of ``due`` by
            # construction, so the validation-free engine path applies.
            engine._fire_ordered(scheduler.order(due))
            if windowed:
                monitors.capture_all(engine)
                if monitors.pending_samples >= self.monitor_window:
                    violations.extend(monitors.flush())
            else:
                violations.extend(monitors.check_all(engine))
            steps += 1
        if windowed:
            violations.extend(monitors.flush())
        if self._tracker is not None:
            # Drain the per-execution map even when tracking is off for
            # this run (e.g. a replay on a tracker-equipped instance), so
            # stale samples never leak into a later execution's coverage.
            execution_coverage = self._tracker.take_execution_map()
            if self.track_coverage:
                self.coverage.merge(execution_coverage)
                observe = getattr(self.strategy, "observe_coverage", None)
                if observe is not None:
                    observe(execution_coverage)
        return ExecutionRecord(
            index=index,
            steps=steps,
            violations=list(violations),
            trail=record_trail(self.strategy),
        )

    # Backwards-compatible private name.
    _run_one = run_single

    def replay(self, trail: Sequence[int], index: int = 0) -> ExecutionRecord:
        """Deterministically re-execute a recorded counterexample trail.

        On the reuse path the replay runs on the tester's own (reset)
        instance — replaying a counterexample costs one reset, not a
        rebuild.  The exploration strategy is restored afterwards, and
        coverage tracking is suspended for the replay (whatever the
        ``track_coverage`` setting), so re-executing a counterexample
        never double-counts samples into an already-published map.
        """
        strategy = ReplayStrategy(trail=list(trail))
        saved_strategy, saved_scheduler = self.strategy, self._scheduler
        saved_tracking = self._track_coverage_option
        self.strategy = strategy
        self._scheduler = None
        self._track_coverage_option = False
        try:
            strategy.begin_execution()
            return self.run_single(index)
        finally:
            self.strategy = saved_strategy
            self._scheduler = saved_scheduler
            self._track_coverage_option = saved_tracking

    def _bind_strategy(self, harness: ModelInstance) -> None:
        if harness.environment is not None:
            harness.environment.reset()
            harness.environment.bind_strategy(self.strategy)
        # Duck-typed: NondeterministicNode and the fault plane's
        # ChoiceFaultInjector both expose bind_strategy; anything else
        # with the hook gets the strategy too.
        for node in harness.system.all_nodes():
            bind = getattr(node, "bind_strategy", None)
            if bind is not None:
                bind(self.strategy)

    # ------------------------------------------------------------------ #
    # exploration loop
    # ------------------------------------------------------------------ #
    def explore(self, stop_at_first_violation: bool = False) -> TestReport:
        """Run executions until the strategy is exhausted (or a bug is found).

        Args:
            stop_at_first_violation: end the sweep at the first failing
                execution instead of running the full budget.

        Returns:
            A :class:`TestReport` with one :class:`ExecutionRecord` per
            execution (serial order) and, when coverage is tracked, the
            sweep's cumulative :attr:`~TestReport.coverage` map.
        """
        report = TestReport()
        self.coverage = CoverageMap()  # cumulative over this sweep only
        index = 0
        while self.strategy.has_more_executions():
            if not start_execution(self.strategy):
                break
            record = self.run_single(index)
            report.add(record)
            index += 1
            if stop_at_first_violation and not record.ok:
                break
        report.coverage = self.coverage
        return report
