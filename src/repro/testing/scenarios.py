"""A registry of named, buildable systematic-testing scenarios.

Benchmarks, examples, the serial :class:`~repro.testing.SystematicTester`
and the parallel tester all need the same thing: a way to construct a
fresh :class:`~repro.testing.explorer.ModelInstance` per execution.  The
registry names those constructions so every consumer builds workloads
through one API — and so worker *processes* can rebuild a scenario from
its name alone instead of shipping unpicklable closures across the
process boundary.

Scenario builders must be deterministic (fix every seed): counterexample
replay and serial/parallel equivalence both rely on execution ``i`` of a
scenario behaving identically no matter where it runs.

The toy closed-loop scenario lives here because it only needs the core;
the drone-stack scenarios (surveillance, battery abort, faulty planner,
geofence) are registered by :mod:`repro.apps.scenarios`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from ..core.compiler import Program, SoterCompiler
from ..core.module import RTAModuleSpec
from ..core.monitor import InvariantMonitor, MonitorSuite, TopicSafetyMonitor
from ..core.node import FunctionNode
from ..core.specs import SafetySpec
from ..core.topics import Topic
from .abstractions import AbstractEnvironment
from .explorer import ModelInstance

ScenarioBuilder = Callable[..., ModelInstance]


@dataclass(frozen=True)
class Scenario:
    """A named, parameterisable construction of a model under test."""

    name: str
    builder: ScenarioBuilder
    description: str = ""
    tags: Tuple[str, ...] = ()

    def build(self, **overrides: Any) -> ModelInstance:
        """Construct a fresh model instance (keyword overrides reach the builder)."""
        return self.builder(**overrides)


_REGISTRY: Dict[str, Scenario] = {}
_BUILTINS_LOADED = False


def register_scenario(
    name: str, description: str = "", tags: Tuple[str, ...] = ()
) -> Callable[[ScenarioBuilder], ScenarioBuilder]:
    """Decorator: register ``builder`` under ``name`` (must be unique)."""

    def decorate(builder: ScenarioBuilder) -> ScenarioBuilder:
        if name in _REGISTRY:
            raise ValueError(f"scenario {name!r} is already registered")
        _REGISTRY[name] = Scenario(name=name, builder=builder, description=description, tags=tags)
        return builder

    return decorate


def _load_builtins() -> None:
    """Import the modules that register the built-in scenarios (idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    # The apps layer registers the drone-stack scenarios on import.  The
    # import is deferred so that `repro.testing` does not drag the whole
    # case study in unless scenarios are actually used.  The flag is only
    # set once the import succeeds, so a failing import surfaces its real
    # error on every lookup instead of a misleading KeyError.
    from ..apps import scenarios as _apps_scenarios  # noqa: F401

    _BUILTINS_LOADED = True


def scenario(name: str) -> Scenario:
    """Look up a registered scenario by name.

    Raises ``KeyError`` (listing the known names) for unknown scenarios.

    >>> scenario("toy-closed-loop").tags
    ('toy', 'core')
    """
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown scenario {name!r} (registered: {known})") from None


def build_scenario(name: str, **overrides: Any) -> ModelInstance:
    """Build a fresh model instance of a registered scenario.

    Keyword ``overrides`` are passed straight to the registered builder.

    >>> instance = build_scenario("toy-closed-loop", horizon=0.5)
    >>> instance.horizon
    0.5
    """
    return scenario(name).build(**overrides)


def registered_scenarios() -> List[str]:
    """Sorted names of every registered scenario.

    >>> "drone-surveillance" in registered_scenarios()
    True
    """
    _load_builtins()
    return sorted(_REGISTRY)


@dataclass(frozen=True)
class ScenarioFactory:
    """A picklable ``harness_factory``: rebuilds a scenario from its name.

    Worker processes carry this across the process boundary instead of a
    closure — under the ``spawn`` start method only the name and the
    (picklable) overrides travel; the scenario itself is rebuilt from the
    registry inside the worker.
    """

    name: str
    overrides: Tuple[Tuple[str, Any], ...] = ()

    def __call__(self) -> ModelInstance:
        return build_scenario(self.name, **dict(self.overrides))


def scenario_factory(name: str, **overrides: Any) -> ScenarioFactory:
    """A picklable zero-argument factory for a registered scenario.

    Unknown names fail eagerly (here, not in a worker process).

    >>> factory = scenario_factory("toy-closed-loop", broken_ttf=True)
    >>> factory().horizon
    2.0
    """
    scenario(name)  # fail fast on unknown names
    return ScenarioFactory(name=name, overrides=tuple(sorted(overrides.items())))


# --------------------------------------------------------------------- #
# built-in scenario: the 1-D toy closed loop
# --------------------------------------------------------------------- #

_TOY_CLIFF = 9.0
_TOY_MAX_SPEED = 1.0
_TOY_DELTA = 0.1


def _toy_forward(now: float, inputs: Any) -> Dict[str, float]:
    return {"cmd": _TOY_MAX_SPEED}


def _toy_retreat(now: float, inputs: Any) -> Dict[str, float]:
    return {"cmd": -_TOY_MAX_SPEED}


def _toy_safe(x: float) -> bool:
    return x < _TOY_CLIFF


def _toy_safer(x: float) -> bool:
    return x < _TOY_CLIFF - 2.0 * _TOY_DELTA * _TOY_MAX_SPEED - 0.2


def _toy_may_leave(x: float, horizon: float) -> bool:
    return x + _TOY_MAX_SPEED * horizon >= _TOY_CLIFF


@register_scenario(
    "toy-closed-loop",
    description=(
        "1-D rover guarding a cliff: an RTA module with exact reachability "
        "predicates, driven by a nondeterministic environment that can put "
        "the plant right at the switching boundary.  Safe by construction; "
        "pass broken_ttf=True for a variant whose decision module forgot "
        "the 2Δ lookahead and violates φ_Inv."
    ),
    tags=("toy", "core"),
)
def build_toy_closed_loop(
    broken_ttf: bool = False, horizon: float = 2.0, period: float = _TOY_DELTA
) -> ModelInstance:
    two_delta = 2.0 * _TOY_DELTA
    lookahead = 0.0 if broken_ttf else two_delta * _TOY_MAX_SPEED

    def ttf(x: float) -> bool:
        return x + lookahead >= _TOY_CLIFF

    module = RTAModuleSpec(
        name="toyRover",
        advanced=FunctionNode(
            "ac", _toy_forward, subscribes=("state",), publishes=("cmd",), period=0.05
        ),
        safe=FunctionNode(
            "sc", _toy_retreat, subscribes=("state",), publishes=("cmd",), period=0.05
        ),
        delta=_TOY_DELTA,
        safe_spec=SafetySpec("x<cliff", _toy_safe),
        safer_spec=SafetySpec("x<cliff-2Δ", _toy_safer),
        ttf=ttf,
        state_topics=("state",),
    )
    program = Program(
        name="toy-closed-loop",
        topics=[Topic("state", float), Topic("cmd", float, 0.0)],
        modules=[module],
    )
    system = SoterCompiler(strict=False).compile(program).system
    monitors = MonitorSuite(
        [InvariantMonitor(module=system.modules[0], may_leave_within=_toy_may_leave)]
    )
    environment = AbstractEnvironment(
        menus={"state": [2.0, _TOY_CLIFF - 0.6, _TOY_CLIFF - 0.25, _TOY_CLIFF - 0.05]},
        period=period,
    )
    return ModelInstance(system=system, monitors=monitors, environment=environment, horizon=horizon)
