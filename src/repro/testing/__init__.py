"""Systematic testing engine: strategies, abstractions, bounded-asynchrony exploration."""

from .abstractions import AbstractEnvironment, NondeterministicNode, constant_environment
from .explorer import ExecutionRecord, SystematicTester, TestHarness, TestReport
from .scheduler import BoundedAsynchronyScheduler
from .strategies import ChoiceStrategy, ExhaustiveStrategy, RandomStrategy, ReplayStrategy

__all__ = [
    "AbstractEnvironment",
    "NondeterministicNode",
    "constant_environment",
    "ExecutionRecord",
    "SystematicTester",
    "TestHarness",
    "TestReport",
    "BoundedAsynchronyScheduler",
    "ChoiceStrategy",
    "ExhaustiveStrategy",
    "RandomStrategy",
    "ReplayStrategy",
]
