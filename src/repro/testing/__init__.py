"""Systematic testing engine: strategies, abstractions, bounded-asynchrony exploration.

Serial exploration lives in :mod:`~repro.testing.explorer`; the
process-pool sharding of the same exploration lives in
:mod:`~repro.testing.parallel`; named workloads live in the scenario
registry (:mod:`~repro.testing.scenarios`).
"""

from .abstractions import AbstractEnvironment, NondeterministicNode, constant_environment
from .coverage import CoverageKey, CoverageMap, CoverageTracker, merge_maps, vehicle_label
from .explorer import (
    ExecutionRecord,
    ModelInstance,
    SystematicTester,
    TestHarness,
    TestReport,
)
from .parallel import ParallelReport, ParallelTester, ReplayConfirmation
from .population import PopulationStats, PopulationTester
from .resilience import ResilienceError, ResilienceReport, assert_rta_resilient
from .scenarios import (
    Scenario,
    ScenarioFactory,
    build_scenario,
    register_scenario,
    registered_scenarios,
    scenario,
    scenario_factory,
)
from .scheduler import BoundedAsynchronyScheduler
from .strategies import (
    ChoiceStrategy,
    CoverageGuidedStrategy,
    ExhaustiveStrategy,
    RandomStrategy,
    ReplayStrategy,
    record_trail,
    start_execution,
)

__all__ = [
    "AbstractEnvironment",
    "NondeterministicNode",
    "constant_environment",
    "CoverageKey",
    "CoverageMap",
    "CoverageTracker",
    "merge_maps",
    "vehicle_label",
    "ExecutionRecord",
    "ModelInstance",
    "SystematicTester",
    "TestHarness",
    "TestReport",
    "ParallelReport",
    "ParallelTester",
    "ReplayConfirmation",
    "PopulationStats",
    "PopulationTester",
    "ResilienceError",
    "ResilienceReport",
    "assert_rta_resilient",
    "Scenario",
    "ScenarioFactory",
    "build_scenario",
    "register_scenario",
    "registered_scenarios",
    "scenario",
    "scenario_factory",
    "BoundedAsynchronyScheduler",
    "ChoiceStrategy",
    "CoverageGuidedStrategy",
    "ExhaustiveStrategy",
    "RandomStrategy",
    "ReplayStrategy",
    "record_trail",
    "start_execution",
]
