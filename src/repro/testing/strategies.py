"""Choice strategies for the systematic testing engine.

The SOTER tool chain includes a backend systematic testing engine (built on
P/DRONA) that enumerates executions of the discrete model by controlling
the interleaving of nodes and the nondeterministic choices of abstracted
components.  A *strategy* decides, at every choice point, which of the
available options an execution takes:

* :class:`RandomStrategy` — seeded random testing;
* :class:`ExhaustiveStrategy` — depth-first enumeration of every choice
  combination up to a bound (model-checking style);
* :class:`ReplayStrategy` — replays a recorded choice sequence (used to
  re-execute a counterexample).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence, Tuple


class ChoiceStrategy(Protocol):
    """Resolves nondeterministic choices during one execution."""

    def choose(self, options: int, label: str = "") -> int:
        """Pick an option index in ``[0, options)``."""

    def begin_execution(self) -> None:
        """Called before each execution starts."""

    def has_more_executions(self) -> bool:
        """True if running another execution can explore new behaviour."""

    def execution_started(self) -> bool:
        """Begin the next execution; False when none is actually available.

        Some strategies only discover exhaustion *while* advancing to the
        next execution (the depth-first odometer of
        :class:`ExhaustiveStrategy` pops its last trail entry).  This is
        the public way to begin an execution and learn whether it is real,
        replacing callers poking at strategy internals.
        """

    @property
    def is_exhausted(self) -> bool:
        """True once the strategy has enumerated every execution it ever will."""


def start_execution(strategy: ChoiceStrategy) -> bool:
    """Begin the strategy's next execution; False if it turned out exhausted.

    Uses the public :meth:`ChoiceStrategy.execution_started` API when the
    strategy provides it and degrades gracefully for minimal third-party
    strategies that only implement ``begin_execution``.
    """
    started = getattr(strategy, "execution_started", None)
    if started is not None:
        return bool(started())
    strategy.begin_execution()
    return not bool(getattr(strategy, "is_exhausted", False))


@dataclass
class RandomStrategy:
    """Seeded random choices; every execution is independent.

    Each execution draws from its own RNG stream derived from
    ``(seed, execution index)``, so execution *i* makes identical choices
    no matter which worker runs it or in which order — the property the
    parallel tester relies on to match the serial tester bit-for-bit.
    The choices of the current execution are recorded so counterexamples
    found by random testing are replayable.
    """

    seed: int = 0
    max_executions: int = 100
    _rng: random.Random = field(init=False, repr=False)
    _executions: int = field(init=False, default=0)
    _trail: List[int] = field(init=False, default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.max_executions < 1:
            raise ValueError("max_executions must be at least 1")
        self._rng = random.Random(self.seed)

    def choose(self, options: int, label: str = "") -> int:
        if options <= 0:
            raise ValueError("a choice point needs at least one option")
        choice = self._rng.randrange(options)
        self._trail.append(choice)
        return choice

    def begin_execution(self) -> None:
        # Seed via a string so derivation goes through SHA-512 — deterministic
        # across processes (unlike object hashes) and decorrelated even for
        # adjacent (seed, index) pairs.
        self._rng = random.Random(f"{self.seed}:{self._executions}")
        self._trail = []
        self._executions += 1

    def seek(self, index: int) -> None:
        """Position the strategy so the next execution is number ``index``.

        Used by parallel workers to run a specific slice of the execution
        sweep while reproducing exactly the choices the serial tester
        would have made for those indices.
        """
        if index < 0:
            raise ValueError("execution index must be non-negative")
        self._executions = index

    def execution_started(self) -> bool:
        """Random executions always exist until the budget runs out."""
        self.begin_execution()
        return True

    @property
    def is_exhausted(self) -> bool:
        """Random testing never exhausts the behaviour space, only its budget."""
        return False

    def has_more_executions(self) -> bool:
        return self._executions < self.max_executions


@dataclass
class ExhaustiveStrategy:
    """Depth-first enumeration of all choice combinations up to a depth bound.

    Choices beyond ``max_depth`` per execution default to option 0, which
    bounds the search the way bounded model checking does.

    A non-empty ``prefix`` pins the first ``len(prefix)`` choices of every
    execution, restricting the enumeration to one subtree of the choice
    tree.  The first choice point of a model is reached deterministically
    (nothing nondeterministic happens before it), so fixing each possible
    first choice partitions the whole tree into disjoint subtrees — which
    is how the parallel tester shards exhaustive exploration.
    """

    max_depth: int = 32
    max_executions: int = 10_000
    prefix: Tuple[int, ...] = ()
    _trail: List[List[int]] = field(init=False, default_factory=list)
    _position: int = field(init=False, default=0)
    _executions: int = field(init=False, default=0)
    _exhausted: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.prefix = tuple(self.prefix)
        if len(self.prefix) >= self.max_depth:
            raise ValueError("prefix must be shorter than max_depth")

    def begin_execution(self) -> None:
        self._executions += 1
        self._position = 0
        # Advance the trail like an odometer: drop exhausted suffixes and
        # bump the last remaining choice.
        if self._trail:
            while self._trail and self._trail[-1][0] + 1 >= self._trail[-1][1]:
                self._trail.pop()
            if self._trail:
                self._trail[-1][0] += 1
            else:
                self._exhausted = True

    def choose(self, options: int, label: str = "") -> int:
        if options <= 0:
            raise ValueError("a choice point needs at least one option")
        if self._position < len(self.prefix):
            chosen = self.prefix[self._position]
            self._position += 1
            return min(chosen, options - 1)
        if self._position >= self.max_depth:
            return 0
        suffix_position = self._position - len(self.prefix)
        if suffix_position < len(self._trail):
            chosen = self._trail[suffix_position][0]
        else:
            self._trail.append([0, options])
            chosen = 0
        self._position += 1
        return min(chosen, options - 1)

    def execution_started(self) -> bool:
        """Advance the odometer; False when the subtree is fully enumerated."""
        self.begin_execution()
        return not self._exhausted

    @property
    def is_exhausted(self) -> bool:
        """True once every choice combination (under the prefix) was enumerated."""
        return self._exhausted

    def option_counts(self) -> List[int]:
        """Option counts observed at each non-prefix choice point of the last execution."""
        return [options for _, options in self._trail]

    def has_more_executions(self) -> bool:
        if self._executions == 0:
            return True
        if self._executions >= self.max_executions:
            return False
        if self._exhausted:
            return False
        # More executions are useful while some prefix can still be bumped.
        return any(choice + 1 < options for choice, options in self._trail)


@dataclass
class ReplayStrategy:
    """Replays a fixed choice sequence (e.g. a counterexample trail)."""

    trail: Sequence[int]
    _position: int = field(init=False, default=0)
    _executions: int = field(init=False, default=0)

    def begin_execution(self) -> None:
        self._executions += 1
        self._position = 0

    def choose(self, options: int, label: str = "") -> int:
        if self._position < len(self.trail):
            choice = self.trail[self._position]
        else:
            choice = 0
        self._position += 1
        return min(max(choice, 0), options - 1)

    def execution_started(self) -> bool:
        """The recorded trail supports exactly one (re-)execution."""
        already_done = self._executions >= 1
        self.begin_execution()
        return not already_done

    @property
    def is_exhausted(self) -> bool:
        """True once the single supported replay has begun (mirrors
        :meth:`has_more_executions` going False)."""
        return self._executions >= 1

    def has_more_executions(self) -> bool:
        return self._executions < 1


def record_trail(strategy: ChoiceStrategy) -> Optional[List[int]]:
    """Extract the replayable choice trail of the execution that just ran."""
    if isinstance(strategy, ExhaustiveStrategy):
        return list(strategy.prefix) + [choice for choice, _ in strategy._trail]
    if isinstance(strategy, RandomStrategy):
        return list(strategy._trail)
    if isinstance(strategy, ReplayStrategy):
        return list(strategy.trail)
    return None
