"""Choice strategies for the systematic testing engine.

The SOTER tool chain includes a backend systematic testing engine (built on
P/DRONA) that enumerates executions of the discrete model by controlling
the interleaving of nodes and the nondeterministic choices of abstracted
components.  A *strategy* decides, at every choice point, which of the
available options an execution takes:

* :class:`RandomStrategy` — seeded random testing;
* :class:`ExhaustiveStrategy` — depth-first enumeration of every choice
  combination up to a bound (model-checking style);
* :class:`ReplayStrategy` — replays a recorded choice sequence (used to
  re-execute a counterexample).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Protocol, Sequence


class ChoiceStrategy(Protocol):
    """Resolves nondeterministic choices during one execution."""

    def choose(self, options: int, label: str = "") -> int:
        """Pick an option index in ``[0, options)``."""

    def begin_execution(self) -> None:
        """Called before each execution starts."""

    def has_more_executions(self) -> bool:
        """True if running another execution can explore new behaviour."""


@dataclass
class RandomStrategy:
    """Seeded random choices; every execution is independent."""

    seed: int = 0
    max_executions: int = 100
    _rng: random.Random = field(init=False, repr=False)
    _executions: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.max_executions < 1:
            raise ValueError("max_executions must be at least 1")
        self._rng = random.Random(self.seed)

    def choose(self, options: int, label: str = "") -> int:
        if options <= 0:
            raise ValueError("a choice point needs at least one option")
        return self._rng.randrange(options)

    def begin_execution(self) -> None:
        self._executions += 1

    def has_more_executions(self) -> bool:
        return self._executions < self.max_executions


@dataclass
class ExhaustiveStrategy:
    """Depth-first enumeration of all choice combinations up to a depth bound.

    Choices beyond ``max_depth`` per execution default to option 0, which
    bounds the search the way bounded model checking does.
    """

    max_depth: int = 32
    max_executions: int = 10_000
    _trail: List[List[int]] = field(init=False, default_factory=list)
    _position: int = field(init=False, default=0)
    _executions: int = field(init=False, default=0)
    _exhausted: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")

    def begin_execution(self) -> None:
        self._executions += 1
        self._position = 0
        # Advance the trail like an odometer: drop exhausted suffixes and
        # bump the last remaining choice.
        if self._trail:
            while self._trail and self._trail[-1][0] + 1 >= self._trail[-1][1]:
                self._trail.pop()
            if self._trail:
                self._trail[-1][0] += 1
            else:
                self._exhausted = True

    def choose(self, options: int, label: str = "") -> int:
        if options <= 0:
            raise ValueError("a choice point needs at least one option")
        if self._position >= self.max_depth:
            return 0
        if self._position < len(self._trail):
            chosen = self._trail[self._position][0]
        else:
            self._trail.append([0, options])
            chosen = 0
        self._position += 1
        return min(chosen, options - 1)

    def has_more_executions(self) -> bool:
        if self._executions == 0:
            return True
        if self._executions >= self.max_executions:
            return False
        if self._exhausted:
            return False
        # More executions are useful while some prefix can still be bumped.
        return any(choice + 1 < options for choice, options in self._trail)


@dataclass
class ReplayStrategy:
    """Replays a fixed choice sequence (e.g. a counterexample trail)."""

    trail: Sequence[int]
    _position: int = field(init=False, default=0)
    _executions: int = field(init=False, default=0)

    def begin_execution(self) -> None:
        self._executions += 1
        self._position = 0

    def choose(self, options: int, label: str = "") -> int:
        if self._position < len(self.trail):
            choice = self.trail[self._position]
        else:
            choice = 0
        self._position += 1
        return min(max(choice, 0), options - 1)

    def has_more_executions(self) -> bool:
        return self._executions < 1


def record_trail(strategy: ChoiceStrategy) -> Optional[List[int]]:
    """Extract the current trail from an exhaustive strategy (None otherwise)."""
    if isinstance(strategy, ExhaustiveStrategy):
        return [choice for choice, _ in strategy._trail]
    return None
