"""Choice strategies for the systematic testing engine.

The SOTER tool chain includes a backend systematic testing engine (built on
P/DRONA) that enumerates executions of the discrete model by controlling
the interleaving of nodes and the nondeterministic choices of abstracted
components.  A *strategy* decides, at every choice point, which of the
available options an execution takes:

* :class:`RandomStrategy` — seeded random testing;
* :class:`ExhaustiveStrategy` — depth-first enumeration of every choice
  combination up to a bound (model-checking style);
* :class:`CoverageGuidedStrategy` — novelty-directed testing: biases
  choices toward unvisited ``(vehicle, mode, region)`` coverage pairs
  (see :mod:`repro.testing.coverage`), with a seeded epsilon-greedy
  random fallback;
* :class:`ReplayStrategy` — replays a recorded choice sequence (used to
  re-execute a counterexample).

The contract every strategy obeys (spelled out in
``docs/exploration.md``): ``choose`` fully determines an execution — the
model under test contains no other source of nondeterminism — so the
trail of choices recorded during an execution replays it bit-identically
through :class:`ReplayStrategy`, no matter which strategy produced it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Set, Tuple

from .coverage import CoverageKey, CoverageMap


class ChoiceStrategy(Protocol):
    """Resolves nondeterministic choices during one execution."""

    def choose(self, options: int, label: str = "") -> int:
        """Pick an option index in ``[0, options)``."""

    def begin_execution(self) -> None:
        """Called before each execution starts."""

    def has_more_executions(self) -> bool:
        """True if running another execution can explore new behaviour."""

    def execution_started(self) -> bool:
        """Begin the next execution; False when none is actually available.

        Some strategies only discover exhaustion *while* advancing to the
        next execution (the depth-first odometer of
        :class:`ExhaustiveStrategy` pops its last trail entry).  This is
        the public way to begin an execution and learn whether it is real,
        replacing callers poking at strategy internals.
        """

    @property
    def is_exhausted(self) -> bool:
        """True once the strategy has enumerated every execution it ever will."""


def start_execution(strategy: ChoiceStrategy) -> bool:
    """Begin the strategy's next execution; False if it turned out exhausted.

    Uses the public :meth:`ChoiceStrategy.execution_started` API when the
    strategy provides it and degrades gracefully for minimal third-party
    strategies that only implement ``begin_execution``.
    """
    started = getattr(strategy, "execution_started", None)
    if started is not None:
        return bool(started())
    strategy.begin_execution()
    return not bool(getattr(strategy, "is_exhausted", False))


@dataclass
class RandomStrategy:
    """Seeded random choices; every execution is independent.

    Each execution draws from its own RNG stream derived from
    ``(seed, execution index)``, so execution *i* makes identical choices
    no matter which worker runs it or in which order — the property the
    parallel tester relies on to match the serial tester bit-for-bit.
    The choices of the current execution are recorded so counterexamples
    found by random testing are replayable.

    >>> strategy = RandomStrategy(seed=42, max_executions=3)
    >>> strategy.execution_started()
    True
    >>> first = [strategy.choose(4) for _ in range(5)]
    >>> strategy.seek(0); strategy.execution_started()      # rewind to execution 0
    True
    >>> [strategy.choose(4) for _ in range(5)] == first     # same stream, same choices
    True
    """

    seed: int = 0
    max_executions: int = 100
    _rng: random.Random = field(init=False, repr=False)
    _executions: int = field(init=False, default=0)
    _trail: List[int] = field(init=False, default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.max_executions < 1:
            raise ValueError("max_executions must be at least 1")
        self._rng = random.Random(self.seed)

    def choose(self, options: int, label: str = "") -> int:
        if options <= 0:
            raise ValueError("a choice point needs at least one option")
        choice = self._rng.randrange(options)
        self._trail.append(choice)
        return choice

    def begin_execution(self) -> None:
        # Seed via a string so derivation goes through SHA-512 — deterministic
        # across processes (unlike object hashes) and decorrelated even for
        # adjacent (seed, index) pairs.
        self._rng = random.Random(f"{self.seed}:{self._executions}")
        self._trail = []
        self._executions += 1

    def seek(self, index: int) -> None:
        """Position the strategy so the next execution is number ``index``.

        Used by parallel workers to run a specific slice of the execution
        sweep while reproducing exactly the choices the serial tester
        would have made for those indices.
        """
        if index < 0:
            raise ValueError("execution index must be non-negative")
        self._executions = index

    def execution_started(self) -> bool:
        """Random executions always exist until the budget runs out."""
        self.begin_execution()
        return True

    @property
    def is_exhausted(self) -> bool:
        """Random testing never exhausts the behaviour space, only its budget."""
        return False

    def has_more_executions(self) -> bool:
        return self._executions < self.max_executions


@dataclass
class ExhaustiveStrategy:
    """Depth-first enumeration of all choice combinations up to a depth bound.

    Choices beyond ``max_depth`` per execution default to option 0, which
    bounds the search the way bounded model checking does.

    A non-empty ``prefix`` pins the first ``len(prefix)`` choices of every
    execution, restricting the enumeration to one subtree of the choice
    tree.  The first choice point of a model is reached deterministically
    (nothing nondeterministic happens before it), so fixing each possible
    first choice partitions the whole tree into disjoint subtrees — which
    is how the parallel tester shards exhaustive exploration.
    """

    max_depth: int = 32
    max_executions: int = 10_000
    prefix: Tuple[int, ...] = ()
    _trail: List[List[int]] = field(init=False, default_factory=list)
    _position: int = field(init=False, default=0)
    _executions: int = field(init=False, default=0)
    _exhausted: bool = field(init=False, default=False)

    def __post_init__(self) -> None:
        if self.max_depth < 1:
            raise ValueError("max_depth must be at least 1")
        self.prefix = tuple(self.prefix)
        if len(self.prefix) >= self.max_depth:
            raise ValueError("prefix must be shorter than max_depth")

    def begin_execution(self) -> None:
        self._executions += 1
        self._position = 0
        # Advance the trail like an odometer: drop exhausted suffixes and
        # bump the last remaining choice.
        if self._trail:
            while self._trail and self._trail[-1][0] + 1 >= self._trail[-1][1]:
                self._trail.pop()
            if self._trail:
                self._trail[-1][0] += 1
            else:
                self._exhausted = True

    def choose(self, options: int, label: str = "") -> int:
        if options <= 0:
            raise ValueError("a choice point needs at least one option")
        if self._position < len(self.prefix):
            chosen = self.prefix[self._position]
            self._position += 1
            return min(chosen, options - 1)
        if self._position >= self.max_depth:
            return 0
        suffix_position = self._position - len(self.prefix)
        if suffix_position < len(self._trail):
            chosen = self._trail[suffix_position][0]
        else:
            self._trail.append([0, options])
            chosen = 0
        self._position += 1
        return min(chosen, options - 1)

    def execution_started(self) -> bool:
        """Advance the odometer; False when the subtree is fully enumerated."""
        self.begin_execution()
        return not self._exhausted

    @property
    def is_exhausted(self) -> bool:
        """True once every choice combination (under the prefix) was enumerated."""
        return self._exhausted

    def option_counts(self) -> List[int]:
        """Option counts observed at each non-prefix choice point of the last execution."""
        return [options for _, options in self._trail]

    def has_more_executions(self) -> bool:
        if self._executions == 0:
            return True
        if self._executions >= self.max_executions:
            return False
        if self._exhausted:
            return False
        # More executions are useful while some prefix can still be bumped.
        return any(choice + 1 < options for choice, options in self._trail)


#: Identity of one choice point within an execution: its ordinal position
#: in the choice sequence plus the label the caller passed to ``choose``.
#: Scenario structure is deterministic up to the choices themselves, so the
#: same position+label names "the same decision" across executions.
ChoicePoint = Tuple[int, str]


@dataclass
class CoverageGuidedStrategy:
    """Biases choices toward unvisited ``(vehicle, mode, region)`` pairs.

    The strategy closes the loop between exploration and the coverage
    plane (:mod:`repro.testing.coverage`): after every execution the
    tester hands it the execution's :class:`CoverageMap` through
    :meth:`observe_coverage`; the strategy credits the choices of that
    trail with the *novelty* they bought (how many never-seen pairs the
    execution visited), keeps novelty-producing trails as **elites**,
    and merges the map into its cumulative view.  Each execution then
    runs in one of two modes:

    * **mutation** (once elites exist, ``mutation_rate`` of executions):
      replay an elite trail up to a chosen position, take the
      least-explored option there instead, and continue epsilon-greedy —
      the move that composes rare choices into rare *sequences* (reach
      the interesting mode first, then probe every region from it);
    * **sweep** (otherwise): epsilon-greedy per choice point — untried
      options first (systematically sweeping each menu instead of
      re-drawing known values), then the best novelty-credit-per-visit
      score plus a UCB exploration bonus; with probability ``epsilon``
      fall back to the seeded per-execution RNG stream.

    Everything is derived from ``(seed, execution index)`` streams, so a
    run is fully deterministic, exactly like :class:`RandomStrategy`.
    Every execution records its trail, so counterexamples replay through
    :class:`ReplayStrategy` bit-identically — same trail ⇒ same
    execution — regardless of the scoring history that produced them.

    >>> strategy = CoverageGuidedStrategy(seed=7, max_executions=2)
    >>> strategy.execution_started()
    True
    >>> 0 <= strategy.choose(4, label="env:pos") < 4
    True
    >>> strategy.is_exhausted
    False
    """

    seed: int = 0
    max_executions: int = 100
    epsilon: float = 0.1
    #: Weight of the UCB-style exploration bonus: rarely-taken options are
    #: revisited even after their first try.  0 disables the bonus.
    exploration: float = 0.5
    #: Fraction of executions spent mutating an elite (novelty-producing)
    #: trail once at least one exists.  0 disables elite mutation.
    mutation_rate: float = 0.2
    #: How many elite trails are kept (the most novelty-productive win).
    max_elites: int = 8
    #: Marker the tester reads to auto-enable coverage tracking.
    wants_coverage = True
    _rng: random.Random = field(init=False, repr=False)
    _executions: int = field(init=False, default=0)
    _trail: List[int] = field(init=False, default_factory=list, repr=False)
    _position: int = field(init=False, default=0)
    # (position, label, option) -> times taken / novelty credit earned.
    _taken: Dict[Tuple[int, str, int], int] = field(init=False, default_factory=dict, repr=False)
    _credit: Dict[Tuple[int, str, int], float] = field(init=False, default_factory=dict, repr=False)
    _pending: Set[Tuple[int, str, int]] = field(init=False, default_factory=set, repr=False)
    # Elite pool: (gain, trail) of executions that discovered new pairs.
    _elites: List[Tuple[float, List[int]]] = field(init=False, default_factory=list, repr=False)
    # Mutation plan of the current execution: the elite trail to follow and
    # the position at which to deviate (None = plain sweep execution).
    _elite_trail: Optional[List[int]] = field(init=False, default=None, repr=False)
    _mutate_at: int = field(init=False, default=-1, repr=False)
    coverage: CoverageMap = field(init=False, default_factory=CoverageMap)

    def __post_init__(self) -> None:
        if self.max_executions < 1:
            raise ValueError("max_executions must be at least 1")
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be in [0, 1]")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------ #
    # choosing
    # ------------------------------------------------------------------ #
    def choose(self, options: int, label: str = "") -> int:
        if options <= 0:
            raise ValueError("a choice point needs at least one option")
        point: ChoicePoint = (self._position, label)
        if options == 1:
            choice = 0
        elif self._elite_trail is not None and self._position < self._mutate_at:
            # Mutation mode, prefix: retrace the elite up to the deviation.
            if self._position < len(self._elite_trail):
                choice = min(self._elite_trail[self._position], options - 1)
            else:
                choice = self._greedy(point, options)
        elif self._elite_trail is not None and self._position == self._mutate_at:
            # Mutation mode, deviation: probe the least-explored option.
            choice = self._least_taken(point, options)
        elif self._rng.random() < self.epsilon:
            choice = self._rng.randrange(options)  # the seeded random fallback
        else:
            choice = self._greedy(point, options)
        key = (point[0], point[1], choice)
        self._taken[key] = self._taken.get(key, 0) + 1
        self._pending.add(key)
        self._trail.append(choice)
        self._position += 1
        return choice

    def _least_taken(self, point: ChoicePoint, options: int) -> int:
        """The option visited least at this point (RNG tie-breaks)."""
        position, label = point
        fewest = None
        best: List[int] = []
        for option in range(options):
            visits = self._taken.get((position, label, option), 0)
            if fewest is None or visits < fewest:
                fewest, best = visits, [option]
            elif visits == fewest:
                best.append(option)
        return best[self._rng.randrange(len(best))]

    def _greedy(self, point: ChoicePoint, options: int) -> int:
        """Untried options first, then best score, RNG tie-breaks.

        The score is novelty credit per visit plus a UCB-style bonus
        ``exploration * sqrt(ln(total) / visits)``: productive options
        are exploited, but rarely-taken ones keep being revisited — the
        mixture that composes rare choices into rare *sequences*.
        """
        position, label = point
        untried = [
            option for option in range(options) if (position, label, option) not in self._taken
        ]
        if untried:
            return untried[self._rng.randrange(len(untried))]
        total = sum(self._taken[(position, label, option)] for option in range(options))
        log_total = math.log(total + 1.0)
        best_score = None
        best: List[int] = []
        for option in range(options):
            key = (position, label, option)
            visits = self._taken[key]
            score = self._credit.get(key, 0.0) / visits
            score += self.exploration * math.sqrt(log_total / visits)
            if best_score is None or score > best_score:
                best_score, best = score, [option]
            elif score == best_score:
                best.append(option)
        return best[self._rng.randrange(len(best))]

    # ------------------------------------------------------------------ #
    # the coverage feedback loop
    # ------------------------------------------------------------------ #
    def observe_coverage(self, execution_map: CoverageMap) -> None:
        """Credit the last execution's choices with the novelty they bought.

        Called by the tester after each execution with that execution's
        map.  Novelty is the number of pairs never seen before plus the
        residual :meth:`~repro.testing.coverage.CoverageMap.novelty` of
        the pairs it revisited, so choices keep earning (diminishing)
        credit for reaching rare pairs even after first discovery.
        """
        fresh = execution_map.new_pairs_against(self.coverage)
        gained = float(len(fresh))
        gained += sum(
            self.coverage.novelty(key) for key in execution_map.counts if key not in fresh
        )
        for key in self._pending:
            self._credit[key] = self._credit.get(key, 0.0) + gained
        self._pending.clear()
        if fresh:
            # The trail discovered genuinely new pairs: it joins the elite
            # pool that mutation executions deviate from.
            self._elites.append((float(len(fresh)), list(self._trail)))
            self._elites.sort(key=lambda elite: -elite[0])
            del self._elites[self.max_elites :]
        self.coverage.merge(execution_map)

    # ------------------------------------------------------------------ #
    # the execution lifecycle (same shape as RandomStrategy)
    # ------------------------------------------------------------------ #
    def begin_execution(self) -> None:
        # Same derivation as RandomStrategy: a per-execution stream seeded
        # by (seed, index) through string hashing, deterministic across
        # processes and decorrelated for adjacent indices.
        self._rng = random.Random(f"{self.seed}:{self._executions}")
        self._trail = []
        self._position = 0
        self._pending = set()
        self._executions += 1
        # Decide this execution's mode: mutate an elite or sweep.
        self._elite_trail = None
        self._mutate_at = -1
        if self._elites and self.mutation_rate > 0.0 and self._rng.random() < self.mutation_rate:
            _, trail = self._elites[self._rng.randrange(len(self._elites))]
            if trail:
                self._elite_trail = trail
                self._mutate_at = self._rng.randrange(len(trail))

    def execution_started(self) -> bool:
        """Guided executions always exist until the budget runs out."""
        self.begin_execution()
        return True

    @property
    def is_exhausted(self) -> bool:
        """Novelty search never exhausts the behaviour space, only its budget."""
        return False

    def has_more_executions(self) -> bool:
        return self._executions < self.max_executions


@dataclass
class ReplayStrategy:
    """Replays a fixed choice sequence (e.g. a counterexample trail).

    Choices beyond the recorded trail default to option 0, and
    out-of-range recorded choices clamp into ``[0, options)`` — a trail
    recorded on one model replays safely on a slightly different one.

    >>> strategy = ReplayStrategy(trail=[2, 0, 1])
    >>> strategy.execution_started()
    True
    >>> [strategy.choose(3) for _ in range(4)]
    [2, 0, 1, 0]
    >>> strategy.has_more_executions()      # exactly one (re-)execution
    False
    """

    trail: Sequence[int]
    _position: int = field(init=False, default=0)
    _executions: int = field(init=False, default=0)

    def begin_execution(self) -> None:
        self._executions += 1
        self._position = 0

    def choose(self, options: int, label: str = "") -> int:
        if self._position < len(self.trail):
            choice = self.trail[self._position]
        else:
            choice = 0
        self._position += 1
        return min(max(choice, 0), options - 1)

    def execution_started(self) -> bool:
        """The recorded trail supports exactly one (re-)execution."""
        already_done = self._executions >= 1
        self.begin_execution()
        return not already_done

    @property
    def is_exhausted(self) -> bool:
        """True once the single supported replay has begun (mirrors
        :meth:`has_more_executions` going False)."""
        return self._executions >= 1

    def has_more_executions(self) -> bool:
        return self._executions < 1


def record_trail(strategy: ChoiceStrategy) -> Optional[List[int]]:
    """Extract the replayable choice trail of the execution that just ran."""
    if isinstance(strategy, ExhaustiveStrategy):
        return list(strategy.prefix) + [choice for choice, _ in strategy._trail]
    if isinstance(strategy, (RandomStrategy, CoverageGuidedStrategy)):
        return list(strategy._trail)
    if isinstance(strategy, ReplayStrategy):
        return list(strategy.trail)
    return None
