"""The mode/region coverage plane of the systematic testing engine.

Random and exhaustive exploration (see :mod:`repro.testing.strategies`)
answer *how* to resolve nondeterministic choices but not *which executions
are worth running next*.  The coverage plane makes that question
answerable: it observes, at every monitor sample of every execution, which
``(vehicle, dm_mode, region)`` triples the protected system occupied —
``dm_mode`` is the decision module's :class:`~repro.core.decision.Mode`
and ``region`` the observable operating region of Figure 10
(:func:`~repro.core.regions.classify_region`) — and accumulates them in a
:class:`CoverageMap`.

Three consumers build on it:

* :class:`~repro.testing.explorer.SystematicTester` (with
  ``track_coverage=True``) attaches a :class:`CoverageTracker` to the
  model instance's monitor suite, merges the per-execution maps into its
  cumulative :attr:`~repro.testing.explorer.SystematicTester.coverage`,
  and publishes the result as
  :attr:`~repro.testing.explorer.TestReport.coverage`;
* :class:`~repro.testing.parallel.ParallelTester` merges the per-shard
  cumulative maps — the merge adds counts, so it is associative,
  commutative and independent of worker completion order;
* :class:`~repro.testing.strategies.CoverageGuidedStrategy` receives each
  execution's map through ``observe_coverage`` and biases future choices
  toward the pairs the sweep has not visited yet.

Everything here is plain-data and picklable: maps cross process
boundaries with the parallel tester's result queue.

>>> a, b = CoverageMap(), CoverageMap()
>>> a.record("drone0", "AC", "R4:nominal")
>>> b.record("drone0", "AC", "R4:nominal")
>>> b.record("drone1", "SC", "R3:switching", count=2)
>>> merged = a.copy().merge(b)
>>> merged.total_samples, len(merged)
(4, 2)
>>> sorted(merged.pairs) == sorted(b.copy().merge(a).pairs)  # commutative
True
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Set, Tuple

from ..core.decision import DecisionModule
from ..core.module import RTAModuleSpec
from ..core.monitor import MonitorResult
from ..core.regions import classify_region
from ..core.semantics import SemanticsEngine

#: One occupancy key: (vehicle label, DM mode value, Region value).  Plain
#: strings, so keys pickle cheaply and render directly in tables.
CoverageKey = Tuple[str, str, str]


def vehicle_label(module_name: str) -> str:
    """The vehicle a namespaced module belongs to (for display grouping).

    Fleet compositions prefix every module name with the vehicle's topic
    namespace (``drone0/SafeMotionPrimitive``); the label is that prefix.
    Unprefixed (single-vehicle) modules are labelled by their own name.
    Coverage keys use the *full* module name (one vehicle may protect
    several modules — motion primitive and battery — whose modes and
    regions must not be conflated); this helper groups keys by vehicle
    when summarising fleets.

    >>> vehicle_label("drone1/SafeMotionPrimitive")
    'drone1'
    >>> vehicle_label("SafeMotionPrimitive")
    'SafeMotionPrimitive'
    """
    prefix, separator, _ = module_name.partition("/")
    return prefix if separator else module_name


@dataclass
class CoverageMap:
    """Occupancy counts over ``(vehicle, dm_mode, region)`` triples.

    The map is a plain counter: :meth:`record` adds samples,
    :meth:`merge` adds another map's counts into this one.  Because
    merging adds non-negative integers, it is associative, commutative
    and order-independent — the parallel tester relies on that to
    aggregate shard maps in whatever order workers finish
    (``tests/testing/test_coverage.py`` proves the laws).

    >>> cm = CoverageMap()
    >>> cm.record("drone0", "AC", "R4:nominal")
    >>> cm.record("drone0", "SC", "R3:switching", count=3)
    >>> len(cm), cm.total_samples
    (2, 4)
    >>> cm.novelty(("drone0", "AC", "R4:nominal"))
    0.5
    """

    counts: Counter = field(default_factory=Counter)

    # -- growing the map ------------------------------------------------- #
    def record(self, vehicle: str, mode: str, region: str, count: int = 1) -> None:
        """Add ``count`` samples of one ``(vehicle, mode, region)`` triple."""
        self.counts[(vehicle, mode, region)] += count

    def merge(self, other: "CoverageMap") -> "CoverageMap":
        """Fold ``other``'s counts into this map (in place); returns ``self``.

        ``Counter.update`` adds counts, so ``a.merge(b)`` and
        ``b.merge(a)`` hold the same counts afterwards, and merging many
        maps gives the same result in any order.
        """
        self.counts.update(other.counts)
        return self

    def copy(self) -> "CoverageMap":
        """An independent copy (mutating it leaves this map untouched)."""
        return CoverageMap(counts=Counter(self.counts))

    def clear(self) -> None:
        """Forget every recorded sample."""
        self.counts.clear()

    # -- reading the map -------------------------------------------------- #
    @property
    def pairs(self) -> Set[CoverageKey]:
        """The distinct ``(vehicle, mode, region)`` triples visited so far."""
        return set(self.counts)

    @property
    def total_samples(self) -> int:
        """Total number of recorded samples across all triples."""
        return self.counts.total()

    def __len__(self) -> int:
        return len(self.counts)

    def __bool__(self) -> bool:
        return bool(self.counts)

    def new_pairs_against(self, other: "CoverageMap") -> Set[CoverageKey]:
        """Triples this map visits that ``other`` has never seen."""
        return {key for key in self.counts if key not in other.counts}

    def novelty(self, key: CoverageKey) -> float:
        """How novel one triple is under this map: ``1 / (1 + visits)``.

        1.0 for a never-visited triple, decaying toward 0 as the triple
        saturates.  :class:`~repro.testing.strategies.CoverageGuidedStrategy`
        scores candidate choices with this.
        """
        return 1.0 / (1.0 + self.counts.get(key, 0))

    def table(self) -> str:
        """A small aligned occupancy table (vehicle / mode / region / samples)."""
        if not self.counts:
            return "coverage: <no samples>"
        rows = sorted(self.counts.items())
        lines = [f"coverage: {len(rows)} distinct (vehicle, mode, region) pair(s)"]
        width = max(len(vehicle) for (vehicle, _, _), _ in rows)
        for (vehicle, mode, region), count in rows:
            lines.append(f"  {vehicle:<{width}}  {mode:<2}  {region:<13}  {count:>6} sample(s)")
        return "\n".join(lines)


def merge_maps(maps: Iterable[Optional["CoverageMap"]]) -> CoverageMap:
    """Merge any number of maps (``None`` entries are skipped) into a new one."""
    merged = CoverageMap()
    for item in maps:
        if item is not None:
            merged.merge(item)
    return merged


@dataclass
class _TrackedModule:
    """One RTA module's coverage feed: where to read, how to classify."""

    vehicle: str
    spec: RTAModuleSpec
    decision: DecisionModule
    state_topic: str


class CoverageTracker:
    """Feeds a per-execution :class:`CoverageMap` from monitor samples.

    The tracker implements the monitor protocol
    (``check``/``capture``/``flush``/``reset``, plus an always-empty
    ``result``) so the systematic tester can drop it into the model
    instance's existing :class:`~repro.core.monitor.MonitorSuite`: it is
    sampled at exactly the instants the safety monitors are — the
    per-step path calls :meth:`check`, the windowed path
    :meth:`capture` — but it never reports a violation, so attaching it
    cannot change any exploration verdict.

    Classification is cheap by construction: ``classify_region`` asks the
    module's φ_safe/φ_safer/``ttf_2Δ`` predicates, which all route
    through the workspace's warm
    :class:`~repro.geometry.ClearanceField` on the cached query plane.

    ``reset()`` clears only the per-execution map — the *cumulative* map
    lives with whoever owns the tracker (the tester), which is how
    ``reuse_instances`` keeps cumulative coverage warm across in-place
    instance resets.
    """

    def __init__(self, system: Any, name: str = "coverage", fault_plane: Any = None) -> None:
        self.name = name
        self.result = MonitorResult(name=name)  # stays empty: never a violation
        # The "vehicle" coordinate is the full (namespace-prefixed) module
        # name: in fleets that is "drone<i>/<Module>" — vehicle-qualified
        # by construction — and one vehicle's motion-primitive and battery
        # planes stay distinguishable.
        self._modules: List[_TrackedModule] = [
            _TrackedModule(
                vehicle=module.name,
                spec=module.spec,
                decision=module.decision,
                state_topic=module.spec.state_topics[0],
            )
            for module in getattr(system, "modules", [])
        ]
        # The fault axis: every fault site of the scenario's FaultPlane
        # (node injectors and topic gate states) exposes
        # ``coverage_sample(now)`` returning a (fault:<site>, kind, window)
        # key — or None outside/ahead of a decided window.  Recording
        # those keys alongside the mode/region triples lets the
        # coverage-guided strategy steer *into* fault activations the
        # same way it steers into rare modes.
        self._fault_sites: List[Any] = list(getattr(fault_plane, "fault_sites", ()) or ())
        self._execution = CoverageMap()

    # -- the monitor protocol -------------------------------------------- #
    def check(self, engine: SemanticsEngine) -> None:
        """Record one sample per tracked module; never returns a violation."""
        self._sample(engine)
        return None

    def capture(self, engine: SemanticsEngine, serial: int) -> None:
        """Windowed-path hook: coverage samples need the mode *now*, so the
        tracker records immediately instead of deferring to :meth:`flush`."""
        self._sample(engine)

    def flush(self) -> List[Tuple[int, Any]]:
        """Nothing deferred, nothing flushed (samples are recorded eagerly)."""
        return []

    def reset(self) -> None:
        """Start the next execution's map (the cumulative one is the owner's)."""
        self._execution = CoverageMap()

    # -- sampling ---------------------------------------------------------- #
    def _sample(self, engine: SemanticsEngine) -> None:
        for tracked in self._modules:
            state = engine.read_topic(tracked.state_topic)
            if state is None:
                continue  # nothing injected yet: no region to classify
            self._execution.record(
                tracked.vehicle,
                tracked.decision.mode.value,
                classify_region(tracked.spec, state).value,
            )
        if self._fault_sites:
            now = engine.current_time
            for site in self._fault_sites:
                key = site.coverage_sample(now)
                if key is not None:
                    self._execution.record(*key)

    @property
    def tracks_anything(self) -> bool:
        """False with no RTA modules and no fault sites (nothing to classify)."""
        return bool(self._modules) or bool(self._fault_sites)

    @property
    def execution_map(self) -> CoverageMap:
        """The (live) map of the execution currently being explored."""
        return self._execution

    def take_execution_map(self) -> CoverageMap:
        """Hand over the finished execution's map and start a fresh one."""
        finished = self._execution
        self._execution = CoverageMap()
        return finished
