"""The RTA resilience harness: sweep a fault space, assert the SOTER guarantee.

The paper's headline claim (Section V) is not "the stack never fails" but
"the RTA-protected stack stays inside φ even when the untrusted components
fail" — a *differential* property over an explicit fault space.  This
module turns that claim into a regression-gated assertion:

1. **Protected sweep.** Exhaustively enumerate every combination of the
   scenario's fault choice points (the :class:`~repro.runtime.faults.FaultPlan`
   windows and kinds, lifted into the choice trail) on the protected stack
   and assert **zero** monitor violations.  The sweep must actually
   exhaust the space within the budget — a truncated sweep proves
   nothing, so truncation is a harness error, not a pass.
2. **Vacuity check.** Run the same sweep on the *unprotected* twin and
   require at least one counterexample.  Faults that no stack can be hurt
   by are vacuous; this leg proves the fault space has teeth.
3. **Confirmation.** Replay the unprotected counterexample's trail
   through :class:`~repro.testing.strategies.ReplayStrategy` and require
   the identical violation sequence (times, monitors, messages) — the
   counterexample is a reproducible execution, not a flake.

Use :func:`assert_rta_resilient` from tests; it raises
:class:`ResilienceError` (an ``AssertionError`` subclass, so plain pytest
semantics apply) with a diagnostic summary on any failed leg.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .explorer import ExecutionRecord, ModelInstance, SystematicTester, TestReport
from .strategies import ExhaustiveStrategy


class ResilienceError(AssertionError):
    """The SOTER guarantee (or the harness's own soundness check) failed."""


@dataclass
class ResilienceReport:
    """Outcome of one resilience sweep (both legs plus the confirmation).

    ``unprotected`` and ``counterexample`` are ``None`` when the harness
    was run without an unprotected twin (protected leg only).
    """

    __test__ = False

    protected: TestReport
    unprotected: Optional[TestReport] = None
    counterexample: Optional[ExecutionRecord] = None
    confirmed: bool = False

    def summary(self) -> str:
        lines = [
            "resilience sweep:",
            f"  protected:   {self.protected.execution_count} execution(s), "
            f"{self.protected.total_violations} violation(s)",
        ]
        if self.unprotected is not None:
            lines.append(
                f"  unprotected: {self.unprotected.execution_count} execution(s), "
                f"{len(self.unprotected.failing)} failing"
            )
        if self.counterexample is not None:
            status = "replay-confirmed" if self.confirmed else "NOT confirmed"
            lines.append(
                f"  counterexample: execution {self.counterexample.index} "
                f"({len(self.counterexample.violations)} violation(s), {status})"
            )
        return "\n".join(lines)


def _violation_identity(record: ExecutionRecord):
    return [(v.time, v.monitor, v.message) for v in record.violations]


def _exhaustive_sweep(
    factory: Callable[[], ModelInstance],
    max_depth: int,
    max_executions: int,
    max_permuted: int,
    monitor_window: int,
    what: str,
) -> tuple[SystematicTester, TestReport]:
    strategy = ExhaustiveStrategy(max_depth=max_depth, max_executions=max_executions)
    tester = SystematicTester(
        factory,
        strategy,
        max_permuted=max_permuted,
        monitor_window=monitor_window,
    )
    report = tester.explore()
    # The explore loop stops either because the odometer ran dry (every
    # combination enumerated — strictly fewer executions than the budget,
    # or the strategy's own exhausted flag) or because it hit the budget.
    # Only the former counts as an exhaustive sweep.
    exhausted = strategy.is_exhausted or report.execution_count < max_executions
    if not exhausted:
        raise ResilienceError(
            f"the {what} sweep did not exhaust the fault space within "
            f"{max_executions} execution(s) — a truncated sweep proves nothing; "
            f"raise max_executions or shrink the FaultPlan"
        )
    return tester, report


def assert_rta_resilient(
    protected_factory: Callable[[], ModelInstance],
    unprotected_factory: Optional[Callable[[], ModelInstance]] = None,
    *,
    max_depth: int = 64,
    max_executions: int = 4096,
    max_permuted: int = 1,
    monitor_window: int = 1,
) -> ResilienceReport:
    """Sweep the fault space; assert the protected stack never violates.

    Args:
        protected_factory: model-instance factory of the RTA-protected
            scenario (its environment should be a
            :class:`~repro.runtime.faults.FaultPlane` so fault choices
            appear in the trail).
        unprotected_factory: the unprotected twin — same fault plan, RTA
            removed.  When given, the harness additionally requires a
            replay-confirmed counterexample from it (the vacuity check).
        max_depth: choice-trail depth bound of the exhaustive odometer.
        max_executions: sweep budget; exceeding it (either leg) raises —
            exhaustiveness is part of the guarantee.
        max_permuted: bounded-asynchrony permutation width.  The default
            of 1 pins firing order so the sweep enumerates *fault*
            choices only; raise it to cross faults with schedules (the
            space multiplies accordingly).
        monitor_window: monitor batching window (1 = per-step checks).

    Returns:
        The :class:`ResilienceReport` of both legs (also useful for its
        :meth:`~ResilienceReport.summary` in logs).

    Raises:
        ResilienceError: the protected stack violated a monitor, a sweep
            failed to exhaust the space, the unprotected twin survived
            every fault (vacuous plan), or the counterexample did not
            replay identically.
    """
    _, protected_report = _exhaustive_sweep(
        protected_factory, max_depth, max_executions, max_permuted, monitor_window, "protected"
    )
    if not protected_report.ok:
        first = protected_report.first_counterexample()
        assert first is not None
        raise ResilienceError(
            "the RTA-protected stack violated its monitors under the fault "
            f"sweep: execution {first.index} recorded "
            f"{[v.message for v in first.violations]} (trail {first.trail})"
        )
    report = ResilienceReport(protected=protected_report)
    if unprotected_factory is None:
        return report

    unprotected_tester, unprotected_report = _exhaustive_sweep(
        unprotected_factory, max_depth, max_executions, max_permuted, monitor_window, "unprotected"
    )
    report.unprotected = unprotected_report
    counterexample = unprotected_report.first_counterexample()
    if counterexample is None:
        raise ResilienceError(
            "the unprotected twin survived every fault in the plan — the "
            "fault space is vacuous and the protected sweep proves nothing"
        )
    report.counterexample = counterexample
    replayed = unprotected_tester.replay(list(counterexample.trail or ()))
    report.confirmed = _violation_identity(replayed) == _violation_identity(counterexample)
    if not report.confirmed:
        raise ResilienceError(
            "the unprotected counterexample did not replay bit-identically: "
            f"original {_violation_identity(counterexample)} vs "
            f"replayed {_violation_identity(replayed)}"
        )
    return report
