"""Population execution plane: run K executions of one scenario in lock-step.

The reset-and-reuse explorer (:class:`~repro.testing.explorer.SystematicTester`)
pays the full engine loop for every execution, even though a systematic
sweep re-executes enormously redundant work: random sweeps over finite
menus revisit whole trails, and exhaustive enumeration's depth-first
odometer re-runs a deep shared prefix before every deviation.

:class:`PopulationTester` removes that redundancy while staying
**bit-identical** to the serial tester.  It maintains a *trail trie* — the
prefix tree of every choice sequence explored so far, annotated with the
option count and label of each choice point:

* executions that share a trail prefix are one *row-group*: they step as a
  single representative, materialised at most once;
* where choice trails branch, the group *splits* — a divergence is
  detected the moment the strategy draws a value with no trie edge, and
  only the diverged suffix runs live;
* fully-duplicated rows are *compacted*: a walk that ends on a leaf
  returns the recorded outcome without touching the engine at all.

Equivalence argument (the contract every test in
``tests/testing/test_population.py`` checks differentially): the model
under test is fully determined by its choice trail (the strategy
contract of :mod:`repro.testing.strategies`), so

1. the *walk* drives the **real** strategy through exactly the
   ``choose(options, label)`` calls the serial execution would make —
   RNG streams, odometer state and coverage credits evolve identically;
2. a walk ending on a leaf proves the serial execution would retrace a
   known trail, whose steps/violations/coverage were recorded when that
   trail first ran — returning them is what the serial tester would have
   recomputed;
3. a walk that diverges replays the already-drawn prefix *by value*
   (never re-drawing from the strategy) and hands the live tail back to
   the strategy — the same split the serial execution makes implicitly.

Prefix sharing is made cheap with *lazy snapshots*: trie nodes on
repeatedly re-run prefixes capture the model state at a step boundary;
later executions diverging below that node restore the capture instead
of re-executing the prefix.  Snapshots are a pure optimisation:
restoring one lands on exactly the state the replayed prefix would have
recomputed.

Two snapshot representations exist:

* **delta snapshots** (default): the model is decomposed into
  *components* — the engine scalars, topic board, calendar, each node's
  local state, the monitors, and the environment — and a snapshot
  records only the components whose state changed since the parent
  snapshot, detected through the dirty-tracking version ids of
  :mod:`repro.core.resettable` (``TopicBoard``/``Calendar``/environment
  hooks, the engine's per-node fire clock).  A restore resolves each
  component against the delta chain up to the deepest full snapshot and
  rewinds the **live** instance in place, skipping components whose
  version already matches — no pickling, no object-graph rebuild, and
  capture cost proportional to what actually changed.
* **whole-state snapshots** (fallback, and ``use_delta_snapshots=False``):
  a pickle of the (instance, engine) pair with static geometry pinned
  out via persistent ids; models whose state graphs resist pickling fall
  back once more to held deep copies (``PopulationStats.pickle_fallbacks``
  counts the flip).

Snapshot *scheduling* is adaptive: ``snapshot_after`` caps how many
boundary visits a node needs before it earns a snapshot, and the
effective threshold anneals toward eager capture while live runs keep
replaying long prefixes (measured re-run depth), back toward lazy when
restores land exactly on the divergence point.

``population_size`` bounds the number of retained snapshots — the
working set of materialised row-group states (the (K, …) matrices of the
population plane live in :mod:`repro.simulation.population`; here K
bounds state, not concurrency).  ``share_prefixes=False`` disables
snapshots entirely (dedup-only mode).
"""

from __future__ import annotations

import copy
import io
import pickle
import types
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..core.monitor import Violation
from ..core.resettable import capture_state, restore_state
from .coverage import CoverageMap, CoverageTracker
from .explorer import ExecutionRecord, ModelInstance, SystematicTester
from .scheduler import BoundedAsynchronyScheduler
from .strategies import ChoiceStrategy, record_trail


@dataclass
class _Leaf:
    """Recorded outcome of one fully-explored trail (a compacted row).

    ``tail`` is the path-compressed suffix of the trail: the
    ``(options, label, value)`` triples of every choice point below the
    trie node this leaf hangs from.  Suffixes only materialise into trie
    nodes when a second trail diverges somewhere inside them (the radix
    split in :meth:`PopulationTester._split_leaf`), so a sweep of mostly
    distinct trails allocates one leaf per trail instead of one node per
    choice.
    """

    steps: int
    violations: Tuple[Violation, ...]
    coverage: Optional[CoverageMap]
    tail: Tuple[Tuple[int, str, int], ...] = ()


@dataclass
class _Snapshot:
    """A row-group state captured at a step boundary of a shared prefix.

    The capture is the model mid-execution with exactly ``position``
    choices consumed — the values on the trie path to the node holding
    this snapshot.  Preferred representation is an incremental component
    *delta*: ``vector`` maps component keys to captured states for the
    components that changed since ``parent`` (a full vector when
    ``parent`` is None), and ``versions`` records every component's
    dirty-tracking id at capture time so restores can skip components
    already in the right state.  The whole-state fallbacks are a pickle
    byte string with static geometry pinned out via persistent ids, or —
    for models whose state graphs resist pickling — a held deep copy
    that each restore re-copies.
    """

    steps: int
    violations: Tuple[Violation, ...]
    position: int
    data: Optional[bytes] = None
    pair: Optional[Tuple[ModelInstance, Any]] = None
    vector: Optional[Dict[str, Any]] = None
    versions: Optional[Dict[str, Optional[int]]] = None
    parent: Optional["_Snapshot"] = None
    depth: int = 0


class _TrieNode:
    """One choice point (or trail end) in the trail trie.

    Three kinds, discriminated structurally:

    * **unexplored** — ``options is None`` and ``leaf is None`` (only the
      fresh root is ever observable in this state);
    * **internal** — ``options``/``label`` record the choice point;
      ``children`` maps each chosen value to the next node;
    * **leaf** — ``leaf`` holds the recorded outcome of the trail ending
      here.

    No trail is a strict prefix of another (same choices ⇒ same
    execution ⇒ same length), so a node is internal *or* leaf, never
    both.
    """

    __slots__ = ("options", "label", "children", "leaf", "snapshot", "boundary_hits")

    def __init__(self) -> None:
        self.options: Optional[int] = None
        self.label: str = ""
        self.children: Dict[int, "_TrieNode"] = {}
        self.leaf: Optional[_Leaf] = None
        self.snapshot: Optional[_Snapshot] = None
        self.boundary_hits: int = 0


class _TrailRouter:
    """The strategy facade bound into the model in place of the raw strategy.

    During a live run the first ``len(replay)`` choices are returned *by
    value* (they were already drawn from the real strategy during the trie
    walk — consuming them again would desynchronise RNG streams and
    odometers); every later choice delegates to the tester's current
    strategy and is recorded in ``tail`` for trie extension.
    """

    __slots__ = ("_tester", "_replay", "_expected", "position", "tail")

    def __init__(self, tester: "PopulationTester") -> None:
        self._tester = tester
        self._replay: List[int] = []
        self._expected: List[_TrieNode] = []
        self.position = 0
        self.tail: List[Tuple[int, str, int]] = []

    def arm(self, replay: List[int], expected: List[_TrieNode], position: int) -> None:
        """Prepare for one live run: replay values, trie path, start position."""
        self._replay = replay
        self._expected = expected
        self.position = position
        self.tail = []

    def choose(self, options: int, label: str = "") -> int:
        position = self.position
        self.position = position + 1
        if position < len(self._replay):
            node = self._expected[position]
            if node.options != options or node.label != label:
                raise RuntimeError(
                    "model is not trail-deterministic: choice point "
                    f"{position} saw ({options}, {label!r}), trie recorded "
                    f"({node.options}, {node.label!r})"
                )
            return self._replay[position]
        value = self._tester.strategy.choose(options, label)
        self.tail.append((options, label, value))
        return value


@dataclass
class PopulationStats:
    """Counters describing how much work the population plane elided."""

    executions: int = 0
    live_runs: int = 0  # trails that touched the engine
    compacted: int = 0  # dead rows: walks that ended on a known leaf
    restores: int = 0  # live runs resumed from a prefix snapshot
    snapshots_taken: int = 0
    snapshots_retained: int = 0
    replayed_choices: int = 0  # choices answered from the trie during live runs
    live_choices: int = 0
    delta_snapshots: int = 0  # incremental (non-full) component captures
    delta_restores: int = 0  # restores applied in place from a delta chain
    pickle_fallbacks: int = 0  # times the pickle path gave way to deep copies

    @property
    def compaction_rate(self) -> float:
        """Fraction of executions answered without running the engine."""
        if self.executions == 0:
            return 0.0
        return self.compacted / self.executions


#: Object types never captured into snapshots: immutable (or
#: execution-invariant) geometry shared by every execution.  Missing a
#: type here costs snapshot size, never correctness — a copied workspace
#: answers queries identically.
def _pin_types() -> tuple:
    from ..geometry.clearance import ClearanceField
    from ..geometry.occupancy import OccupancyGrid
    from ..geometry.workspace import Workspace

    return (Workspace, ClearanceField, OccupancyGrid)


class PopulationTester(SystematicTester):
    """A :class:`SystematicTester` that compacts and shares executions.

    Drop-in replacement: same constructor arguments plus the population
    knobs, same :meth:`explore`/:meth:`run_single`/:meth:`replay` API, and
    — the load-bearing property — reports identical to the serial tester
    on every scenario and strategy (trails, steps, violations, coverage).

    Args:
        population_size: bound on retained prefix snapshots (the
            materialised row-group working set).
        share_prefixes: capture/restore snapshots on shared trail
            prefixes.  ``False`` leaves only trail compaction (dedup).
        snapshot_after: how many live step-boundary visits a trie node
            must see before it earns a snapshot (the laziness knob:
            1 snapshots eagerly, higher values only snapshot prefixes
            that keep being re-run).
        use_delta_snapshots: capture incremental component deltas instead
            of whole-state pickles (automatic fallback to the pickle /
            deep-copy path if a component resists the delta protocol).
        use_batch_plant: let plant-in-the-loop environments step their
            vehicles through the (K, …) matrix plant
            (:class:`~repro.simulation.plantenv.RowGroupPlant`).
        delta_chain_limit: force a full component vector every this many
            chained deltas (bounds restore-time chain walks).
        adaptive_snapshots: anneal the effective ``snapshot_after`` from
            measured re-run depth.

    >>> from repro.testing import RandomStrategy, scenario_factory
    >>> tester = PopulationTester(
    ...     scenario_factory("toy-closed-loop", broken_ttf=True),
    ...     RandomStrategy(seed=0, max_executions=10))
    >>> report = tester.explore()
    >>> report.ok
    False
    >>> tester.stats.executions
    10
    """

    def __init__(
        self,
        harness_factory: Callable[[], ModelInstance],
        strategy: Optional[ChoiceStrategy] = None,
        max_permuted: int = 6,
        monitor_window: int = 1,
        reuse_instances: bool = True,
        track_coverage: Optional[bool] = None,
        population_size: int = 256,
        share_prefixes: bool = True,
        snapshot_after: int = 3,
        snapshot_min_steps: int = 6,
        use_delta_snapshots: bool = True,
        use_batch_plant: bool = True,
        delta_chain_limit: int = 8,
        adaptive_snapshots: bool = True,
    ) -> None:
        if not reuse_instances:
            raise ValueError(
                "PopulationTester requires reuse_instances=True: row-group "
                "sharing is defined over one reused instance"
            )
        if population_size < 1:
            raise ValueError("population_size must be at least 1")
        if snapshot_after < 1:
            raise ValueError("snapshot_after must be at least 1")
        super().__init__(
            harness_factory,
            strategy,
            max_permuted=max_permuted,
            monitor_window=monitor_window,
            reuse_instances=True,
            track_coverage=track_coverage,
        )
        if delta_chain_limit < 1:
            raise ValueError("delta_chain_limit must be at least 1")
        self.population_size = population_size
        self.share_prefixes = share_prefixes
        self.snapshot_after = snapshot_after
        self.snapshot_min_steps = snapshot_min_steps
        self.use_delta_snapshots = use_delta_snapshots
        self.use_batch_plant = use_batch_plant
        self.delta_chain_limit = delta_chain_limit
        self.adaptive_snapshots = adaptive_snapshots
        self.stats = PopulationStats()
        self._router = _TrailRouter(self)
        self._root = _TrieNode()
        self._pins: Optional[List[Any]] = None
        # Pin registry of the pickle-based snapshot path: index <-> object
        # for every shared (never-serialised) object, grown on demand for
        # functions/closures discovered while dumping.
        self._pin_objects: List[Any] = []
        self._pin_index: Dict[int, int] = {}
        self._pickle_snapshots = True  # flips off after the first failure
        # Delta-snapshot bookkeeping: the component decomposition of the
        # reused instance, the extra pins that keep cross-component
        # references live, and the version vector of the state point the
        # live graph last synchronised with (None right after a reset —
        # the next capture must be a full vector).
        self._delta_ok = use_delta_snapshots  # flips off after the first failure
        self._components: Optional[List[Tuple[str, Any]]] = None
        self._components_engine: Optional[Any] = None
        self._component_pins: List[Any] = []
        self._delta_baseline: Optional[Dict[str, Optional[int]]] = None
        self._delta_parent: Optional[_Snapshot] = None
        self._effective_after = snapshot_after

    # ------------------------------------------------------------------ #
    # strategy binding: the model talks to the router, never the strategy
    # ------------------------------------------------------------------ #
    def _bind_strategy(self, harness: ModelInstance) -> None:
        if harness.environment is not None:
            harness.environment.reset()
            harness.environment.bind_strategy(self._router)
            # Plant-in-the-loop environments can step their vehicles as one
            # (K, …) matrix plant (see repro.simulation.plantenv) — enable
            # the bit-identical batch path when the environment offers it.
            enable_batch = getattr(harness.environment, "set_batch_plant", None)
            if enable_batch is not None:
                enable_batch(self.use_batch_plant)
        # Duck-typed like the serial tester: NondeterministicNode and the
        # fault plane's ChoiceFaultInjector both expose bind_strategy.
        for node in harness.system.all_nodes():
            bind = getattr(node, "bind_strategy", None)
            if bind is not None:
                bind(self._router)

    def _order_scheduler(self) -> BoundedAsynchronyScheduler:
        if self._scheduler is None or self._scheduler.strategy is not self._router:
            self._scheduler = BoundedAsynchronyScheduler(
                self._router, max_permuted=self.max_permuted
            )
        return self._scheduler

    # ------------------------------------------------------------------ #
    # single execution: walk the trie, then compact / restore / run live
    # ------------------------------------------------------------------ #
    def run_single(self, index: int) -> ExecutionRecord:
        self.stats.executions += 1
        node = self._root
        path_nodes: List[_TrieNode] = []
        values: List[int] = []
        strategy = self.strategy
        while True:
            leaf = node.leaf
            if leaf is not None:
                # Match the compressed suffix choice by choice, still
                # driving the real strategy.
                for matched, (options, label, value) in enumerate(leaf.tail):
                    drawn = strategy.choose(options, label)
                    if drawn != value:
                        self._split_leaf(node, leaf, matched, path_nodes, values)
                        values.append(drawn)
                        return self._run_live(index, path_nodes, values)
                return self._compact(index, leaf)
            if node.options is None:
                break  # the unexplored fresh root: everything runs live
            value = strategy.choose(node.options, node.label)
            path_nodes.append(node)
            values.append(value)
            child = node.children.get(value)
            if child is None:
                break  # divergence: no execution took this value here yet
            node = child
        return self._run_live(index, path_nodes, values)

    # Keep the base class's deprecated alias pointing at the override.
    _run_one = run_single

    def _compact(self, index: int, leaf: _Leaf) -> ExecutionRecord:
        """A dead row: the walked trail is fully known — duplicate its outcome.

        The strategy already made every choice of this execution during
        the walk, so its state (and ``record_trail``) is exactly what the
        serial re-execution would leave behind; steps, violations and
        coverage come from the recorded first run of the trail.
        """
        self.stats.compacted += 1
        if self.track_coverage and leaf.coverage is not None:
            self.coverage.merge(leaf.coverage)
            observe = getattr(self.strategy, "observe_coverage", None)
            if observe is not None:
                observe(leaf.coverage)
        return ExecutionRecord(
            index=index,
            steps=leaf.steps,
            violations=list(leaf.violations),
            trail=record_trail(self.strategy),
        )

    def _run_live(
        self, index: int, path_nodes: List[_TrieNode], values: List[int]
    ) -> ExecutionRecord:
        """Run the engine for a new trail, resuming from a snapshot if one fits."""
        self.stats.live_runs += 1
        router = self._router
        start_steps = 0
        base_violations: Tuple[Violation, ...] = ()
        restore_position = 0
        snapshot: Optional[_Snapshot] = None
        if self.share_prefixes:
            # Deepest snapshotted node on the walked path wins: its state
            # has consumed exactly the values leading to it.
            for j in range(len(path_nodes) - 1, 0, -1):
                snap = path_nodes[j].snapshot
                if snap is not None and self._snapshot_usable(snap):
                    snapshot = snap
                    restore_position = j
                    break
        self._delta_baseline = None
        self._delta_parent = None
        if snapshot is not None:
            self.stats.restores += 1
            if snapshot.vector is not None:
                # Delta restore rewinds the live instance in place — no
                # new objects, no tracker rebinding.
                self._restore_delta(snapshot)
                self.stats.delta_restores += 1
                instance = self._instance
                engine = self._engine
            else:
                if snapshot.data is not None:
                    instance, engine = self._unpickle_state(snapshot.data)
                else:
                    memo = self._pin_memo()
                    instance, engine = copy.deepcopy(snapshot.pair, memo)
                self._instance = instance
                self._engine = engine
                self._rebind_tracker(instance)
            start_steps = snapshot.steps
            base_violations = snapshot.violations
            harness = instance
        else:
            restore_position = 0
            harness, engine = self._acquire()
            self._bind_strategy(harness)
        router.arm(values, path_nodes, restore_position)
        replayed = len(values) - restore_position
        self.stats.replayed_choices += replayed
        if self.adaptive_snapshots and self.share_prefixes:
            # Anneal the snapshot threshold from measured re-run depth:
            # long replayed prefixes mean capture is being under-spent on
            # the paths restores actually resume from; exact landings mean
            # the current laziness suffices.
            if replayed > 2:
                if self._effective_after > 1:
                    self._effective_after -= 1
            elif replayed == 0 and self._effective_after < self.snapshot_after:
                self._effective_after += 1
        scheduler = self._order_scheduler()
        steps = start_steps
        windowed = self.monitor_window > 1
        violations = self._violation_buffer
        violations.clear()
        violations.extend(base_violations)
        # Hoisted loop invariants, mirroring SystematicTester.run_single.
        environment = harness.environment
        monitors = harness.monitors
        calendar = engine.calendar
        stats = engine.stats
        horizon = harness.horizon + 1e-12
        population = self.stats
        share = self.share_prefixes
        n_path = len(path_nodes)
        snapshot_after = self._effective_after
        while True:
            if share:
                # Lazy snapshot policy: a step boundary inside the walked
                # (shared) prefix makes the node at the current choice
                # position a snapshot candidate; live tails (position
                # beyond the walked path) never pay for copies.
                position = router.position
                if 1 <= position < n_path:
                    node = path_nodes[position]
                    if node.snapshot is None:
                        node.boundary_hits += 1
                        if (
                            node.boundary_hits >= snapshot_after
                            and steps >= self.snapshot_min_steps
                            and population.snapshots_retained < self.population_size
                        ):
                            node.snapshot = self._take_snapshot(
                                steps, violations, position
                            )
                            population.snapshots_taken += 1
                            population.snapshots_retained += 1
            pending = calendar.next_due()
            if pending is None:
                break
            next_time, due = pending
            if next_time > horizon:
                break
            if environment is not None:
                environment.apply(engine, next_time)
            if next_time > engine.current_time:
                engine.current_time = next_time
            stats.time_progress_steps += 1
            engine._fire_ordered(scheduler.order(due))
            if windowed:
                monitors.capture_all(engine)
                if monitors.pending_samples >= self.monitor_window:
                    violations.extend(monitors.flush())
            else:
                violations.extend(monitors.check_all(engine))
            steps += 1
        if windowed:
            violations.extend(monitors.flush())
        population.live_choices += len(router.tail)
        leaf_coverage: Optional[CoverageMap] = None
        if self._tracker is not None:
            execution_coverage = self._tracker.take_execution_map()
            if self.track_coverage:
                leaf_coverage = execution_coverage
                self.coverage.merge(execution_coverage)
                observe = getattr(self.strategy, "observe_coverage", None)
                if observe is not None:
                    observe(execution_coverage)
        self._extend_trie(
            path_nodes,
            values,
            _Leaf(
                steps=steps,
                violations=tuple(violations),
                coverage=leaf_coverage,
                tail=tuple(router.tail),
            ),
        )
        return ExecutionRecord(
            index=index,
            steps=steps,
            violations=list(violations),
            trail=record_trail(self.strategy),
        )

    # ------------------------------------------------------------------ #
    # trie maintenance
    # ------------------------------------------------------------------ #
    def _split_leaf(
        self,
        node: _TrieNode,
        leaf: _Leaf,
        matched: int,
        path_nodes: List[_TrieNode],
        values: List[int],
    ) -> None:
        """Radix split: a walk diverged inside a compressed leaf suffix.

        Materialises internal nodes for the first ``matched + 1`` entries
        of ``leaf.tail`` (the matched prefix plus the mismatching choice
        point), re-hangs the old outcome one edge below the mismatch with
        the rest of its suffix still compressed, and extends
        ``path_nodes``/``values`` with the materialised chain — the
        mismatch node joins ``path_nodes`` with no value; the caller
        appends the freshly drawn one.
        """
        tail = leaf.tail
        node.leaf = None
        current = node
        for position in range(matched + 1):
            options, label, value = tail[position]
            current.options = options
            current.label = label
            path_nodes.append(current)
            if position < matched:
                values.append(value)
            child = _TrieNode()
            current.children[value] = child
            current = child
        # ``current`` (under the mismatch entry's recorded value) carries
        # the old trail's outcome with the rest of its suffix compressed.
        current.leaf = _Leaf(
            steps=leaf.steps,
            violations=leaf.violations,
            coverage=leaf.coverage,
            tail=tail[matched + 1 :],
        )

    def _extend_trie(
        self,
        path_nodes: List[_TrieNode],
        values: List[int],
        leaf: _Leaf,
    ) -> None:
        """Hang the new trail's outcome (live tail kept compressed) on the trie."""
        if values:
            parent = path_nodes[-1]
            node = parent.children.get(values[-1])
            if node is None:
                node = _TrieNode()
                parent.children[values[-1]] = node
        else:
            node = self._root
        node.leaf = leaf

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #
    def _take_snapshot(
        self, steps: int, violations: List[Violation], position: int
    ) -> _Snapshot:
        if self._delta_ok:
            try:
                return self._take_delta_snapshot(steps, violations, position)
            except Exception:
                # Some component of this model resists the delta protocol
                # (e.g. un-deepcopyable state); fall through to the
                # whole-state representations from now on.
                self._delta_ok = False
                self._delta_baseline = None
                self._delta_parent = None
        state = (self._instance, self._engine)
        if self._pickle_snapshots:
            try:
                return _Snapshot(
                    steps=steps,
                    violations=tuple(violations),
                    position=position,
                    data=self._pickle_state(state),
                )
            except (pickle.PicklingError, TypeError, AttributeError, NotImplementedError):
                # Some object in this model's state graph resists pickling;
                # remember that and hold deep copies instead from now on.
                self._pickle_snapshots = False
                self.stats.pickle_fallbacks += 1
        memo = self._pin_memo()
        return _Snapshot(
            steps=steps,
            violations=tuple(violations),
            position=position,
            pair=copy.deepcopy(state, memo),
        )

    # ------------------------------------------------------------------ #
    # delta snapshots: component decomposition, capture, restore
    # ------------------------------------------------------------------ #
    def _ensure_components(self) -> None:
        """Decompose the reused instance into snapshot components.

        Component keys are stable across the sweep (the reuse contract
        fixes the node set and monitor roster after the first acquire).
        Every component object — plus the system wiring it hangs from —
        is pinned into capture/restore memos, so a component's captured
        state holds cross-component *references*, never clones: each
        component's state always comes from its own snapshot entry.
        """
        engine = self._engine
        instance = self._instance
        assert engine is not None and instance is not None
        components: List[Tuple[str, Any]] = [
            ("engine", engine),
            ("board", engine.board),
            ("calendar", engine.calendar),
        ]
        for name, node in engine._nodes.items():
            components.append(("node:" + name, node))
        suite = instance.monitors
        components.append(("monitors", suite))
        for index, monitor in enumerate(suite.monitors):
            components.append((f"monitor:{index}", monitor))
        if instance.environment is not None:
            components.append(("environment", instance.environment))
        pins: List[Any] = [obj for _, obj in components]
        pins.extend([instance, engine.system])
        for module in getattr(engine.system, "modules", ()):
            pins.extend([module, module.spec])
        self._components = components
        self._component_pins = pins
        self._components_engine = engine

    def _snapshot_usable(self, snapshot: _Snapshot) -> bool:
        """Whole-state snapshots always restore; a delta snapshot only onto
        the same live object graph it was captured from (a whole-state
        restore in mixed mode replaces the graph, stranding older deltas)."""
        if snapshot.vector is None:
            return True
        return (
            self._components is not None
            and getattr(self, "_components_engine", None) is self._engine
        )

    def _component_memo(self) -> Dict[int, Any]:
        """Deepcopy memo for one capture/restore event: geometry pins, the
        router, and every component (kept by reference, restored via its
        own entry)."""
        memo = self._pin_memo()
        for obj in self._component_pins:
            memo[id(obj)] = obj
        return memo

    def _take_delta_snapshot(
        self, steps: int, violations: List[Violation], position: int
    ) -> _Snapshot:
        if (
            self._components is None
            or getattr(self, "_components_engine", None) is not self._engine
        ):
            self._ensure_components()
            self._delta_baseline = None
            self._delta_parent = None
        engine = self._engine
        node_versions = engine.node_versions
        baseline = self._delta_baseline
        parent = self._delta_parent
        full = (
            baseline is None
            or parent is None
            or parent.depth + 1 >= self.delta_chain_limit
        )
        if full:
            parent = None
        memo = self._component_memo()
        vector: Dict[str, Any] = {}
        versions: Dict[str, Optional[int]] = {}
        for key, obj in self._components:
            if key.startswith("node:"):
                version: Optional[int] = node_versions.get(key[5:], 0)
            else:
                version = getattr(obj, "delta_version", None)
            versions[key] = version
            if full or version is None or baseline.get(key) != version:
                vector[key] = capture_state(obj, memo)
        snapshot = _Snapshot(
            steps=steps,
            violations=tuple(violations),
            position=position,
            vector=vector,
            versions=versions,
            parent=parent,
            depth=0 if parent is None else parent.depth + 1,
        )
        if parent is not None:
            self.stats.delta_snapshots += 1
        self._delta_baseline = versions
        self._delta_parent = snapshot
        return snapshot

    def _restore_delta(self, snapshot: _Snapshot) -> None:
        """Rewind the live instance, in place, to a delta snapshot.

        Each component's target state is its shallowest occurrence on the
        parent chain (the full root vector covers every component);
        components whose live version id already equals the target are
        provably unchanged and skipped.
        """
        resolved: Dict[str, Any] = {}
        chain: Optional[_Snapshot] = snapshot
        while chain is not None:
            vector = chain.vector
            assert vector is not None
            for key, state in vector.items():
                if key not in resolved:
                    resolved[key] = state
            chain = chain.parent
        memo = self._component_memo()
        engine = self._engine
        node_versions = engine.node_versions
        versions = snapshot.versions
        assert versions is not None and self._components is not None
        for key, obj in self._components:
            target = versions[key]
            if key.startswith("node:"):
                name = key[5:]
                if node_versions.get(name, 0) == target:
                    continue
                restore_state(obj, resolved[key], memo)
                node_versions[name] = target  # type: ignore[assignment]
            else:
                if target is not None and getattr(obj, "delta_version", None) == target:
                    continue
                restore_state(obj, resolved[key], memo)
                if target is not None:
                    obj.delta_version = target
        self._delta_baseline = versions
        self._delta_parent = snapshot

    def _pickle_state(self, state: Tuple[ModelInstance, Any]) -> bytes:
        """Serialise (instance, engine) with shared objects pinned out.

        Pinned objects (static geometry, the router, and every function /
        closure the dump encounters) are replaced by persistent ids, so
        the byte string holds only per-execution state and unpickling
        re-links the shared objects by reference.
        """
        if self._pins is None:
            self._pins = self._collect_pins(self._instance, self._engine)
            for obj in self._pins + [self._router]:
                self._register_pin(obj)
        pin_index = self._pin_index
        register = self._register_pin
        buffer = io.BytesIO()
        pickler = pickle.Pickler(buffer, protocol=pickle.HIGHEST_PROTOCOL)

        def persistent_id(obj: Any) -> Optional[int]:
            index = pin_index.get(id(obj))
            if index is not None:
                return index
            if isinstance(obj, (types.FunctionType, types.BuiltinFunctionType)):
                return register(obj)
            return None

        pickler.persistent_id = persistent_id  # type: ignore[method-assign]
        pickler.dump(state)
        return buffer.getvalue()

    def _unpickle_state(self, data: bytes) -> Tuple[ModelInstance, Any]:
        pin_objects = self._pin_objects
        unpickler = pickle.Unpickler(io.BytesIO(data))
        unpickler.persistent_load = pin_objects.__getitem__  # type: ignore[method-assign]
        return unpickler.load()

    def _register_pin(self, obj: Any) -> int:
        index = self._pin_index.get(id(obj))
        if index is None:
            index = len(self._pin_objects)
            self._pin_objects.append(obj)
            self._pin_index[id(obj)] = index
        return index

    def _pin_memo(self) -> Dict[int, Any]:
        """A deepcopy memo pre-seeding every pinned (shared, uncopied) object."""
        if self._pins is None:
            self._pins = self._collect_pins(self._instance, self._engine)
        memo: Dict[int, Any] = {id(obj): obj for obj in self._pins}
        memo[id(self._router)] = self._router
        return memo

    def _collect_pins(self, *roots: Any) -> List[Any]:
        """Find the static geometry reachable from the model object graph.

        A plain iterative traversal over ``__dict__``/container structure;
        objects of the pinned types are collected and not descended into.
        The traversal runs once per tester — objects it misses (e.g.
        geometry reachable only through ``__slots__``) merely get copied
        into snapshots, which costs memory, not correctness.
        """
        pin_types = _pin_types()
        pins: List[Any] = []
        seen: set = set()
        atomic = (str, bytes, int, float, bool, complex, type(None))
        stack: List[Any] = [obj for obj in roots if obj is not None]
        while stack:
            obj = stack.pop()
            if isinstance(obj, atomic):
                continue
            oid = id(obj)
            if oid in seen:
                continue
            seen.add(oid)
            if isinstance(obj, pin_types):
                pins.append(obj)
                continue
            if isinstance(obj, (types.FunctionType, types.BuiltinFunctionType, types.ModuleType, type)):
                continue
            if isinstance(obj, types.MethodType):
                stack.append(obj.__self__)
                continue
            if isinstance(obj, dict):
                stack.extend(obj.keys())
                stack.extend(obj.values())
                continue
            if isinstance(obj, (list, tuple, set, frozenset)):
                stack.extend(obj)
                continue
            attributes = getattr(obj, "__dict__", None)
            if attributes:
                stack.extend(attributes.values())
        return pins

    def _rebind_tracker(self, instance: ModelInstance) -> None:
        """Point the tester at the coverage tracker inside a restored copy."""
        if self._tracker is None:
            return
        for monitor in instance.monitors.monitors:
            if isinstance(monitor, CoverageTracker):
                self._tracker = monitor
                return
        raise RuntimeError("restored instance lost its coverage tracker")
