"""Tests for motion plans and plan validation (φ_plan)."""

import pytest

from repro.geometry import AABB, Vec3, empty_workspace
from repro.planning import Plan, PlanValidator, landing_plan, straight_line_plan


@pytest.fixture
def workspace():
    ws = empty_workspace(side=20.0, ceiling=10.0)
    ws.add_obstacle(AABB.from_footprint(9.0, 9.0, 2.0, 2.0, 8.0))
    return ws


class TestPlan:
    def test_plan_requires_waypoints(self):
        with pytest.raises(ValueError):
            Plan(waypoints=(), goal=Vec3())

    def test_plan_ids_are_unique(self):
        a = straight_line_plan(Vec3(0, 0, 2), Vec3(5, 5, 2))
        b = straight_line_plan(Vec3(0, 0, 2), Vec3(5, 5, 2))
        assert a.plan_id != b.plan_id

    def test_length_and_final_waypoint(self):
        plan = Plan(waypoints=(Vec3(0, 0, 2), Vec3(3, 4, 2)), goal=Vec3(3, 4, 2))
        assert plan.length() == pytest.approx(5.0)
        assert plan.final_waypoint == Vec3(3, 4, 2)
        assert len(plan) == 2

    def test_waypoint_after_clamps(self):
        plan = Plan(waypoints=(Vec3(0, 0, 2), Vec3(1, 0, 2)), goal=Vec3(1, 0, 2))
        assert plan.waypoint_after(0) == Vec3(0, 0, 2)
        assert plan.waypoint_after(10) == Vec3(1, 0, 2)
        assert plan.waypoint_after(-5) == Vec3(0, 0, 2)

    def test_collision_check(self, workspace):
        blocked = straight_line_plan(Vec3(1, 10, 2), Vec3(19, 10, 2))
        clear = straight_line_plan(Vec3(1, 1, 2), Vec3(19, 1, 2))
        assert not blocked.is_collision_free(workspace)
        assert clear.is_collision_free(workspace)

    def test_with_prefix(self):
        plan = straight_line_plan(Vec3(1, 1, 2), Vec3(5, 5, 2))
        extended = plan.with_prefix(Vec3(0, 0, 2))
        assert extended.waypoints[0] == Vec3(0, 0, 2)
        assert extended.goal == plan.goal

    def test_landing_plan_descends_to_ground(self):
        plan = landing_plan(Vec3(4.0, 5.0, 3.0))
        assert plan.is_landing
        assert plan.final_waypoint == Vec3(4.0, 5.0, 0.0)

    def test_reference_round_trip(self):
        plan = straight_line_plan(Vec3(0, 0, 2), Vec3(10, 0, 2))
        assert plan.reference().length() == pytest.approx(10.0)


class TestPlanValidator:
    def test_none_plan_is_invalid(self, workspace):
        validator = PlanValidator(workspace)
        result = validator.validate(None)
        assert not result.valid
        assert "no plan" in result.reason

    def test_valid_plan_accepted(self, workspace):
        validator = PlanValidator(workspace, clearance=0.5)
        plan = straight_line_plan(Vec3(1, 1, 2), Vec3(19, 1, 2))
        assert validator.is_valid(plan)

    def test_colliding_plan_rejected_with_segment(self, workspace):
        validator = PlanValidator(workspace, clearance=0.5)
        plan = straight_line_plan(Vec3(1, 10, 2), Vec3(19, 10, 2))
        result = validator.validate(plan)
        assert not result.valid
        assert result.offending_segment is not None

    def test_clearance_margin_matters(self, workspace):
        tight = PlanValidator(workspace, clearance=0.0)
        wide = PlanValidator(workspace, clearance=3.0)
        plan = straight_line_plan(Vec3(1, 7.5, 2), Vec3(19, 7.5, 2))  # passes 1.5 m from the pillar
        assert tight.is_valid(plan)
        assert not wide.is_valid(plan)

    def test_single_waypoint_plans(self, workspace):
        validator = PlanValidator(workspace, clearance=0.5)
        safe = Plan(waypoints=(Vec3(1, 1, 2),), goal=Vec3(1, 1, 2))
        unsafe = Plan(waypoints=(Vec3(10, 10, 2),), goal=Vec3(10, 10, 2))
        assert validator.is_valid(safe)
        assert not validator.is_valid(unsafe)

    def test_negative_clearance_rejected(self, workspace):
        with pytest.raises(ValueError):
            PlanValidator(workspace, clearance=-1.0)
