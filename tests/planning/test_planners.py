"""Tests for the grid A* planner, the RRT* planner, and the fault-injected wrappers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import AABB, Vec3, empty_workspace, grid_city_workspace
from repro.planning import (
    FaultyPlanner,
    GridAStarPlanner,
    PlanValidator,
    PlannerBug,
    RRTStarPlanner,
    straight_line_plan,
)


@pytest.fixture
def workspace():
    ws = empty_workspace(side=20.0, ceiling=10.0)
    ws.add_obstacle(AABB.from_footprint(8.0, 0.0, 2.0, 14.0, 8.0))  # wall with a gap at the top
    return ws


class TestGridAStar:
    def test_finds_path_around_wall(self, workspace):
        planner = GridAStarPlanner(workspace, resolution=0.5, clearance=0.8, altitude=2.0)
        plan = planner.plan(Vec3(2, 2, 2), Vec3(18, 2, 2))
        assert plan is not None
        assert plan.is_collision_free(workspace, margin=0.4)
        assert plan.waypoints[0].distance_to(Vec3(2, 2, 2)) < 1.0
        assert plan.final_waypoint.distance_to(Vec3(18, 2, 2)) < 1.0

    def test_plan_in_city(self):
        city = grid_city_workspace()
        planner = GridAStarPlanner(city, resolution=1.0, clearance=1.5, altitude=2.0)
        plan = planner.plan(Vec3(3, 3, 2), Vec3(46, 46, 2))
        assert plan is not None
        assert plan.is_collision_free(city, margin=1.0)

    def test_unreachable_goal_returns_none(self):
        ws = empty_workspace(side=20.0, ceiling=10.0)
        # A wall completely separating left from right.
        ws.add_obstacle(AABB.from_footprint(9.0, 0.0, 2.0, 20.0, 10.0))
        planner = GridAStarPlanner(ws, resolution=0.5, clearance=0.5, altitude=2.0)
        assert planner.plan(Vec3(2, 10, 2), Vec3(18, 10, 2)) is None

    def test_nearest_free_cell_recovery(self, workspace):
        planner = GridAStarPlanner(workspace, resolution=0.5, clearance=0.8, altitude=2.0)
        # Start right next to the wall (its own cell may be inflated-occupied).
        plan = planner.plan(Vec3(7.6, 5.0, 2.0), Vec3(2.0, 2.0, 2.0))
        assert plan is not None

    def test_invalid_parameters(self, workspace):
        with pytest.raises(ValueError):
            GridAStarPlanner(workspace, resolution=0.0)
        with pytest.raises(ValueError):
            GridAStarPlanner(workspace, clearance=-1.0)


class TestRRTStar:
    def test_finds_collision_free_path(self, workspace):
        planner = RRTStarPlanner(workspace, clearance=0.8, altitude=2.0, seed=1, max_iterations=800)
        plan = planner.plan(Vec3(2, 2, 2), Vec3(18, 2, 2))
        assert plan is not None
        assert plan.is_collision_free(workspace, margin=0.5)

    def test_deterministic_for_fixed_seed(self, workspace):
        a = RRTStarPlanner(workspace, seed=5, max_iterations=300).plan(Vec3(2, 2, 2), Vec3(18, 18, 2))
        b = RRTStarPlanner(workspace, seed=5, max_iterations=300).plan(Vec3(2, 2, 2), Vec3(18, 18, 2))
        assert a is not None and b is not None
        assert [w.as_tuple() for w in a.waypoints] == [w.as_tuple() for w in b.waypoints]

    def test_returns_none_when_no_path_found(self):
        ws = empty_workspace(side=20.0, ceiling=10.0)
        ws.add_obstacle(AABB.from_footprint(9.0, 0.0, 2.0, 20.0, 10.0))
        planner = RRTStarPlanner(ws, clearance=0.5, seed=0, max_iterations=200)
        assert planner.plan(Vec3(2, 10, 2), Vec3(18, 10, 2)) is None

    def test_invalid_parameters(self, workspace):
        with pytest.raises(ValueError):
            RRTStarPlanner(workspace, max_iterations=0)
        with pytest.raises(ValueError):
            RRTStarPlanner(workspace, goal_bias=2.0)
        with pytest.raises(ValueError):
            RRTStarPlanner(workspace, step_size=0.0)

    @given(seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=10, deadline=None)
    def test_returned_plans_respect_clearance(self, seed):
        workspace = empty_workspace(side=20.0, ceiling=10.0)
        workspace.add_obstacle(AABB.from_footprint(8.0, 0.0, 2.0, 14.0, 8.0))
        planner = RRTStarPlanner(workspace, clearance=0.8, seed=seed, max_iterations=500)
        plan = planner.plan(Vec3(2, 2, 2), Vec3(18, 2, 2))
        if plan is not None:
            assert plan.is_collision_free(workspace, margin=0.5)


class TestFaultyPlanner:
    def _base(self, workspace):
        return GridAStarPlanner(workspace, resolution=0.5, clearance=0.8, altitude=2.0)

    def test_corner_cutting_produces_colliding_plans(self, workspace):
        faulty = FaultyPlanner(self._base(workspace), bug=PlannerBug.CORNER_CUTTING, probability=1.0, seed=0)
        plan = faulty.plan(Vec3(2, 10, 2), Vec3(18, 10, 2))
        assert plan is not None
        assert len(plan.waypoints) == 2
        assert not plan.is_collision_free(workspace)
        assert faulty.injected_faults == 1

    def test_zero_probability_never_injects(self, workspace):
        faulty = FaultyPlanner(self._base(workspace), probability=0.0, seed=0)
        validator = PlanValidator(workspace, clearance=0.4)
        for _ in range(5):
            plan = faulty.plan(Vec3(2, 10, 2), Vec3(18, 10, 2))
            assert validator.is_valid(plan)
        assert faulty.injected_faults == 0

    def test_waypoint_corruption_changes_route(self, workspace):
        base = self._base(workspace)
        nominal = base.plan(Vec3(2, 10, 2), Vec3(18, 10, 2))
        faulty = FaultyPlanner(
            base, bug=PlannerBug.WAYPOINT_CORRUPTION, probability=1.0, corruption_magnitude=6.0, seed=3
        )
        corrupted = faulty.plan(Vec3(2, 10, 2), Vec3(18, 10, 2))
        assert corrupted is not None and nominal is not None
        assert [w.as_tuple() for w in corrupted.waypoints] != [w.as_tuple() for w in nominal.waypoints]

    def test_clearance_loss_squeezes_waypoints(self, workspace):
        base = self._base(workspace)
        faulty = FaultyPlanner(base, bug=PlannerBug.CLEARANCE_LOSS, probability=1.0, seed=0)
        plan = faulty.plan(Vec3(2, 10, 2), Vec3(18, 10, 2))
        nominal = base.plan(Vec3(2, 10, 2), Vec3(18, 10, 2))
        assert plan is not None and nominal is not None
        # The squeezed plan hugs the straight line more closely than the nominal one.
        straight = straight_line_plan(Vec3(2, 10, 2), Vec3(18, 10, 2)).reference()
        squeezed_deviation = max(straight.distance_to(w) for w in plan.waypoints)
        nominal_deviation = max(straight.distance_to(w) for w in nominal.waypoints)
        assert squeezed_deviation <= nominal_deviation + 1e-9

    def test_invalid_probability(self, workspace):
        with pytest.raises(ValueError):
            FaultyPlanner(self._base(workspace), probability=2.0)

    def test_name_includes_bug(self, workspace):
        faulty = FaultyPlanner(self._base(workspace), bug=PlannerBug.CORNER_CUTTING)
        assert "corner-cutting" in faulty.name
