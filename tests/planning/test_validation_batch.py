"""The batched plan validator must agree with a per-segment scalar check."""

import random

from repro.geometry import AABB, Vec3, empty_workspace
from repro.planning import Plan
from repro.planning.validation import PlanValidator


def _workspace(seed):
    rng = random.Random(seed)
    workspace = empty_workspace(side=25.0, ceiling=10.0, name=f"val-{seed}")
    for _ in range(5):
        workspace.add_obstacle(
            AABB.from_footprint(
                rng.uniform(2.0, 20.0), rng.uniform(2.0, 20.0),
                rng.uniform(1.0, 4.0), rng.uniform(1.0, 4.0), rng.uniform(3.0, 9.0),
            )
        )
    return workspace


def _random_plan(workspace, rng, waypoints):
    pts = tuple(workspace.bounds.random_point(rng) for _ in range(waypoints))
    return Plan(waypoints=pts, goal=pts[-1], planner="random")


def _scalar_reference(validator, plan):
    """The pre-batching per-segment loop, re-implemented as the oracle."""
    waypoints = plan.waypoints
    for a, b in zip(waypoints[:-1], waypoints[1:]):
        if not validator.workspace.segment_is_free(a, b, margin=validator.clearance):
            return False, (a, b)
    return True, None


class TestBatchedValidation:
    def test_random_plans_match_scalar_loop(self):
        for seed in range(4):
            workspace = _workspace(seed)
            validator = PlanValidator(workspace, clearance=0.5)
            rng = random.Random(seed + 10)
            for _ in range(60):
                plan = _random_plan(workspace, rng, waypoints=rng.randint(2, 8))
                expected_valid, expected_segment = _scalar_reference(validator, plan)
                result = validator.validate(plan)
                assert result.valid == expected_valid
                if not expected_valid:
                    assert result.offending_segment == expected_segment

    def test_none_and_single_waypoint_paths_unchanged(self):
        workspace = _workspace(0)
        validator = PlanValidator(workspace, clearance=0.5)
        assert not validator.validate(None).valid
        free = Plan(waypoints=(Vec3(1.0, 1.0, 2.0),), goal=Vec3(1.0, 1.0, 2.0), planner="p")
        assert validator.validate(free).valid == workspace.is_free(
            free.waypoints[0], margin=0.5
        )

    def test_first_offending_segment_reported(self):
        workspace = empty_workspace(side=20.0, name="one-pillar")
        workspace.add_obstacle(AABB.from_footprint(8.0, 8.0, 4.0, 4.0, 8.0))
        validator = PlanValidator(workspace, clearance=0.2)
        a, b, c = Vec3(1.0, 1.0, 2.0), Vec3(18.0, 18.0, 2.0), Vec3(1.0, 18.0, 2.0)
        plan = Plan(waypoints=(a, b, c), goal=c, planner="p")
        result = validator.validate(plan)
        assert not result.valid
        assert result.offending_segment == (a, b)  # the diagonal through the pillar
