"""Integration tests: the qualitative claims of the paper's evaluation.

Each test here is a scaled-down version of one of the evaluation's
experiments (the full-size versions live in ``benchmarks/``): it checks
the *shape* of the result — who is safe, who is faster, when control is
handed over — rather than absolute numbers.
"""

import pytest

from repro.apps import StackConfig, build_stack
from repro.core.decision import Mode
from repro.dynamics import BatteryParams
from repro.planning import PlannerBug
from repro.runtime import OverloadScheduler
from repro.simulation import waypoint_range


def _range_config(**kwargs):
    world = waypoint_range()
    defaults = dict(
        world=world,
        goals=world.surveillance_points,
        loop_goals=False,
        planner="straight",
        protect_battery=False,
        seed=3,
    )
    defaults.update(kwargs)
    return StackConfig(**defaults)


class TestFigure5Shape:
    """Untrusted controllers are unsafe without runtime assurance."""

    def test_unprotected_aggressive_controller_collides(self):
        metrics, _ = build_stack(_range_config(protect_motion_primitive=False)).run(duration=120.0)
        assert metrics.collided

    def test_rta_protects_the_same_controller(self):
        metrics, _ = build_stack(_range_config(protect_motion_primitive=True)).run(duration=200.0)
        assert not metrics.collided
        assert metrics.completed
        assert metrics.total_disengagements >= 1


class TestFigure12aShape:
    """Mission time ordering: AC-only < RTA-protected < SC-only (all goals)."""

    def test_time_ordering_and_safety(self):
        ac_metrics, _ = build_stack(_range_config(protect_motion_primitive=False)).run(duration=300.0)
        rta_metrics, _ = build_stack(_range_config(protect_motion_primitive=True)).run(duration=300.0)
        sc_metrics, _ = build_stack(
            _range_config(protect_motion_primitive=False, sc_only=True)
        ).run(duration=300.0)
        # Safety: only the unprotected aggressive stack collides.
        assert ac_metrics.collided
        assert not rta_metrics.collided and rta_metrics.completed
        assert not sc_metrics.collided and sc_metrics.completed
        # Performance: the RTA stack is slower than AC-only but faster than SC-only.
        assert ac_metrics.mission_time < rta_metrics.mission_time < sc_metrics.mission_time

    def test_control_returns_to_ac_after_recovery(self):
        metrics, result = build_stack(_range_config(protect_motion_primitive=True)).run(duration=300.0)
        dm_switches = result.trace.switches_of("SafeMotionPrimitive")
        kinds = [(switch.previous, switch.new) for switch in dm_switches]
        assert ("AC", "SC") in kinds and ("SC", "AC") in kinds


class TestFigure12cShape:
    """Battery safety: the RTA module lands the drone before the charge runs out."""

    def _battery_config(self, protect):
        fast_drain = BatteryParams(idle_rate=0.008, accel_rate=0.002)
        world = waypoint_range()
        return StackConfig(
            world=world,
            goals=world.surveillance_points,
            loop_goals=True,
            planner="straight",
            protect_battery=protect,
            battery_params=fast_drain,
            seed=2,
        )

    def test_protected_stack_lands_safely(self):
        stack = build_stack(self._battery_config(protect=True))
        metrics, _ = stack.run(duration=400.0, stop_on_complete=False)
        assert not metrics.battery_depleted_in_air
        assert metrics.landed_safely
        assert metrics.disengagements["BatterySafety"] == 1
        battery_dm = stack.system.module_named("BatterySafety").decision
        assert battery_dm.mode is Mode.SC

    def test_unprotected_stack_crashes_on_empty_battery(self):
        metrics, _ = build_stack(self._battery_config(protect=False)).run(
            duration=400.0, stop_on_complete=False
        )
        assert metrics.battery_depleted_in_air
        assert metrics.crashed


class TestSectionVCShape:
    """A bug-injected planner is caught by the planner RTA module."""

    def test_planner_module_rejects_colliding_plans(self, city_world):
        # Diagonal goals force the route around buildings, so a corner-cutting
        # (straight-line) plan is guaranteed to collide and must be rejected.
        goals = [city_world.surveillance_points[0], city_world.surveillance_points[4]]
        config = StackConfig(
            world=city_world,
            goals=goals,
            loop_goals=False,
            planner="astar",
            planner_bug=PlannerBug.CORNER_CUTTING,
            planner_bug_probability=1.0,
            protect_planner=True,
            protect_battery=False,
            seed=0,
        )
        stack = build_stack(config)
        metrics, _ = stack.run(duration=300.0)
        planner_dm = stack.system.module_named("SafeMotionPlanner").decision
        assert not metrics.collided
        assert len(planner_dm.disengagements) >= 1


class TestSectionVDShape:
    """Crashes only occur when the safe controller is not scheduled in time."""

    def test_starving_the_safe_controller_defeats_the_rta(self):
        # A pathological scheduler that never runs the SC reproduces the
        # paper's observed failure mode: the DM switches, but the safe
        # controller is not scheduled in time, so the stale advanced-control
        # command keeps driving the drone toward the obstacle.
        from repro.geometry import Vec3

        config = _range_config(protect_motion_primitive=True)
        config.start_position = Vec3(20.0, 7.0, 2.0)  # start clear of obstacles, in AC mode
        config.scheduler = OverloadScheduler(
            starved_nodes=["SafeMotionPrimitive.sc"], start_time=0.0, end_time=1e9
        )
        metrics, _ = build_stack(config).run(duration=120.0)
        assert metrics.collided

    def test_perfect_scheduling_keeps_the_mission_safe(self):
        metrics, _ = build_stack(_range_config(protect_motion_primitive=True)).run(duration=300.0)
        assert not metrics.collided
