"""Tests for motion-primitive nodes and the primitive library."""

import pytest

from repro.control import (
    AggressiveTracker,
    HoverController,
    MotionPrimitiveLibrary,
    MotionPrimitiveNode,
)
from repro.dynamics import ControlCommand, DroneState
from repro.geometry import Vec3
from repro.planning import Plan, straight_line_plan


def _node(tracker=None, capture_radius=1.0):
    return MotionPrimitiveNode(
        name="mp",
        tracker=tracker or AggressiveTracker(cruise_speed=2.0, max_acceleration=4.0),
        plan_topic="activePlan",
        position_topic="localPosition",
        command_topic="controlCommand",
        period=0.05,
        capture_radius=capture_radius,
    )


class TestMotionPrimitiveNode:
    def test_hover_without_state(self):
        node = _node()
        outputs = node.step(0.0, {"activePlan": None, "localPosition": None})
        assert outputs["controlCommand"].acceleration == Vec3.zero()

    def test_hover_without_plan(self):
        node = _node()
        outputs = node.step(0.0, {"activePlan": None, "localPosition": DroneState()})
        assert outputs["controlCommand"].acceleration == Vec3.zero()

    def test_tracks_first_waypoint_of_new_plan(self):
        node = _node()
        plan = straight_line_plan(Vec3(0, 0, 2), Vec3(10, 0, 2))
        state = DroneState(position=Vec3(0, 0, 2))
        outputs = node.step(0.0, {"activePlan": plan, "localPosition": state})
        assert isinstance(outputs["controlCommand"], ControlCommand)
        assert node.tracking_plan() == plan.plan_id

    def test_waypoint_advances_when_captured(self):
        node = _node(capture_radius=1.0)
        plan = Plan(waypoints=(Vec3(0, 0, 2), Vec3(5, 0, 2), Vec3(5, 5, 2)), goal=Vec3(5, 5, 2))
        near_second = DroneState(position=Vec3(4.5, 0, 2))
        node.step(0.0, {"activePlan": plan, "localPosition": DroneState(position=Vec3(0, 0, 2))})
        node.step(0.05, {"activePlan": plan, "localPosition": near_second})
        assert node.progress.waypoint_index == 2
        assert node.progress.waypoints_reached >= 1

    def test_new_plan_resets_progress(self):
        node = _node()
        plan_a = straight_line_plan(Vec3(0, 0, 2), Vec3(10, 0, 2))
        plan_b = straight_line_plan(Vec3(0, 0, 2), Vec3(0, 10, 2))
        node.step(0.0, {"activePlan": plan_a, "localPosition": DroneState(position=Vec3(0.5, 0, 2))})
        assert node.progress.waypoint_index == 1
        node.step(0.05, {"activePlan": plan_b, "localPosition": DroneState(position=Vec3(3, 0, 2))})
        assert node.progress.waypoint_index == 0
        assert node.tracking_plan() == plan_b.plan_id

    def test_remaining_waypoints(self):
        node = _node()
        plan = Plan(waypoints=(Vec3(0, 0, 2), Vec3(5, 0, 2), Vec3(5, 5, 2)), goal=Vec3(5, 5, 2))
        assert node.remaining_waypoints(plan) == 3  # not yet tracking it
        node.step(0.0, {"activePlan": plan, "localPosition": DroneState(position=Vec3(0, 0, 2))})
        assert node.remaining_waypoints(plan) == 1
        assert node.remaining_waypoints(None) == 0

    def test_reset_clears_progress(self):
        node = _node()
        plan = straight_line_plan(Vec3(0, 0, 2), Vec3(10, 0, 2))
        node.step(0.0, {"activePlan": plan, "localPosition": DroneState()})
        node.reset()
        assert node.tracking_plan() is None

    def test_capture_radius_validation(self):
        with pytest.raises(ValueError):
            _node(capture_radius=0.0)


class TestMotionPrimitiveLibrary:
    def test_register_and_get(self):
        library = MotionPrimitiveLibrary()
        library.register(HoverController())
        assert library.get("hover").name == "hover"
        assert "hover" in library.names()

    def test_duplicate_names_rejected(self):
        library = MotionPrimitiveLibrary()
        library.register(HoverController())
        with pytest.raises(ValueError):
            library.register(HoverController())

    def test_unknown_lookup(self):
        with pytest.raises(KeyError):
            MotionPrimitiveLibrary().get("missing")

    def test_make_node(self):
        library = MotionPrimitiveLibrary()
        library.register(AggressiveTracker(), name="fast")
        node = library.make_node("fast", node_name="mp.fast")
        assert node.name == "mp.fast"
        assert node.publishes == ("controlCommand",)
