"""Batched control laws and dynamics steps: bit-identical to the scalar paths."""

import random

import numpy as np
import pytest

from repro.control import AggressiveTracker, SafeWaypointTracker
from repro.dynamics import (
    BatteryModel,
    BatteryState,
    BoundedDoubleIntegrator,
    ControlCommand,
    DoubleIntegratorParams,
    DroneState,
    LaggedQuadrotor,
)
from repro.geometry import (
    Vec3,
    clamp_norm_rows,
    grid_city_workspace,
    row_norms,
    unit_rows,
)
from repro.reachability import synthesize_safe_tracker


def _random_batch(seed, count, speed=4.0):
    rng = random.Random(seed)
    states, targets = [], []
    for _ in range(count):
        position = Vec3(rng.uniform(0, 50), rng.uniform(0, 50), rng.uniform(0.3, 8.0))
        velocity = Vec3(
            rng.uniform(-speed, speed), rng.uniform(-speed, speed), rng.uniform(-1, 1)
        )
        states.append(DroneState(position=position, velocity=velocity))
        targets.append(Vec3(rng.uniform(0, 50), rng.uniform(0, 50), 2.0))
    P = np.array([s.position.as_tuple() for s in states])
    V = np.array([s.velocity.as_tuple() for s in states])
    T = np.array([t.as_tuple() for t in targets])
    return states, targets, P, V, T


class TestRowHelpers:
    def test_row_ops_match_vec3(self):
        rng = random.Random(1)
        vectors = [Vec3(rng.uniform(-9, 9), rng.uniform(-9, 9), rng.uniform(-9, 9)) for _ in range(64)]
        rows = np.array([v.as_tuple() for v in vectors])
        assert (row_norms(rows) == np.array([v.norm() for v in vectors])).all()
        assert (unit_rows(rows) == np.array([v.unit().as_tuple() for v in vectors])).all()
        for cap in (0.5, 4.0, 100.0):
            clamped = clamp_norm_rows(rows, cap)
            expected = np.array([v.clamp_norm(cap).as_tuple() for v in vectors])
            assert (clamped == expected).all()

    def test_zero_rows(self):
        rows = np.zeros((3, 3))
        assert (unit_rows(rows) == 0.0).all()
        assert (clamp_norm_rows(rows, 1.0) == 0.0).all()


class TestStepBatch:
    def test_double_integrator_step_batch_bit_identical(self):
        model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0))
        states, _, P, V, _ = _random_batch(7, 200, speed=6.0)
        rng = random.Random(9)
        A = np.array([[rng.uniform(-10, 10) for _ in range(3)] for _ in range(200)])
        A[5] = [np.nan, 0.0, 0.0]  # malformed command row → "no thrust"
        newP, newV = model.step_batch(P, V, A, 0.02)
        for i, state in enumerate(states):
            stepped = model.step(state, ControlCommand(acceleration=Vec3(*A[i])), 0.02)
            assert tuple(newP[i]) == stepped.position.as_tuple()
            assert tuple(newV[i]) == stepped.velocity.as_tuple()

    def test_lagged_quadrotor_step_batch_bit_identical(self):
        """Each row carries its own lag state, matching a dedicated scalar model."""
        batch_model = LaggedQuadrotor()
        states, _, P, V, _ = _random_batch(23, 60, speed=5.0)
        scalar_models = [LaggedQuadrotor() for _ in states]
        rng = random.Random(29)
        batch_model.begin_batch(len(states))
        # Multiple successive steps: the lag must be carried per row, not
        # threaded sequentially across rows (the old fallback's bug).
        for _ in range(8):
            A = np.array([[rng.uniform(-10, 10) for _ in range(3)] for _ in states])
            A[3] = [np.inf, 0.0, 0.0]  # malformed command row → "no thrust"
            P, V = batch_model.step_batch(P, V, A, 0.05)
            for i in range(len(states)):
                states[i] = scalar_models[i].step(
                    states[i], ControlCommand(acceleration=Vec3(*A[i])), 0.05
                )
                assert tuple(P[i]) == states[i].position.as_tuple()
                assert tuple(V[i]) == states[i].velocity.as_tuple()

    def test_battery_step_batch_bit_identical(self):
        model = BatteryModel()
        rng = random.Random(31)
        charges = np.array([rng.uniform(0.0, 1.0) for _ in range(120)])
        A = np.array([[rng.uniform(-10, 10) for _ in range(3)] for _ in range(120)])
        stepped = model.step_batch(charges, A, 0.4)
        for i in range(120):
            scalar = model.step(
                BatteryState(charge=charges[i]),
                ControlCommand(acceleration=Vec3(*A[i])),
                0.4,
            )
            assert stepped[i] == scalar.charge

    def test_generic_step_batch_fallback(self):
        """The base-class loop agrees with the scalar step for any model."""

        class HalvingModel(BoundedDoubleIntegrator):
            def step(self, state, command, dt):
                return DroneState(
                    position=state.position + state.velocity * dt,
                    velocity=state.velocity * 0.5,
                )

            step_batch = BoundedDoubleIntegrator.__mro__[1].step_batch

        model = HalvingModel()
        _, _, P, V, _ = _random_batch(3, 20)
        A = np.zeros((20, 3))
        newP, newV = model.step_batch(P, V, A, 0.1)
        assert np.allclose(newP, P + V * 0.1)
        assert np.allclose(newV, V * 0.5)


class TestCommandBatch:
    @pytest.fixture(scope="class")
    def safe_tracker(self):
        workspace = grid_city_workspace()
        model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0))
        params, _ = synthesize_safe_tracker(model, workspace, safe_speed_fraction=0.35)
        return SafeWaypointTracker(
            params=params,
            workspace=workspace,
            recovery_clearance=3.2,
            clearance_field=workspace.clearance_field(),
        )

    def test_safe_tracker_batch_bit_identical(self, safe_tracker):
        states, targets, P, V, T = _random_batch(11, 400)
        batch = safe_tracker.command_batch(P, V, T, 0.0)
        scalar = np.array(
            [safe_tracker.command(s, t, 0.0).acceleration.as_tuple() for s, t in zip(states, targets)]
        )
        assert (batch == scalar).all()

    def test_safe_tracker_batch_without_field(self):
        workspace = grid_city_workspace()
        model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0))
        params, _ = synthesize_safe_tracker(model, workspace, safe_speed_fraction=0.35)
        tracker = SafeWaypointTracker(params=params, workspace=workspace, recovery_clearance=3.2)
        states, targets, P, V, T = _random_batch(13, 150)
        batch = tracker.command_batch(P, V, T, 0.0)
        scalar = np.array(
            [tracker.command(s, t, 0.0).acceleration.as_tuple() for s, t in zip(states, targets)]
        )
        assert (batch == scalar).all()

    @pytest.mark.parametrize("corner_anticipation", [0.0, 0.6])
    def test_aggressive_tracker_batch_bit_identical(self, corner_anticipation):
        tracker = AggressiveTracker(corner_anticipation=corner_anticipation)
        states, targets, P, V, T = _random_batch(17, 300)
        # Degenerate row: already at the target (the distance < 1e-6 branch).
        T[7] = P[7]
        targets[7] = Vec3(*P[7])
        batch = tracker.command_batch(P, V, T, 0.0)
        scalar = np.array(
            [tracker.command(s, t, 0.0).acceleration.as_tuple() for s, t in zip(states, targets)]
        )
        assert (batch == scalar).all()

    def test_generic_command_batch_fallback(self):
        """The base-class scalar loop still matches for any tracker."""

        class PlainTracker(AggressiveTracker):
            command_batch = AggressiveTracker.__mro__[1].command_batch

        tracker = PlainTracker()
        states, targets, P, V, T = _random_batch(37, 50)
        batch = tracker.command_batch(P, V, T, 0.0)
        scalar = np.array(
            [tracker.command(s, t, 0.0).acceleration.as_tuple() for s, t in zip(states, targets)]
        )
        assert (batch == scalar).all()
        # …and the vectorised override agrees with the fallback exactly.
        assert (AggressiveTracker().command_batch(P, V, T, 0.0) == batch).all()

    def test_memos_invalidate_when_workspace_grows_an_obstacle(self):
        from repro.geometry import AABB, empty_workspace

        workspace = empty_workspace(side=20.0)
        model = BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0))
        params, _ = synthesize_safe_tracker(model, workspace, safe_speed_fraction=0.35)
        tracker = SafeWaypointTracker(params=params, workspace=workspace, recovery_clearance=3.0)
        state = DroneState(position=Vec3(10.0, 10.0, 2.0))
        target = Vec3(12.0, 10.0, 2.0)
        before = tracker.command(state, target, 0.0)
        # A new obstacle right next to the drone must invalidate the memo:
        # the cached command was computed against the old obstacle set.
        workspace.add_obstacle(AABB.from_footprint(10.5, 9.5, 1.0, 1.0, 5.0))
        after = tracker.command(state, target, 0.0)
        assert after.acceleration.as_tuple() != before.acceleration.as_tuple()
        fresh = SafeWaypointTracker(params=params, workspace=workspace, recovery_clearance=3.0)
        assert after.acceleration.as_tuple() == fresh.command(state, target, 0.0).acceleration.as_tuple()

    def test_command_memo_returns_identical_results(self, safe_tracker):
        states, targets, _, _, _ = _random_batch(19, 30)
        first = [safe_tracker.command(s, t, 0.0) for s, t in zip(states, targets)]
        second = [safe_tracker.command(s, t, 0.0) for s, t in zip(states, targets)]
        assert all(a is b for a, b in zip(first, second))  # served from the memo
