"""Tests for the waypoint trackers (safe, aggressive, learned, landing)."""

import pytest

from repro.control import (
    AggressiveTracker,
    BrakingController,
    HoverController,
    LearnedTracker,
    SafeLandingController,
    SafeWaypointTracker,
    pd_acceleration,
)
from repro.dynamics import (
    BoundedDoubleIntegrator,
    DoubleIntegratorParams,
    DroneState,
)
from repro.geometry import AABB, Vec3, empty_workspace
from repro.planning import straight_line_plan
from repro.reachability import synthesize_safe_tracker


@pytest.fixture
def model():
    return BoundedDoubleIntegrator(DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0))


@pytest.fixture
def workspace():
    ws = empty_workspace(side=20.0, ceiling=10.0)
    ws.add_obstacle(AABB.from_footprint(9.0, 9.0, 2.0, 2.0, 8.0))
    return ws


def _simulate(model, tracker, start, target, duration=10.0, dt=0.02):
    state = start
    now = 0.0
    trace = [state]
    while now < duration:
        command = tracker.command(state, target, now)
        state = model.step(state, command, dt)
        now += dt
        trace.append(state)
    return trace


class TestPdAcceleration:
    def test_points_toward_target(self):
        accel = pd_acceleration(DroneState(), Vec3(5, 0, 0), 1.0, 2.0)
        assert accel.x > 0.0

    def test_damps_velocity(self):
        accel = pd_acceleration(
            DroneState(position=Vec3(5, 0, 0), velocity=Vec3(3, 0, 0)), Vec3(5, 0, 0), 1.0, 2.0
        )
        assert accel.x < 0.0

    def test_saturation(self):
        accel = pd_acceleration(DroneState(), Vec3(100, 0, 0), 1.0, 2.0, max_speed=1.0, max_acceleration=2.0)
        assert accel.norm() <= 2.0 + 1e-9


class TestHoverAndBraking:
    def test_hover_commands_nothing(self):
        assert HoverController().command(DroneState(), Vec3(5, 5, 5), 0.0).acceleration == Vec3.zero()

    def test_braking_controller_stops_the_drone(self, model):
        tracker = BrakingController(max_acceleration=6.0)
        trace = _simulate(model, tracker, DroneState(velocity=Vec3(3, 0, 0)), Vec3(), duration=3.0)
        assert trace[-1].speed < 0.05

    def test_braking_controller_validates_params(self):
        with pytest.raises(ValueError):
            BrakingController(max_acceleration=0.0)


class TestAggressiveTracker:
    def test_reaches_waypoint_quickly(self, model):
        tracker = AggressiveTracker(cruise_speed=3.5, max_acceleration=6.0)
        trace = _simulate(model, tracker, DroneState(position=Vec3(0, 0, 2)), Vec3(10, 0, 2), duration=6.0)
        assert min(s.position.distance_to(Vec3(10, 0, 2)) for s in trace) < 0.5

    def test_overshoots_on_waypoint_switch(self, model):
        """The failure mode of Figure 5: arriving at speed, it overshoots the corner."""
        tracker = AggressiveTracker(cruise_speed=3.5, max_acceleration=6.0)
        state = DroneState(position=Vec3(10.0, 0.0, 2.0), velocity=Vec3(3.5, 0.0, 0.0))
        # New target is perpendicular to the current motion (a corner turn).
        trace = _simulate(model, tracker, state, Vec3(10.0, 10.0, 2.0), duration=2.0)
        overshoot = max(s.position.x for s in trace) - 10.0
        assert overshoot > 0.5

    def test_faster_than_safe_tracker(self, model, workspace):
        params, _ = synthesize_safe_tracker(model, workspace, safe_speed_fraction=0.35)
        aggressive = AggressiveTracker(cruise_speed=3.5, max_acceleration=6.0)
        safe = SafeWaypointTracker(params, workspace=workspace)
        start = DroneState(position=Vec3(1, 1, 2))
        target = Vec3(18, 1, 2)

        def time_to_reach(tracker):
            state, now = start, 0.0
            while state.position.distance_to(target) > 0.5 and now < 60.0:
                state = model.step(state, tracker.command(state, target, now), 0.02)
                now += 0.02
            return now

        assert time_to_reach(aggressive) < time_to_reach(safe)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            AggressiveTracker(cruise_speed=0.0)
        with pytest.raises(ValueError):
            AggressiveTracker(corner_anticipation=2.0)


class TestSafeWaypointTracker:
    def test_respects_speed_cap(self, model, workspace):
        params, _ = synthesize_safe_tracker(model, workspace, safe_speed_fraction=0.3)
        tracker = SafeWaypointTracker(params, workspace=workspace)
        trace = _simulate(model, tracker, DroneState(position=Vec3(1, 1, 2)), Vec3(18, 1, 2), duration=8.0)
        assert max(s.speed for s in trace) <= params.max_speed + 0.3

    def test_never_collides_even_when_target_is_inside_obstacle(self, model, workspace):
        params, _ = synthesize_safe_tracker(model, workspace, safe_speed_fraction=0.3)
        tracker = SafeWaypointTracker(params, workspace=workspace, recovery_clearance=2.0)
        trace = _simulate(model, tracker, DroneState(position=Vec3(5, 10, 2)), Vec3(10, 10, 2), duration=10.0)
        assert all(workspace.clearance(s.position) > 0.0 for s in trace)

    def test_recovers_clearance_when_started_close_to_obstacle(self, model, workspace):
        """Property P2b evidence: clearance increases under the safe tracker."""
        params, _ = synthesize_safe_tracker(model, workspace, safe_speed_fraction=0.3)
        tracker = SafeWaypointTracker(params, workspace=workspace, recovery_clearance=3.0)
        start = DroneState(position=Vec3(8.3, 10.0, 2.0))
        trace = _simulate(model, tracker, start, start.position, duration=6.0)
        assert workspace.clearance(trace[-1].position) > workspace.clearance(start.position) + 0.5

    def test_carrot_following_uses_plan_reference(self, model, workspace):
        params, _ = synthesize_safe_tracker(model, workspace, safe_speed_fraction=0.3)
        tracker = SafeWaypointTracker(params, workspace=workspace)
        plan = straight_line_plan(Vec3(1, 1, 2), Vec3(18, 1, 2))
        tracker.set_plan(plan)
        command = tracker.command(DroneState(position=Vec3(1, 5, 2)), Vec3(18, 1, 2), 0.0)
        # The carrot lies on the reference (y = 1), so the command pulls toward it.
        assert command.acceleration.y < 0.0
        tracker.reset()
        assert tracker._reference is None


class TestLearnedTracker:
    def test_tracks_nominally_with_glitches_disabled(self, model):
        tracker = LearnedTracker(glitch_probability=0.0, seed=0)
        trace = _simulate(model, tracker, DroneState(position=Vec3(0, 0, 2)), Vec3(10, 0, 2), duration=8.0)
        assert min(s.position.distance_to(Vec3(10, 0, 2)) for s in trace) < 0.5

    def test_glitches_occur_and_are_reproducible(self, model):
        def run(seed):
            tracker = LearnedTracker(glitch_probability=0.05, seed=seed)
            _simulate(model, tracker, DroneState(position=Vec3(0, 0, 2)), Vec3(10, 0, 2), duration=5.0)
            return tracker.glitch_count

        assert run(1) == run(1)
        assert run(1) > 0

    def test_reset_restores_seeded_behaviour(self, model):
        tracker = LearnedTracker(glitch_probability=0.05, seed=2)
        _simulate(model, tracker, DroneState(), Vec3(10, 0, 2), duration=3.0)
        first = tracker.glitch_count
        tracker.reset()
        _simulate(model, tracker, DroneState(), Vec3(10, 0, 2), duration=3.0)
        assert tracker.glitch_count == first

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LearnedTracker(glitch_probability=2.0)
        with pytest.raises(ValueError):
            LearnedTracker(glitch_duration=-1.0)


class TestSafeLanding:
    def test_lands_from_altitude(self, model):
        controller = SafeLandingController(descent_speed=1.0)
        state = DroneState(position=Vec3(5, 5, 4.0), velocity=Vec3(2.0, 0.0, 0.0))
        trace = _simulate(model, controller, state, Vec3(99, 99, 99), duration=12.0)
        final = trace[-1]
        assert controller.landed(final)
        assert final.position.z <= controller.touchdown_altitude + 0.05
        # Landing happens near the starting (x, y), not at the ignored target.
        assert final.position.horizontal_distance_to(Vec3(5, 5, 0)) < 3.0

    def test_descent_rate_is_bounded(self, model):
        controller = SafeLandingController(descent_speed=1.0)
        state = DroneState(position=Vec3(0, 0, 6.0))
        trace = _simulate(model, controller, state, Vec3(), duration=8.0)
        assert min(s.velocity.z for s in trace) >= -1.5

    def test_hover_after_touchdown(self):
        controller = SafeLandingController()
        assert controller.command(DroneState(position=Vec3(0, 0, 0.05)), Vec3(), 0.0).acceleration == Vec3.zero()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SafeLandingController(descent_speed=0.0)
        with pytest.raises(ValueError):
            SafeLandingController(touchdown_altitude=-0.1)
