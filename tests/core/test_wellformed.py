"""Tests for the well-formedness checker (P1a, P1b, P2a, P2b, P3)."""

import random

import pytest

from repro.core import (
    CheckerOptions,
    DecisionModule,
    ModuleCertificate,
    WellFormednessChecker,
    WellFormednessError,
    structural_report,
)
from repro.core.node import FunctionNode

from .toy import CLIFF, MAX_SPEED, build_toy_module


class ToyClosedLoop:
    """Exact closed-loop hooks for the 1-D toy plant (SC retreats at 1 m/s)."""

    def __init__(self, seed=0, broken_sc=False):
        self.rng = random.Random(seed)
        self.broken_sc = broken_sc
        self.dt = 0.05

    def sample_safe_state(self):
        return self.rng.uniform(0.0, CLIFF - 0.05)

    def sample_safer_state(self):
        return self.rng.uniform(0.0, CLIFF - 0.45)

    def rollout_under_safe_controller(self, state, duration):
        states = [state]
        x = state
        steps = int(duration / self.dt)
        velocity = MAX_SPEED if self.broken_sc else -MAX_SPEED
        for _ in range(steps):
            x = x + velocity * self.dt
            states.append(x)
        return states

    def worst_case_stays_safe(self, state, horizon):
        return state + MAX_SPEED * horizon < CLIFF


class TestStructuralChecks:
    def test_p1a_passes_for_toy_module(self):
        spec = build_toy_module()
        report = structural_report(spec, DecisionModule(spec))
        assert report.result_for("P1a").passed

    def test_p1a_fails_when_controller_slower_than_delta(self):
        spec = build_toy_module()
        spec.advanced.period = 0.5  # > Δ = 0.1
        checker = WellFormednessChecker()
        assert not checker.check_p1a(spec).passed

    def test_p1a_fails_when_dm_period_mismatch(self):
        spec = build_toy_module()
        dm = DecisionModule(spec)
        dm.period = 0.4
        checker = WellFormednessChecker()
        assert not checker.check_p1a(spec, dm).passed

    def test_p1b_passes_when_outputs_match(self):
        checker = WellFormednessChecker()
        assert checker.check_p1b(build_toy_module()).passed

    def test_p1b_fails_when_outputs_differ(self):
        spec = build_toy_module()
        spec.safe.publishes = ("other",)
        checker = WellFormednessChecker()
        result = checker.check_p1b(spec)
        assert not result.passed
        assert "other" in result.detail

    def test_p1b_fails_when_no_outputs(self):
        spec = build_toy_module()
        spec.advanced.publishes = ()
        spec.safe.publishes = ()
        checker = WellFormednessChecker()
        assert not checker.check_p1b(spec).passed


class TestSemanticChecks:
    def test_full_check_passes_with_closed_loop_model(self):
        checker = WellFormednessChecker(ToyClosedLoop(), CheckerOptions(samples=10, p2b_max_time=15.0))
        report = checker.check(build_toy_module())
        assert report.passed, report.summary()

    def test_p2a_fails_for_broken_safe_controller(self):
        checker = WellFormednessChecker(
            ToyClosedLoop(broken_sc=True), CheckerOptions(samples=10)
        )
        result = checker.check_p2a(build_toy_module())
        assert not result.passed
        assert result.evidence == "falsification"

    def test_p3_fails_when_safer_set_is_too_weak(self):
        spec = build_toy_module()
        # Pretend φ_safer extends right up to the cliff edge: P3 must fail.
        spec.safer_spec = spec.safe_spec
        closed_loop = ToyClosedLoop()
        closed_loop.sample_safer_state = lambda: CLIFF - 0.01
        checker = WellFormednessChecker(closed_loop, CheckerOptions(samples=5))
        assert not checker.check_p3(spec).passed

    def test_semantic_checks_fail_without_certificate_or_model(self):
        checker = WellFormednessChecker(closed_loop=None)
        report = checker.check(build_toy_module())
        assert not report.passed
        assert not report.result_for("P2a").passed

    def test_certificate_is_trusted_when_enabled(self):
        spec = build_toy_module()
        spec.certificate = ModuleCertificate(
            p2a_justification="exact retreat argument",
            p2b_justification="retreat reaches φ_safer in finite time",
            p3_justification="φ_safer is 2Δ·v_max inside φ_safe",
        )
        checker = WellFormednessChecker(closed_loop=None)
        report = checker.check(spec)
        assert report.passed
        assert report.result_for("P2a").evidence == "certificate"

    def test_certificate_can_be_distrusted(self):
        spec = build_toy_module()
        spec.certificate = ModuleCertificate(p2a_justification="trust me")
        checker = WellFormednessChecker(
            ToyClosedLoop(), CheckerOptions(samples=5, trust_certificates=False, p2b_max_time=15.0)
        )
        result = checker.check_p2a(spec)
        assert result.evidence == "falsification"

    def test_ttf_consistency_detects_overlap(self):
        spec = build_toy_module()
        spec.ttf = lambda x: True  # ttf holds everywhere, even inside φ_safer
        checker = WellFormednessChecker(ToyClosedLoop(), CheckerOptions(samples=5))
        assert not checker.check_ttf_consistency(spec).passed


class TestReport:
    def test_report_summary_and_failures(self):
        checker = WellFormednessChecker(ToyClosedLoop(broken_sc=True), CheckerOptions(samples=5))
        report = checker.check(build_toy_module())
        assert not report.passed
        assert report.failures
        assert "P2a" in report.summary()

    def test_raise_if_failed(self):
        checker = WellFormednessChecker(closed_loop=None)
        report = checker.check(build_toy_module())
        with pytest.raises(WellFormednessError):
            report.raise_if_failed()

    def test_result_for_unknown_check(self):
        report = structural_report(build_toy_module())
        with pytest.raises(KeyError):
            report.result_for("P99")

    def test_checker_options_validation(self):
        with pytest.raises(ValueError):
            CheckerOptions(samples=0)
        with pytest.raises(ValueError):
            CheckerOptions(p2a_horizon=0.0)
