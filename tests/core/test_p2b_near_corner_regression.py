"""Regression pin for the P2b near-corner finding (ROADMAP, PR 3).

The batched falsification plane surfaced that the PD-repulsion safe
tracker fails P2b from some sampled starts in the 9-building city: near
walls/corners it equilibrates *just below* the φ_safer clearance instead
of recovering past it, and both the scalar and the batched planes agree
on the verdict.  This test pins that exact finding — the failing sample
index, the agreement between planes, and the φ_safer threshold the
recovery stalls under — so that any change to the SC recovery law or to
the φ_safer margin shows up as an explicit, intentional test update
rather than a silent behaviour shift.

If you *fixed* the recovery law (P2b now passes): congratulations — delete
this pin, update the ROADMAP item, and add the passing verdict to the
well-formedness tests instead.
"""

import pytest

from repro.apps.modules import DroneClosedLoopModel, build_safe_motion_primitive
from repro.control import AggressiveTracker
from repro.core import CheckerOptions, WellFormednessChecker
from repro.dynamics import BoundedDoubleIntegrator, DoubleIntegratorParams
from repro.simulation import surveillance_city

#: The exact falsification configuration the benchmark/ROADMAP finding used
#: (seed 5, 6 s rollouts); 8 samples suffice because the failing start is
#: sample 2 of the stream.
SEED = 5
HORIZON = 6.0
SAMPLES = 8
FAILING_SAMPLE = 2


@pytest.fixture(scope="module")
def harness():
    world = surveillance_city()
    model = BoundedDoubleIntegrator(
        DoubleIntegratorParams(max_speed=4.0, max_acceleration=6.0)
    )
    module = build_safe_motion_primitive(world.workspace, model, AggressiveTracker())
    return world, model, module


def _check_p2b(world, model, module, use_batch):
    closed_loop = DroneClosedLoopModel(module, model, world.workspace, seed=SEED)
    checker = WellFormednessChecker(
        closed_loop,
        CheckerOptions(
            samples=SAMPLES,
            p2a_horizon=HORIZON,
            p2b_max_time=HORIZON,
            trust_certificates=False,
            use_batch=use_batch,
        ),
    )
    return checker, closed_loop, checker.check_p2b(module.spec)


class TestP2bNearCornerRegression:
    def test_phi_safer_threshold_is_pinned(self, harness):
        # The margin P2b recovery must clear.  Changing safer_extra_margin,
        # the reachability bound, or the hysteresis radius moves this and
        # must be a conscious decision.
        _, _, module = harness
        assert module.safer_clearance == pytest.approx(2.8333333333333333, abs=1e-12)

    @pytest.mark.parametrize("use_batch", [False, True], ids=["scalar", "batched"])
    def test_p2b_falsified_at_the_known_sample(self, harness, use_batch):
        world, model, module = harness
        _, _, result = _check_p2b(world, model, module, use_batch)
        assert not result.passed
        assert result.evidence == "falsification"
        assert f"sample {FAILING_SAMPLE}:" in result.detail
        assert "φ_safer-invariant window" in result.detail

    def test_both_planes_agree_verbatim(self, harness):
        world, model, module = harness
        _, _, scalar = _check_p2b(world, model, module, use_batch=False)
        _, _, batched = _check_p2b(world, model, module, use_batch=True)
        assert (scalar.passed, scalar.evidence, scalar.detail) == (
            batched.passed,
            batched.evidence,
            batched.detail,
        )

    def test_recovery_equilibrates_just_below_phi_safer(self, harness):
        # The mechanism behind the finding: from the failing start the SC
        # rollout ends with positive clearance (it is safe — P2a holds) but
        # below the φ_safer threshold (it never recovers past it).
        world, model, module = harness
        checker, closed_loop, result = _check_p2b(world, model, module, use_batch=False)
        # Re-draw the same sampler stream to recover the failing start.
        fresh = DroneClosedLoopModel(module, model, world.workspace, seed=SEED)
        starts = fresh.sample_safe_state_batch(FAILING_SAMPLE + 1)
        failing_start = starts[FAILING_SAMPLE]
        assert repr(failing_start) in result.detail
        visited = fresh.rollout_under_safe_controller(failing_start, HORIZON)
        final_clearance = world.workspace.clearance(visited[-1].position)
        assert 0.0 < final_clearance < module.safer_clearance

    def test_p2a_and_p3_still_pass_under_falsification(self, harness):
        # The finding is P2b-specific: safety (P2a) and the 2Δ guarantee
        # (P3) hold from the same sampler configuration.
        world, model, module = harness
        closed_loop = DroneClosedLoopModel(module, model, world.workspace, seed=SEED)
        checker = WellFormednessChecker(
            closed_loop,
            CheckerOptions(
                samples=SAMPLES,
                p2a_horizon=HORIZON,
                p2b_max_time=HORIZON,
                trust_certificates=False,
            ),
        )
        assert checker.check_p2a(module.spec).passed
        assert checker.check_p3(module.spec).passed
