"""Unit tests for the node programming model."""

import pytest

from repro.core import ConstantNode, FunctionNode, Node, NodeError, RelayNode, validate_outputs


class _Counter(Node):
    def __init__(self):
        super().__init__("counter", subscribes=("in",), publishes=("out",), period=0.1)
        self.count = 0

    def reset(self):
        self.count = 0

    def step(self, now, inputs):
        self.count += 1
        return {"out": self.count}


class TestNodeDeclaration:
    def test_period_must_be_positive(self):
        with pytest.raises(NodeError):
            FunctionNode("bad", lambda now, inputs: {}, period=0.0)

    def test_offset_must_be_non_negative(self):
        with pytest.raises(NodeError):
            FunctionNode("bad", lambda now, inputs: {}, period=0.1, offset=-1.0)

    def test_name_must_be_non_empty(self):
        with pytest.raises(NodeError):
            FunctionNode("", lambda now, inputs: {})

    def test_inputs_and_outputs_must_be_disjoint(self):
        with pytest.raises(NodeError):
            FunctionNode(
                "bad", lambda now, inputs: {}, subscribes=("t",), publishes=("t",)
            )

    def test_duplicate_topics_are_deduplicated(self):
        node = FunctionNode(
            "n", lambda now, inputs: {}, subscribes=("a", "a", "b"), publishes=("c", "c")
        )
        assert node.subscribes == ("a", "b")
        assert node.publishes == ("c",)

    def test_time_table(self):
        node = FunctionNode("n", lambda now, inputs: {}, period=0.5, offset=0.25)
        assert node.time_table(1.5) == (0.25, 0.75, 1.25)

    def test_describe_mentions_period_and_topics(self):
        node = FunctionNode("n", lambda now, inputs: {}, subscribes=("a",), publishes=("b",), period=0.05)
        text = node.describe()
        assert "n" in text and "50 ms" in text and "a" in text and "b" in text


class TestNodeStepping:
    def test_custom_node_keeps_local_state(self):
        node = _Counter()
        assert node.step(0.0, {"in": None}) == {"out": 1}
        assert node.step(0.1, {"in": None}) == {"out": 2}
        node.reset()
        assert node.step(0.2, {"in": None}) == {"out": 1}

    def test_function_node_none_output_becomes_empty(self):
        node = FunctionNode("n", lambda now, inputs: None, publishes=("x",))
        assert node.step(0.0, {}) == {}

    def test_relay_node_copies_values(self):
        relay = RelayNode("relay", {"a": "b"})
        assert relay.step(0.0, {"a": 7}) == {"b": 7}

    def test_relay_node_skips_missing_inputs(self):
        relay = RelayNode("relay", {"a": "b"})
        assert relay.step(0.0, {"a": None}) == {}

    def test_relay_requires_routes(self):
        with pytest.raises(NodeError):
            RelayNode("relay", {})

    def test_constant_node_publishes_fixed_values(self):
        node = ConstantNode("const", {"x": 1, "y": 2})
        assert node.step(0.0, {}) == {"x": 1, "y": 2}
        assert node.publishes == ("x", "y")


class TestOutputValidation:
    def test_accepts_declared_outputs(self):
        node = _Counter()
        assert validate_outputs(node, {"out": 1}) == {"out": 1}

    def test_rejects_undeclared_outputs(self):
        node = _Counter()
        with pytest.raises(NodeError):
            validate_outputs(node, {"other": 1})
